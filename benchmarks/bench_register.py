"""Benchmarks for E1 (registers) plus ABD micro-costs."""

import pytest

from benchmarks.conftest import run_experiment_once
from repro.core.detectors import SigmaOracle
from repro.core.failure_pattern import FailurePattern
from repro.experiments.e01_register import run as run_e01
from repro.registers.abd import RegisterBank
from repro.registers.quorums import MajorityQuorums, SigmaQuorums
from repro.registers.workload import RegisterWorkload, workload_quiescent
from repro.sim.system import SystemBuilder


def test_e01_register_table(benchmark):
    """E1: the full majority-vs-Sigma register table."""
    run_experiment_once(benchmark, run_e01, seed=0, n=5)


def _abd_run(n, quorums, detector):
    builder = (
        SystemBuilder(n=n, seed=1, horizon=120_000)
        .pattern(FailurePattern.crash_free(n))
        .component("reg", lambda pid: RegisterBank(quorums, record_ops=True))
        .component(
            "workload",
            lambda pid: RegisterWorkload(
                registers=("x",), ops_per_process=6, seed=1
            ),
        )
    )
    if detector is not None:
        builder.detector(detector)
    trace = builder.build().run(stop_when=workload_quiescent())
    assert trace.stop_reason == "stop-condition"
    return trace


@pytest.mark.parametrize("n", [3, 5, 7])
def test_abd_majority_ops(benchmark, n):
    """ABD/majority: full workload wall time as n grows."""
    trace = benchmark.pedantic(
        lambda: _abd_run(n, MajorityQuorums(), None), rounds=1, iterations=1
    )
    assert len(trace.completed_operations("reg")) == 6 * n


@pytest.mark.parametrize("n", [3, 5, 7])
def test_abd_sigma_ops(benchmark, n):
    """ABD/Sigma: same workload through the Sigma-quorum path."""
    trace = benchmark.pedantic(
        lambda: _abd_run(n, SigmaQuorums(lambda d: d), SigmaOracle()),
        rounds=1,
        iterations=1,
    )
    assert len(trace.completed_operations("reg")) == 6 * n
