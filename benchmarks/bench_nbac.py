"""Benchmarks for E6 (NBAC ⇔ QC + FS) and E7 ((Ψ, FS)-NBAC sweep)."""

from benchmarks.conftest import run_experiment_once
from repro.experiments.e06_equivalence import run as run_e06
from repro.experiments.e07_nbac import run as run_e07


def test_e06_equivalence_table(benchmark):
    run_experiment_once(benchmark, run_e06, seed=0)


def test_e07_nbac_table(benchmark):
    run_experiment_once(benchmark, run_e07, seed=0, n=4)
