"""Campaign-engine benchmark: serial vs pooled execution of one grid.

Executes a fixed 64-run consensus grid — the same specs E3 sweeps,
``seed × f`` over (Ω, Σ) — once serially and once across a worker pool,
asserts the two executions produce byte-identical summaries, and writes
the timings to ``BENCH_runner.json``.

The ≥2× speedup assertion is gated on the machine actually having ≥4
cores: on single-core CI runners the parallel path still runs (the
correctness half of the benchmark) but cannot, and is not required to,
go faster than serial.

Run standalone (``python benchmarks/bench_runner.py``) or through
pytest (``pytest benchmarks/bench_runner.py -q``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments.e03_consensus import case_spec
from repro.runner import Campaign, default_worker_count

RUNS = 64
WORKERS = 4
SEEDS = range(RUNS // 4)
CRASHES = range(4)


def _grid() -> Campaign:
    return Campaign.grid(
        lambda seed, f: case_spec(5, f, "(Omega,Sigma)", seed),
        name="bench-runner",
        seed=SEEDS,
        f=CRASHES,
    )


def _measure(workers):
    campaign = _grid()
    started = time.perf_counter()
    result = campaign.run(workers=workers, cache=False)
    elapsed = time.perf_counter() - started
    assert len(result) == RUNS
    assert result.executed == RUNS and result.hits == 0
    return elapsed, [s.stable_digest() for s in result]


def run_benchmark(report_path: str = "BENCH_runner.json") -> dict:
    cores = default_worker_count()
    serial_s, serial_digests = _measure(1)
    parallel_s, parallel_digests = _measure(WORKERS)

    assert serial_digests == parallel_digests, (
        "serial and pooled executions of the same campaign diverged"
    )

    report = {
        "grid": {"runs": RUNS, "seeds": len(SEEDS), "crash_levels": len(CRASHES)},
        "cores_available": cores,
        "workers": WORKERS,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "deterministic": True,
    }
    Path(report_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_campaign_serial_vs_parallel():
    report = run_benchmark()
    if report["cores_available"] >= WORKERS:
        assert report["speedup"] >= 2.0, (
            f"expected >=2x speedup with {WORKERS} workers on "
            f"{report['cores_available']} cores, got {report['speedup']}x"
        )


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
