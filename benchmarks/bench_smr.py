"""Benchmarks for E10 (multivalued) and E11 (SMR registers)."""

from benchmarks.conftest import run_experiment_once
from repro.experiments.e10_multivalued import run as run_e10
from repro.experiments.e11_smr import run as run_e11


def test_e10_multivalued_table(benchmark):
    run_experiment_once(benchmark, run_e10, seed=0, n=4)


def test_e11_smr_table(benchmark):
    run_experiment_once(benchmark, run_e11, seed=0, n=3)
