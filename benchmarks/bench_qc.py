"""Benchmark for E4: Figure 2's Ψ-based quittable consensus."""

from benchmarks.conftest import run_experiment_once
from repro.experiments.e04_qc import run as run_e04


def test_e04_qc_table(benchmark):
    run_experiment_once(benchmark, run_e04, seed=0, n=4)
