"""Benchmarks of the explorer's hot path: fingerprints and reductions.

Four pinned cases spanning the target families are each exhausted
under every fingerprint mode — ``legacy`` (PR4's sanitize-and-hash
path, the wall-clock baseline), ``naive`` (the byte encoder without
caching, the fingerprint-work baseline), ``incremental`` (caching plus
cross-run replay-digest reuse), ``native`` (the compiled encoder
riding the same caches, when ``repro._native`` is built — digests are
byte-identical to incremental, so its row adds only wall clock and the
``native_calls``/``native_bytes`` counters), and ``incremental`` with
the pid-symmetry reduction where the target admits it.

The machine-independent gates — what the CI explore-smoke job checks —
always hold:

* every mode agrees on decision vectors, violation count and
  completeness (the modes change *cost*, never the search);
* ``naive`` and plain ``incremental`` walk identical trees (same run
  count — they compute identical digests byte-for-byte, which the
  equivalence suite pins separately);
* the incremental engine does ≥3x less fingerprint work than naive
  (``explore_fp_nodes``, an encoder node count — machine-independent).

The wall-clock speedup of incremental over legacy is recorded in the
report and only asserted under ``BENCH_EXPLORE_STRICT=1`` (CI sets
it; laptops under load may not).  The native-over-incremental
whole-search speedup is recorded per case and trended — it is
Amdahl-limited by the sim replay loop (on paxos the encoder is only a
few percent of the wall), so the hard CI gate lives in the
**encoder** section instead: the ported unit-encoding pipeline run in
isolation, where ≥1.5x is physical on any machine, asserted under
``BENCH_NATIVE_STRICT=1`` (the CI native perf leg, which also insists
the extension actually built).  Run without pytest via
``python benchmarks/bench_explorer.py`` to write ``BENCH_explore.json``.

The **sharded** section pins the store-backed visited-set exchange on
the n=3 NBAC tree: sequential shards sharing fingerprints through a
throwaway campaign database must visit **no more states** than the
single-process walk (exact recovery), while the same split with
isolated visited sets re-explores — ``dedup_recovered_states`` is the
redundancy the exchange eliminated, gated ≥ 0 here and trended by
``python -m repro.store check BENCH_explore``.

The **frontier** section runs a deeper case (nbac n=3 depth=6)
through the crash-tolerant dynamic frontier
(:mod:`repro.explore.frontierd`) in its adaptive batched-claim default
at 1/2/4 workers and once more at 4 workers under a kill rate of
0.3 — every run must reproduce the serial walk exactly; the report
records the scaling curve (wall clock, ``scaling_efficiency``, the
coordination counters) and the recovery overhead.  ``python
benchmarks/bench_explorer.py --frontier-only`` writes just that
section — what the CI chaos-smoke job runs and trend-gates.
"""

import json
import os
import tempfile
import time
from pathlib import Path

from repro import _native
from repro.explore.cases import ExploreCase
from repro.explore.engine import explore_case
from repro.explore.shard import explore_case_sharded
from repro.explore.symmetry import SYMMETRY_SAFE_TARGETS, admissible_perms

#: The pinned cases.  ct exercises deep detector-driven branching,
#: nbac n=2/n=3 are the frontier the overhaul targets, paxos brings a
#: consensus stack with richer per-host state.
CASES = (
    ExploreCase(target="ct", n=2, depth=7),
    ExploreCase(target="nbac", n=2, depth=6, seed=1),
    ExploreCase(target="paxos", n=2, depth=8),
    ExploreCase(target="nbac", n=3, depth=5),
)

MIN_FP_WORK_REDUCTION = 3.0
MIN_WALL_SPEEDUP = 2.0
#: Conservative CI gate for the compiled unit-encoding pipeline over
#: the pure one, measured in isolation (the ``encoder`` section).  The
#: whole-search native-vs-incremental ratio is Amdahl-limited by sim
#: replay — it is reported per case and trended, never hard-gated.
MIN_NATIVE_ENCODE_SPEEDUP = 1.5

#: Why targets outside SYMMETRY_SAFE_TARGETS cannot run the
#: ``incremental_symmetry`` mode — recorded per case in the report so
#: the missing mode reads as a documented soundness gate, not a hole
#: in the matrix (see :mod:`repro.explore.symmetry`).
SYMMETRY_GATED = {
    "ct": (
        "rotating coordinator (round mod n) is not pid-equivariant: "
        "relabeling processes changes who coordinates each round"
    ),
    "register": (
        "workload writes are tagged (pid, seq), baking pids into "
        "register values; the fingerprint engine's int guard cannot "
        "relabel payload internals"
    ),
}


def _explore(case, fingerprint_mode, symmetry=None):
    started = time.perf_counter()
    result = explore_case(
        case, fingerprint_mode=fingerprint_mode, symmetry=symmetry
    )
    elapsed = time.perf_counter() - started
    return {
        "elapsed_seconds": round(elapsed, 3),
        "runs": result.runs,
        "states": result.states,
        "dedup_hits": result.dedup_hits,
        "violations": len(result.violations),
        "complete": result.complete,
        "fp_nodes": result.counters.explore_fp_nodes,
        "replay_steps": result.counters.explore_replay_steps,
        "opaque_tokens": result.counters.explore_opaque_tokens,
        "native_calls": result.counters.explore_native_calls,
        "native_bytes": result.counters.native_encode_bytes,
        "_vectors": result.decision_vectors,
        "_elapsed_raw": elapsed,
    }


def run_case_bench(case) -> dict:
    modes = {
        "legacy": _explore(case, "legacy"),
        "naive": _explore(case, "naive"),
        "incremental": _explore(case, "incremental"),
    }
    if _native.available():
        modes["native"] = _explore(case, "native")
    if case.target in SYMMETRY_SAFE_TARGETS:
        modes["incremental_symmetry"] = _explore(
            case, "incremental", symmetry="auto"
        )
        symmetry = {
            "mode_run": True,
            "group_order": len(admissible_perms(case)),
        }
    else:
        symmetry = {
            "mode_run": False,
            "gated_reason": SYMMETRY_GATED.get(
                case.target,
                "target carries pid-derived values; reduction unsound",
            ),
        }

    # The search must be mode-invariant (symmetry may merge runs but
    # must preserve the observable outcomes).
    base = modes["legacy"]
    for name, mode in modes.items():
        assert mode["_vectors"] == base["_vectors"], (case, name)
        assert mode["violations"] == base["violations"], (case, name)
        assert mode["complete"] and base["complete"], (case, name)
    assert modes["naive"]["runs"] == modes["incremental"]["runs"], case

    fp_reduction = modes["naive"]["fp_nodes"] / modes["incremental"]["fp_nodes"]
    assert fp_reduction >= MIN_FP_WORK_REDUCTION, (case, fp_reduction)
    wall_speedup = (
        modes["legacy"]["_elapsed_raw"] / modes["incremental"]["_elapsed_raw"]
    )
    native_speedup = None
    if "native" in modes:
        # The native mode rides the identical caches: same tree walk,
        # same counted fingerprint work — only the encoding is compiled.
        assert modes["native"]["runs"] == modes["incremental"]["runs"], case
        assert (
            modes["native"]["states"] == modes["incremental"]["states"]
        ), case
        assert (
            modes["native"]["dedup_hits"] == modes["incremental"]["dedup_hits"]
        ), case
        assert modes["native"]["native_calls"] > 0, case
        assert modes["incremental"]["native_calls"] == 0, case
        native_speedup = round(
            modes["incremental"]["_elapsed_raw"]
            / modes["native"]["_elapsed_raw"],
            2,
        )
    for mode in modes.values():
        del mode["_vectors"], mode["_elapsed_raw"]
    return {
        "case": case.describe(),
        "fp_work_reduction": round(fp_reduction, 2),
        "wall_speedup_incremental_vs_legacy": round(wall_speedup, 2),
        "wall_speedup_native_vs_incremental": native_speedup,
        "symmetry": symmetry,
        "modes": modes,
    }


#: One pass over this corpus ≈ the unit mix of a real fingerprint:
#: buffered-message pairs, decisions, operation records — the shapes
#: the compiled builders (`enc_pair`/`enc_decision`/`enc_operation`)
#: cross the C boundary once for.
ENCODER_CORPUS = {
    "pairs": [
        ("nbac", ("vote", 1, True)),
        ("paxos", {"ballot": (3, 2), "accepted": [(1, "v")], "phase": "p2a"}),
        ("detector", frozenset({0, 1, 2})),
        ("register", ("write", (2, 7), "value-string")),
        ("qc", [None, True, -17, 2**70, "quorum"]),
    ],
    "decisions": [
        ("nbac", "commit", False),
        ("consensus", ("decided", 1), True),
    ],
    "operations": [
        ("register", "read", (), 41, 57, ("ok", "v3")),
        ("register", "write", ((1, 4), "x"), 90, None, None),
    ],
}
ENCODER_ROUNDS = 4_000


def run_encoder_bench() -> dict:
    """The ported unit-encoding pipeline, isolated from sim replay.

    Runs the exact per-unit protocol both ways — pure Python
    (`FingerprintEngine._unit`: save accumulators, encode, freeze the
    ambiguity set, restore) against the compiled single-crossing
    builders — asserting byte-identical output, then measures the wall
    ratio.  Encoder-bound by construction, so the ≥1.5x CI gate is
    physical here regardless of how replay-heavy the search cases are.
    """
    from repro.explore.state import _Encoder

    native_cls = _native.encoder_class()
    assert native_cls is not None, _native.status()
    pure_enc, native_enc = _Encoder(3), native_cls(3)

    def pure_pass():
        units = []
        for a, b in ENCODER_CORPUS["pairs"]:
            saved_ambig, saved_opaque = pure_enc.ambig, pure_enc.opaque
            pure_enc.ambig, pure_enc.opaque = set(), False
            data = pure_enc.enc(a) + pure_enc.enc(b)
            units.append((data, frozenset(pure_enc.ambig), pure_enc.opaque))
            pure_enc.ambig, pure_enc.opaque = saved_ambig, saved_opaque
        for component, value, postcrash in ENCODER_CORPUS["decisions"]:
            saved_ambig, saved_opaque = pure_enc.ambig, pure_enc.opaque
            pure_enc.ambig, pure_enc.opaque = set(), False
            data = (
                pure_enc.enc(component)
                + pure_enc.enc(value)
                + (b"T;" if postcrash else b"F;")
            )
            units.append((data, frozenset(pure_enc.ambig), pure_enc.opaque))
            pure_enc.ambig, pure_enc.opaque = saved_ambig, saved_opaque
        for component, kind, args, invoke, response, result in ENCODER_CORPUS[
            "operations"
        ]:
            saved_ambig, saved_opaque = pure_enc.ambig, pure_enc.opaque
            pure_enc.ambig, pure_enc.opaque = set(), False
            data = (
                pure_enc.enc(component)
                + pure_enc.enc(kind)
                + pure_enc.enc(args)
                + b"@%d;" % invoke
                + (b"@%d;" % response if response is not None else b"N;")
                + pure_enc.enc(result)
            )
            units.append((data, frozenset(pure_enc.ambig), pure_enc.opaque))
            pure_enc.ambig, pure_enc.opaque = saved_ambig, saved_opaque
        return units

    def native_pass():
        units = []
        for a, b in ENCODER_CORPUS["pairs"]:
            units.append(native_enc.enc_pair(a, b))
        for component, value, postcrash in ENCODER_CORPUS["decisions"]:
            units.append(native_enc.enc_decision(component, value, postcrash))
        for component, kind, args, invoke, response, result in ENCODER_CORPUS[
            "operations"
        ]:
            units.append(
                native_enc.enc_operation(
                    component, kind, args, invoke, response, result
                )
            )
        return units

    # Differential check first: same bytes, same accumulator verdicts.
    for (data_p, ambig_p, opaque_p), (data_n, mask_n, opaque_n) in zip(
        pure_pass(), native_pass()
    ):
        assert data_p == data_n, (data_p, data_n)
        assert ambig_p == {b for b in range(3) if mask_n >> b & 1}
        assert opaque_p == opaque_n

    started = time.perf_counter()
    for _ in range(ENCODER_ROUNDS):
        pure_pass()
    pure_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(ENCODER_ROUNDS):
        native_pass()
    native_elapsed = time.perf_counter() - started
    speedup = pure_elapsed / native_elapsed
    report = {
        "rounds": ENCODER_ROUNDS,
        "units_per_round": sum(len(v) for v in ENCODER_CORPUS.values()),
        "pure_seconds": round(pure_elapsed, 3),
        "native_seconds": round(native_elapsed, 3),
        "speedup_native_vs_pure": round(speedup, 2),
        "native_bytes": native_enc.bytes_encoded,
    }
    if os.environ.get("BENCH_NATIVE_STRICT"):
        assert speedup >= MIN_NATIVE_ENCODE_SPEEDUP, report
    return report


#: The sharded-exchange case and split depth (in recorded choices).
SHARDED_CASE = CASES[3]
SHARD_DEPTH = 4


def run_sharded_bench(case=SHARDED_CASE, shard_depth=SHARD_DEPTH) -> dict:
    """Pin the store-backed cross-shard dedup on one deep case.

    Sequential shards (workers=1) exchanging fingerprints through the
    store must match the single-process walk's outcomes and visit no
    more states; isolated shards measure what the exchange recovers.
    """
    started = time.perf_counter()
    single = explore_case(case)
    single_s = time.perf_counter() - started

    started = time.perf_counter()
    isolated = explore_case_sharded(
        case, shard_depth=shard_depth, workers=1
    )
    isolated_s = time.perf_counter() - started

    with tempfile.TemporaryDirectory() as tmp:
        started = time.perf_counter()
        shared = explore_case_sharded(
            case, shard_depth=shard_depth, workers=1, store=tmp
        )
        shared_s = time.perf_counter() - started

    # The search itself is invariant under sharding, with or without
    # the exchange...
    for name, result in (("isolated", isolated), ("shared", shared)):
        assert result.decision_vectors == single.decision_vectors, name
        assert len(result.violations) == len(single.violations), name
        assert result.complete and single.complete, name
    # ...and sequential shards with the shared visited set never visit
    # more states than the single-process walk.
    assert shared.states <= single.states, (shared.states, single.states)
    recovered = isolated.states - shared.states
    assert recovered >= 0, (isolated.states, shared.states)
    return {
        "case": case.describe(),
        "shard_depth": shard_depth,
        "single": {"states": single.states, "runs": single.runs,
                   "elapsed_seconds": round(single_s, 3)},
        "isolated": {"states": isolated.states, "runs": isolated.runs,
                     "shards": isolated.counters.explore_shards,
                     "elapsed_seconds": round(isolated_s, 3)},
        "shared": {"states": shared.states, "runs": shared.runs,
                   "shards": shared.counters.explore_shards,
                   "elapsed_seconds": round(shared_s, 3)},
        "dedup_recovered_states": recovered,
        "dedup_recovered_runs": isolated.runs - shared.runs,
    }


#: The frontier scaling case — one depth deeper than the sharded
#: section, so the tree is large enough (thousands of runs) for
#: coordination amortization to be measurable rather than noise.
FRONTIER_CASE = ExploreCase(target="nbac", n=3, depth=6)

#: Ceiling on 1-worker wall over the single-process walk — the price
#: of running the exact same tree through the store-backed queue.
#: Batched claims brought this from 1.87x down to ~1.2x.
MAX_FRONTIER_OVERHEAD = 1.3


def run_frontier_bench(case=FRONTIER_CASE) -> dict:
    """Scale the dynamic frontier over worker counts, then hurt it.

    Three clean runs (1/2/4 workers) measure scaling of the
    crash-tolerant batched-claim frontier in its adaptive-sharding
    default; a fourth runs 4 workers under the seeded
    :class:`~repro.chaos.workers.WorkerKiller` to price recovery.
    Every run must reproduce the serial walk's decision vectors,
    violations and completeness — scaling and kills change wall clock,
    never the search.

    Per worker count the report records the coordination counters
    (claims, claim round trips, heartbeats, exchange pulls) and
    ``scaling_efficiency = single_elapsed / (workers * wall_clock)``
    (1.0 = perfectly linear).  Two machine-independent gates always
    hold: claims ≥ round trips (batching amortizes), and 1-worker
    claims fit in a handful of round trips.  The wall-clock gates —
    1-worker overhead ≤ 1.3x single, 4-worker wall < 1-worker wall —
    are asserted only under ``BENCH_EXPLORE_STRICT=1`` *and* enough
    cores to make them physical (time-shared single-core runners
    cannot beat a serial walk with 4 processes); the
    ``repro.store check`` trend gate carries them across CI runs via
    ``frontier.overhead_1_vs_single`` and ``frontier.wall_1_over_wall_4``.
    """
    from repro.explore.frontierd import explore_case_dynamic

    started = time.perf_counter()
    single = explore_case(case)
    single_s = time.perf_counter() - started

    def gate(result, name):
        assert result.decision_vectors == single.decision_vectors, name
        assert len(result.violations) == len(single.violations), name
        assert result.complete, name

    scaling = {}
    for workers in (1, 2, 4):
        result = explore_case_dynamic(case, workers=workers, lease_ttl=5.0)
        gate(result, f"workers={workers}")
        block = result.frontier
        wall = block["wall_clock"]
        scaling[str(workers)] = {
            "wall_clock": wall,
            "runs": result.runs,
            "recoveries": block["recoveries"],
            "claims": block["claims"],
            "claim_round_trips": block["claim_round_trips"],
            "heartbeats": block["heartbeats"],
            "exchange_pulls": block["exchange_pulls"],
            "scaling_efficiency": (
                round(single_s / (workers * wall), 3) if wall else None
            ),
        }

    # Machine-independent: batching must move at least one item per
    # round trip everywhere, and a lone worker must drain the whole
    # queue in a handful of claims (it takes the entire tree as one
    # batch, plus whatever it re-split while briefly under budget).
    for workers, row in scaling.items():
        assert row["claims"] >= row["claim_round_trips"], (workers, row)
    assert scaling["1"]["claim_round_trips"] <= 4, scaling["1"]

    overhead_1 = scaling["1"]["wall_clock"] / single_s if single_s else None
    wall_ratio = (
        scaling["1"]["wall_clock"] / scaling["4"]["wall_clock"]
        if scaling["4"]["wall_clock"]
        else None
    )
    cores = os.cpu_count() or 1
    if os.environ.get("BENCH_EXPLORE_STRICT") and cores >= 2:
        assert overhead_1 is not None and overhead_1 <= MAX_FRONTIER_OVERHEAD, (
            overhead_1,
            scaling,
        )
        assert wall_ratio is not None and wall_ratio > 1.0, (
            wall_ratio,
            scaling,
        )

    chaos = explore_case_dynamic(
        case,
        workers=4,
        lease_ttl=1.5,
        chaos_kill_rate=0.3,
        chaos_seed=7,
    )
    gate(chaos, "chaos")
    chaos_block = chaos.frontier
    clean_wall = scaling["4"]["wall_clock"]
    return {
        "case": case.describe(),
        "shard_mode": chaos_block["shard_mode"],
        "shard_budget": chaos_block["shard_budget"],
        "claim_limit": chaos_block["claim_limit"],
        "cpu_cores": cores,
        "single_elapsed_seconds": round(single_s, 3),
        "overhead_1_vs_single": (
            round(overhead_1, 3) if overhead_1 is not None else None
        ),
        "wall_1_over_wall_4": (
            round(wall_ratio, 3) if wall_ratio is not None else None
        ),
        "scaling": scaling,
        "recovery": {
            "kill_rate": 0.3,
            "wall_clock": chaos_block["wall_clock"],
            "kills": chaos_block["kills"],
            "recoveries": chaos_block["recoveries"],
            "respawns": chaos_block["respawns"],
            "claims": chaos_block["claims"],
            "claim_round_trips": chaos_block["claim_round_trips"],
            "overhead_vs_clean": round(
                chaos_block["wall_clock"] / clean_wall, 2
            ) if clean_wall else None,
        },
    }


def run_benchmark(
    report_path: str = "BENCH_explore.json", frontier_only: bool = False
) -> dict:
    if frontier_only:
        report = {"frontier": run_frontier_bench()}
    else:
        cases = [run_case_bench(case) for case in CASES]
        speedups = [c["wall_speedup_incremental_vs_legacy"] for c in cases]
        native_speedups = [
            c["wall_speedup_native_vs_incremental"]
            for c in cases
            if c["wall_speedup_native_vs_incremental"] is not None
        ]
        report = {
            "native": _native.status(),
            "min_fp_work_reduction": min(
                c["fp_work_reduction"] for c in cases
            ),
            "min_wall_speedup": min(speedups),
            "min_native_wall_speedup": (
                min(native_speedups) if native_speedups else None
            ),
            "cases": cases,
            "encoder": (
                run_encoder_bench() if _native.available() else None
            ),
            "sharded": run_sharded_bench(),
            "frontier": run_frontier_bench(),
        }
        if os.environ.get("BENCH_EXPLORE_STRICT"):
            assert report["min_wall_speedup"] >= MIN_WALL_SPEEDUP, report
        if os.environ.get("BENCH_NATIVE_STRICT"):
            # run_encoder_bench already asserted the ≥1.5x gate; here
            # we insist the extension really built (a silent compile
            # failure on the CI native leg must fail the build) and
            # that the whole-search ratio at least moved the needle.
            assert report["native"]["available"], report["native"]
            assert report["encoder"] is not None
            assert report["min_native_wall_speedup"] is not None, report
    Path(report_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_explorer_bench_small():
    """The pytest-visible slice: the two cheap cases, counter gates only."""
    for case in CASES[:2]:
        result = run_case_bench(case)
        assert result["fp_work_reduction"] >= MIN_FP_WORK_REDUCTION


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--frontier-only",
        action="store_true",
        help="run (and write) only the frontier scaling section",
    )
    parser.add_argument(
        "--report",
        default="BENCH_explore.json",
        help="report path (default: BENCH_explore.json)",
    )
    args = parser.parse_args()
    print(
        json.dumps(
            run_benchmark(args.report, frontier_only=args.frontier_only),
            indent=2,
        )
    )
