"""Benchmark for E5: the Figure 3 Ψ-extraction pipeline.

This is the heaviest experiment in the suite (DAG gossip + simulation
forest + real executions + Ω/Σ loops, four scenarios); it runs one
timed round.
"""

from benchmarks.conftest import run_experiment_once
from repro.experiments.e05_extract_psi import run as run_e05


def test_e05_extract_psi_table(benchmark):
    run_experiment_once(benchmark, run_e05, seed=1)
