"""Benchmarks for E3 (consensus crossover) and consensus scaling."""

import pytest

from benchmarks.conftest import run_experiment_once
from repro.core.detectors import omega_sigma_oracle
from repro.core.environment import CrashFreeEnvironment
from repro.experiments.e03_consensus import run as run_e03
from repro.sim.system import SystemBuilder, decided
from repro.consensus.interface import consensus_component
from repro.consensus.paxos import OmegaSigmaConsensusCore


def test_e03_consensus_table(benchmark):
    """E3: (Omega,Sigma) everywhere vs Omega+majorities crossover."""
    run_experiment_once(benchmark, run_e03, seed=0, n=5)


def _consensus_run(n, seed=0):
    proposals = {p: f"v{p}" for p in range(n)}
    trace = (
        SystemBuilder(n=n, seed=seed, horizon=80_000)
        .environment(CrashFreeEnvironment(n))
        .detector(omega_sigma_oracle())
        .component(
            "consensus",
            consensus_component(lambda pid: OmegaSigmaConsensusCore(proposals[pid])),
        )
        .build()
        .run(stop_when=decided("consensus"))
    )
    assert trace.all_correct_decided("consensus")
    return trace


@pytest.mark.parametrize("n", [3, 5, 9, 13])
def test_consensus_scaling(benchmark, n):
    """Wall time and message volume of one decision as n grows."""
    trace = benchmark.pedantic(lambda: _consensus_run(n), rounds=1, iterations=1)
    benchmark.extra_info["messages"] = trace.messages_sent
    benchmark.extra_info["latency_steps"] = trace.decision_latency("consensus")
