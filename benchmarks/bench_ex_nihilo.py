"""Benchmarks for E8 (Σ ex nihilo) and E9 (heartbeat detectors)."""

from benchmarks.conftest import run_experiment_once
from repro.experiments.e08_sigma_ex_nihilo import run as run_e08
from repro.experiments.e09_heartbeats import run as run_e09


def test_e08_sigma_ex_nihilo_table(benchmark):
    run_experiment_once(benchmark, run_e08, seed=0, n=5)


def test_e09_heartbeats_table(benchmark):
    run_experiment_once(benchmark, run_e09, seed=0)
