"""Benchmark for E2: the Figure 1 Σ-extraction pipeline."""

from benchmarks.conftest import run_experiment_once
from repro.experiments.e02_extract_sigma import run as run_e02


def test_e02_extract_sigma_table(benchmark):
    run_experiment_once(benchmark, run_e02, seed=0, n=4)
