"""Benchmark harness configuration.

Every experiment (DESIGN.md §4) gets a benchmark that times its full
regeneration and asserts the table still matches the paper's claims —
so `pytest benchmarks/ --benchmark-only` is simultaneously a perf
baseline and an end-to-end regression gate.

Most experiment benches run a single round (they are multi-second,
deterministic, and time-stable); micro-benchmarks of the simulator
substrate use pytest-benchmark's default calibration.
"""

import pytest


def run_experiment_once(benchmark, experiment_fn, **kwargs):
    """Benchmark one experiment round and assert its verdict."""
    result = benchmark.pedantic(
        lambda: experiment_fn(**kwargs), rounds=1, iterations=1
    )
    assert result.ok, f"{result.experiment_id} mismatched: {result.rows}"
    return result
