"""Benchmark for E12: the staged FLP adversary."""

from benchmarks.conftest import run_experiment_once
from repro.experiments.e12_flp import run as run_e12


def test_e12_flp_table(benchmark):
    run_experiment_once(benchmark, run_e12, seed=0, n=3)
