"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation sweeps one knob of an algorithm and reports the cost
curve in `extra_info` — the data behind the defaults:

* consensus retry pacing (leader re-examination interval);
* Figure 3 gossip cadence (sample/gossip frequency vs extraction
  latency);
* Figure 3 prefix stride (Σ-extraction fidelity vs cost).
"""

import pytest

from repro.consensus.interface import consensus_component
from repro.consensus.paxos import OmegaSigmaConsensusCore
from repro.core.detectors import PsiOracle, omega_sigma_oracle
from repro.core.detectors.psi import OMEGA_SIGMA_BRANCH
from repro.core.failure_pattern import FailurePattern
from repro.core.specs import check_psi
from repro.protocols.base import CoreComponent
from repro.qc.extract_psi import PsiExtraction
from repro.qc.psi_qc import PsiQCCore
from repro.sim.probes import OutputRecorder
from repro.sim.system import SystemBuilder, decided


@pytest.mark.parametrize("retry_interval", [2, 8, 32])
def test_ablation_consensus_retry_interval(benchmark, retry_interval):
    """Leader pacing: too eager wastes messages on duelling ballots,
    too lazy inflates latency."""

    def run():
        proposals = {p: f"v{p}" for p in range(4)}
        return (
            SystemBuilder(n=4, seed=3, horizon=80_000)
            .pattern(FailurePattern(4, {0: 40}))
            .detector(omega_sigma_oracle())
            .component(
                "consensus",
                consensus_component(
                    lambda pid: OmegaSigmaConsensusCore(
                        proposals[pid], retry_interval=retry_interval
                    )
                ),
            )
            .build()
            .run(stop_when=decided("consensus"))
        )

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    assert trace.all_correct_decided("consensus")
    benchmark.extra_info["messages"] = trace.messages_sent
    benchmark.extra_info["latency_steps"] = trace.decision_latency("consensus")


def _extraction_run(sample_every, gossip_every, prefix_stride, horizon=14_000):
    system = (
        SystemBuilder(n=3, seed=1, horizon=horizon)
        .pattern(FailurePattern.crash_free(3))
        .detector(PsiOracle(branch=OMEGA_SIGMA_BRANCH))
        .component(
            "xpsi",
            lambda pid: CoreComponent(
                PsiExtraction(
                    qc_factory=lambda: PsiQCCore(),
                    sample_every=sample_every,
                    gossip_every=gossip_every,
                    prefix_stride=prefix_stride,
                )
            ),
        )
        .component("probe", lambda pid: OutputRecorder("xpsi", "psi-x"))
        .build()
    )
    trace = system.run()
    verdict = check_psi(trace.annotations["psi-x"], trace.pattern)
    switch_times = []
    for pid in range(3):
        core = system.component_at(pid, "xpsi").core
        if core.branch is not None:
            switch_times.append(core.sigma_rounds)
    return trace, verdict, switch_times


@pytest.mark.parametrize("gossip_every", [2, 8, 24])
def test_ablation_extraction_gossip_cadence(benchmark, gossip_every):
    """Gossip cadence: rare gossip stalls the simulation forest (paths
    wait for knowledge), eager gossip floods the network."""
    trace, verdict, _ = benchmark.pedantic(
        lambda: _extraction_run(2, gossip_every, 10), rounds=1, iterations=1
    )
    assert verdict.ok, verdict.violations
    benchmark.extra_info["messages"] = trace.messages_sent


@pytest.mark.parametrize("prefix_stride", [4, 16, 64])
def test_ablation_extraction_prefix_stride(benchmark, prefix_stride):
    """Σ-extraction prefix stride: 1 replays every prefix (the paper's
    C exactly); larger strides subsample C for speed.  The emitted
    quorums must satisfy Σ at every stride."""
    trace, verdict, rounds = benchmark.pedantic(
        lambda: _extraction_run(2, 4, prefix_stride), rounds=1, iterations=1
    )
    assert verdict.ok, verdict.violations
    benchmark.extra_info["sigma_rounds"] = sum(rounds)
