"""Benchmark for E13: the detector-hierarchy reduction table."""

from benchmarks.conftest import run_experiment_once
from repro.experiments.e13_hierarchy import run as run_e13


def test_e13_hierarchy_table(benchmark):
    run_experiment_once(benchmark, run_e13, seed=0)
