"""Micro-benchmarks of the simulation substrate itself.

These put numbers on the machinery every experiment rides on: raw
step throughput, network send/deliver cost, tasklet scheduling, the
linearizability checker, and oracle history generation.
"""

import random

import pytest

from repro.core.detectors import PsiOracle, SigmaOracle, omega_sigma_oracle
from repro.core.failure_pattern import FailurePattern
from repro.registers.linearizability import check_linearizable
from repro.sim.network import ConstantDelay, Network
from repro.sim.process import Component
from repro.sim.system import SystemBuilder
from repro.sim.tasklets import TaskletDriver, WaitSteps
from repro.sim.trace import OperationRecord


class ChatterBox(Component):
    """Each process pings a random peer every step (worst-case load)."""

    name = "chatter"

    def __init__(self):
        super().__init__()
        self._rng = random.Random(0)

    def on_step(self):
        self.send(self._rng.randrange(self.n), "ping")

    def on_message(self, sender, payload, meta):
        pass


def test_step_throughput(benchmark):
    """Steps/second with one message sent and one delivered per step."""

    def run():
        return (
            SystemBuilder(n=5, seed=0, horizon=20_000)
            .component("chatter", lambda pid: ChatterBox())
            .build()
            .run()
        )

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(trace.steps) == 20_000


def test_network_send_deliver(benchmark):
    net = Network(4, random.Random(0), delay_model=ConstantDelay(1))

    def churn():
        for i in range(1_000):
            net.send(0, i % 4, "c", i, now=i)
        delivered = 0
        for t in range(1_001, 3_000):
            for dest in range(4):
                if net.pick_for(dest, t):
                    delivered += 1
        return delivered

    assert benchmark(churn) == 1_000


def test_tasklet_driver(benchmark):
    def spin():
        driver = TaskletDriver()

        def task():
            for _ in range(100):
                yield WaitSteps(1)

        for _ in range(50):
            driver.spawn(task())
        for _ in range(120):
            driver.advance()
        return driver.active_count

    assert benchmark(spin) == 0


def test_linearizability_checker(benchmark):
    """A 60-operation, 3-client concurrent history."""
    rng = random.Random(7)
    ops = []
    current = {}
    t = 0
    for i in range(60):
        t += rng.randint(1, 3)
        reg = rng.choice(["x", "y", "z"])
        pid = i % 3
        if rng.random() < 0.5:
            value = (pid, i)
            rec = OperationRecord(i, pid, "reg", "write", (reg, value), t)
            current[reg] = value
        else:
            rec = OperationRecord(i, pid, "reg", "read", (reg,), t)
            rec.result = current.get(reg)
        rec.response_time = t + rng.randint(1, 4)
        ops.append(rec)
    verdict = benchmark(check_linearizable, ops)
    assert verdict.ok


@pytest.mark.parametrize(
    "oracle",
    [SigmaOracle(), PsiOracle(), omega_sigma_oracle()],
    ids=["Sigma", "Psi", "OmegaSigma"],
)
def test_oracle_history_generation(benchmark, oracle):
    pattern = FailurePattern(4, {3: 100})

    def build_and_sample():
        history = oracle.build_history(pattern, 2_000, random.Random(1))
        return [history.value(p, t) for p in range(4) for t in range(0, 2_000, 7)]

    values = benchmark(build_and_sample)
    assert len(values) == 4 * len(range(0, 2_000, 7))
