"""Micro-benchmarks of the simulation substrate itself.

These put numbers on the machinery every experiment rides on: raw
step throughput, network send/deliver cost, tasklet scheduling, the
linearizability checker, and oracle history generation.

The engine benches at the bottom (sparse long-horizon, high-fanout,
and raw buffer churn) compare the seed's :class:`ReferenceNetwork`
against the indexed :class:`Network`, the compiled
:class:`NativeNetwork` (when ``repro._native`` is built), and the
quiescence time-leap, assert trace equality, and write
``BENCH_sim.json``.  Run them without pytest via
``python benchmarks/bench_simulator.py``; the wall-clock speedup
assertions (machine-dependent) only arm under ``BENCH_SIM_STRICT=1``
(leap vs reference) / ``BENCH_NATIVE_STRICT=1`` (native vs indexed
churn), while the counter and digest gates (machine-independent)
always hold — they are what the CI perf-smoke job checks.
"""

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro import _native
from repro.core.detectors import PsiOracle, SigmaOracle, omega_sigma_oracle
from repro.core.failure_pattern import FailurePattern
from repro.registers.linearizability import check_linearizable
from repro.sim.network import (
    ConstantDelay,
    NativeNetwork,
    Network,
    OldestFirstDelivery,
    ReferenceNetwork,
    UniformDelay,
)
from repro.sim.process import Component
from repro.sim.system import SystemBuilder, network_implementation
from repro.sim.tasklets import TaskletDriver, WaitSteps
from repro.sim.trace import OperationRecord


class ChatterBox(Component):
    """Each process pings a random peer every step (worst-case load)."""

    name = "chatter"

    def __init__(self):
        super().__init__()
        self._rng = random.Random(0)

    def on_step(self):
        self.send(self._rng.randrange(self.n), "ping")

    def on_message(self, sender, payload, meta):
        pass


def test_step_throughput(benchmark):
    """Steps/second with one message sent and one delivered per step."""

    def run():
        return (
            SystemBuilder(n=5, seed=0, horizon=20_000)
            .component("chatter", lambda pid: ChatterBox())
            .build()
            .run()
        )

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(trace.steps) == 20_000


def test_network_send_deliver(benchmark):
    net = Network(4, random.Random(0), delay_model=ConstantDelay(1))

    def churn():
        for i in range(1_000):
            net.send(0, i % 4, "c", i, now=i)
        delivered = 0
        for t in range(1_001, 3_000):
            for dest in range(4):
                if net.pick_for(dest, t):
                    delivered += 1
        return delivered

    assert benchmark(churn) == 1_000


def test_tasklet_driver(benchmark):
    def spin():
        driver = TaskletDriver()

        def task():
            for _ in range(100):
                yield WaitSteps(1)

        for _ in range(50):
            driver.spawn(task())
        for _ in range(120):
            driver.advance()
        return driver.active_count

    assert benchmark(spin) == 0


def test_linearizability_checker(benchmark):
    """A 60-operation, 3-client concurrent history."""
    rng = random.Random(7)
    ops = []
    current = {}
    t = 0
    for i in range(60):
        t += rng.randint(1, 3)
        reg = rng.choice(["x", "y", "z"])
        pid = i % 3
        if rng.random() < 0.5:
            value = (pid, i)
            rec = OperationRecord(i, pid, "reg", "write", (reg, value), t)
            current[reg] = value
        else:
            rec = OperationRecord(i, pid, "reg", "read", (reg,), t)
            rec.result = current.get(reg)
        rec.response_time = t + rng.randint(1, 4)
        ops.append(rec)
    verdict = benchmark(check_linearizable, ops)
    assert verdict.ok


@pytest.mark.parametrize(
    "oracle",
    [SigmaOracle(), PsiOracle(), omega_sigma_oracle()],
    ids=["Sigma", "Psi", "OmegaSigma"],
)
def test_oracle_history_generation(benchmark, oracle):
    pattern = FailurePattern(4, {3: 100})

    def build_and_sample():
        history = oracle.build_history(pattern, 2_000, random.Random(1))
        return [history.value(p, t) for p in range(4) for t in range(0, 2_000, 7)]

    values = benchmark(build_and_sample)
    assert len(values) == 4 * len(range(0, 2_000, 7))


# ----------------------------------------------------------------------
# Engine benches: reference vs indexed vs indexed + time-leap
# ----------------------------------------------------------------------
class SparseRing(Component):
    """A single ball circling the ring forever, 400 ticks per hop.

    Message-driven (no on_step), so every process is quiescent while
    the ball is in flight — the time-leap's target regime: >99% of
    ticks are λ-steps that provably cannot change any state.
    """

    name = "ring"

    def on_start(self):
        if self.pid == 0:
            self.send((self.pid + 1) % self.n, "ball")

    def on_message(self, sender, payload, meta):
        self.send((self.pid + 1) % self.n, payload)


class FanoutChatter(Component):
    """Every scheduled step sends one long-delay message to a random
    peer: hundreds of messages stay in flight at any moment, which is
    exactly where the reference buffer's O(pending) rescans hurt."""

    name = "chatter"

    def __init__(self, pid: int):
        super().__init__()
        self._rng = random.Random(pid)

    def on_step(self):
        self.send(self._rng.randrange(self.n), "ping")

    def on_message(self, sender, payload, meta):
        pass


def _run_engine(impl, builder_fn, time_leap=False):
    with network_implementation(impl):
        system = builder_fn(time_leap)
    started = time.perf_counter()
    trace = system.run()
    elapsed = time.perf_counter() - started
    perf = system.perf
    return {
        "elapsed_seconds": round(elapsed, 3),
        "steps": trace.step_count(),
        "steps_per_second": round(trace.step_count() / elapsed) if elapsed else None,
        "digest": trace.digest(),
        "messages_delivered": perf.messages_delivered,
        "scanned_per_delivery": round(perf.scanned_per_delivery(), 3),
        "leap_ratio": round(perf.leap_ratio(), 4),
        "_elapsed_raw": elapsed,
    }


def run_sparse_bench() -> dict:
    """Long-horizon sparse traffic: one delivery per 400 ticks."""

    def build(time_leap):
        return (
            SystemBuilder(n=4, seed=0, horizon=120_000)
            .delays(ConstantDelay(400))
            .trace_mode("lite")
            .component("ring", lambda pid: SparseRing())
            .time_leap(time_leap)
            .build()
        )

    results = {
        "reference": _run_engine(ReferenceNetwork, build),
        "indexed": _run_engine(Network, build),
        "indexed_leap": _run_engine(Network, build, time_leap=True),
    }
    if _native.available():
        results["native"] = _run_engine(NativeNetwork, build)
        results["native_leap"] = _run_engine(NativeNetwork, build, time_leap=True)
    digests = {r["digest"] for r in results.values()}
    assert len(digests) == 1, f"engines diverged: {results}"
    assert results["indexed_leap"]["leap_ratio"] > 0.9
    speedup = (
        results["reference"]["_elapsed_raw"]
        / results["indexed_leap"]["_elapsed_raw"]
    )
    native_speedup = None
    if "native" in results:
        native_speedup = round(
            results["indexed"]["_elapsed_raw"]
            / results["native"]["_elapsed_raw"],
            2,
        )
    for r in results.values():
        del r["_elapsed_raw"]
    report = {
        "horizon": 120_000,
        "speedup_leap_vs_reference": round(speedup, 2),
        "speedup_native_vs_indexed": native_speedup,
    }
    report.update(results)
    return report


def run_fanout_bench() -> dict:
    """High-fanout pending buffers: ~1 send/tick with 300–900 tick
    delays keeps hundreds of messages in flight, so the reference's
    per-pick rescans cost O(pending) while the indexed engine's stay
    amortized O(1 + log pending)."""

    def build(time_leap):
        return (
            SystemBuilder(n=8, seed=0, horizon=30_000)
            .delays(UniformDelay(300, 900))
            .trace_mode("lite")
            .component("chatter", FanoutChatter)
            .time_leap(time_leap)
            .build()
        )

    results = {
        "reference": _run_engine(ReferenceNetwork, build),
        "indexed": _run_engine(Network, build),
        # Unfair-adversary regimes run without the leap, but the fanout
        # workload is leap-eligible — this row keeps the leap's fanout
        # behaviour trended (it was missing from the section entirely,
        # so a fanout-side leap regression was invisible).
        "indexed_leap": _run_engine(Network, build, time_leap=True),
    }
    if _native.available():
        results["native"] = _run_engine(NativeNetwork, build)
    digests = {r["digest"] for r in results.values()}
    assert len(digests) == 1, f"engines diverged: {results}"
    # The machine-independent gates the CI perf-smoke job relies on.
    assert results["indexed"]["scanned_per_delivery"] < 5.0
    assert (
        results["reference"]["scanned_per_delivery"]
        > 10 * results["indexed"]["scanned_per_delivery"]
    )
    native_speedup = None
    if "native" in results:
        assert (
            results["native"]["scanned_per_delivery"]
            == results["indexed"]["scanned_per_delivery"]
        ), "native buffers must do identical counted work"
        native_speedup = round(
            results["indexed"]["_elapsed_raw"]
            / results["native"]["_elapsed_raw"],
            2,
        )
    for r in results.values():
        del r["_elapsed_raw"]
    report = {
        "horizon": 30_000,
        "speedup_native_vs_indexed": native_speedup,
    }
    report.update(results)
    return report


#: Churn-bench shape: enough in-flight messages that the buffer
#: operations dominate, with zero sim-loop overhead in the timed region.
CHURN_SENDS = 60_000
MIN_NATIVE_CHURN_SPEEDUP = 1.5


def _churn(impl) -> dict:
    """Raw buffer throughput: the network core alone, no sim loop.

    Drives send/pick/ready_for/pending/next_ready_time directly with a
    deterministic schedule, so the indexed-vs-native delta is pure
    buffer mechanics — the regime where the compiled port's headline
    ratio is physical (inside a full sim run the Python step loop
    dilutes it).  Returns the delivery order so callers can assert the
    engines are move-for-move identical, not just fast.
    """
    n = 8
    net = impl(
        n,
        random.Random(0),
        delay_model=UniformDelay(5, 120),
        delivery_policy=OldestFirstDelivery(),
    )
    driver = random.Random(1)
    order = []
    started = time.perf_counter()
    now = 0
    for i in range(CHURN_SENDS):
        now += driver.randrange(3)
        net.send(
            driver.randrange(n), driver.randrange(n), "c", i, now=now
        )
        if i % 3 == 0:
            msg = net.pick_for(driver.randrange(n), now)
            if msg is not None:
                order.append(msg.msg_id)
        if i % 64 == 0:
            order.append(len(net.ready_for(driver.randrange(n), now)))
            order.append(net.next_ready_time(range(n), now) or -1)
    while net.pending_count():
        now += 1
        for dest in range(n):
            msg = net.pick_for(dest, now)
            while msg is not None:
                order.append(msg.msg_id)
                msg = net.pick_for(dest, now)
    elapsed = time.perf_counter() - started
    return {
        "elapsed_seconds": round(elapsed, 3),
        "sends_per_second": round(CHURN_SENDS / elapsed) if elapsed else None,
        "delivered": net.delivered_count,
        "heap_pushes": net.perf.heap_pushes,
        "heap_pops": net.perf.heap_pops,
        "messages_scanned": net.perf.messages_scanned,
        "_order": order,
        "_elapsed_raw": elapsed,
    }


def run_churn_bench() -> dict:
    """Indexed vs native on raw buffer churn, delivery-order checked."""
    results = {
        "reference": _churn(ReferenceNetwork),
        "indexed": _churn(Network),
    }
    if _native.available():
        results["native"] = _churn(NativeNetwork)
    base = results["indexed"]
    for name, row in results.items():
        assert row["_order"] == base["_order"], f"{name} diverged from indexed"
        assert row["delivered"] == base["delivered"], name
    native_speedup = None
    if "native" in results:
        for counter in ("heap_pushes", "heap_pops", "messages_scanned"):
            assert results["native"][counter] == base[counter], counter
        native_speedup = round(
            base["_elapsed_raw"] / results["native"]["_elapsed_raw"], 2
        )
        if os.environ.get("BENCH_NATIVE_STRICT"):
            assert native_speedup >= MIN_NATIVE_CHURN_SPEEDUP, results
    for row in results.values():
        del row["_order"], row["_elapsed_raw"]
    report = {
        "sends": CHURN_SENDS,
        "speedup_native_vs_indexed": native_speedup,
    }
    report.update(results)
    return report


def run_benchmark(report_path: str = "BENCH_sim.json") -> dict:
    report = {
        "native": _native.status(),
        "sparse": run_sparse_bench(),
        "fanout": run_fanout_bench(),
        "churn": run_churn_bench(),
    }
    if os.environ.get("BENCH_SIM_STRICT"):
        assert report["sparse"]["speedup_leap_vs_reference"] >= 3.0, report
    if os.environ.get("BENCH_NATIVE_STRICT"):
        assert report["native"]["available"], report["native"]
    Path(report_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_sparse_long_horizon_bench():
    report = run_sparse_bench()
    assert report["indexed_leap"]["leap_ratio"] > 0.95


def test_high_fanout_bench():
    report = run_fanout_bench()
    assert report["indexed"]["scanned_per_delivery"] < 5.0


def test_churn_bench():
    report = run_churn_bench()
    assert report["indexed"]["delivered"] == report["reference"]["delivered"]


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
