#!/usr/bin/env python3
"""Four ways to agree: a consensus algorithm showdown.

The library implements four generations of consensus, spanning the
paper's result and its classical context:

* **(Ω, Σ)** — the paper's weakest-detector algorithm (any environment);
* **Chandra–Toueg ◇S** [4] — the 1996 classic (majority-correct only);
* **registers + Ω** [19] — shared-memory consensus over the ABD-over-Σ
  emulation, the paper's own composition route;
* **Ben-Or** — randomized, detector-free (majority-correct only).

This example runs all four on the same crash scenario and prints a
comparison; then re-runs the majority-bound ones in a minority-correct
scenario to show exactly where they stop and (Ω, Σ) keeps going.

Run:  python examples/consensus_showdown.py   (takes ~10s)
"""

from repro import (
    FailurePattern,
    SystemBuilder,
    check_consensus,
    consensus_component,
    decided,
    omega_sigma_oracle,
)
from repro.analysis.stats import format_table
from repro.consensus.ben_or import BenOrConsensusCore
from repro.consensus.chandra_toueg import ChandraTouegConsensusCore
from repro.consensus.paxos import OmegaSigmaConsensusCore
from repro.consensus.shared_memory import (
    BankRegisterSpace,
    SharedMemoryConsensus,
)
from repro.core.detectors import omega_sigma_oracle as os_oracle
from repro.core.detectors.eventually_strong import EventuallyStrongOracle
from repro.registers.abd import RegisterBank
from repro.registers.quorums import SigmaQuorums

N = 5


def run_omega_sigma(pattern, proposals, seed):
    return (
        SystemBuilder(n=N, seed=seed, horizon=150_000)
        .pattern(pattern)
        .detector(omega_sigma_oracle())
        .component(
            "consensus",
            consensus_component(lambda pid: OmegaSigmaConsensusCore(proposals[pid])),
        )
        .build()
        .run(stop_when=decided("consensus"))
    )


def run_chandra_toueg(pattern, proposals, seed):
    return (
        SystemBuilder(n=N, seed=seed, horizon=150_000)
        .pattern(pattern)
        .detector(EventuallyStrongOracle())
        .component(
            "consensus",
            consensus_component(
                lambda pid: ChandraTouegConsensusCore(proposals[pid])
            ),
        )
        .build()
        .run(stop_when=decided("consensus"))
    )


def run_shared_memory(pattern, proposals, seed):
    return (
        SystemBuilder(n=N, seed=seed, horizon=400_000)
        .pattern(pattern)
        .detector(os_oracle())
        .component("reg", lambda pid: RegisterBank(SigmaQuorums()))
        .component(
            "consensus",
            lambda pid: SharedMemoryConsensus(
                proposals[pid],
                lambda c: BankRegisterSpace(c._host.component("reg")),
            ),
        )
        .build()
        .run(stop_when=decided("consensus"))
    )


def run_ben_or(pattern, proposals_binary, seed):
    return (
        SystemBuilder(n=N, seed=seed, horizon=200_000)
        .pattern(pattern)
        .component(
            "consensus",
            consensus_component(
                lambda pid: BenOrConsensusCore(
                    proposals_binary[pid], coin_seed=seed
                )
            ),
        )
        .build()
        .run(stop_when=decided("consensus"))
    )


ALGORITHMS = [
    ("(Omega,Sigma)  [this paper]", run_omega_sigma, False),
    ("Chandra-Toueg <>S  [1996]", run_chandra_toueg, False),
    ("registers + Omega  [19]", run_shared_memory, False),
    ("Ben-Or  [1983, coins]", run_ben_or, True),
]


def showdown(title, pattern, seed):
    print(f"--- {title}: {pattern} ---")
    proposals = {p: f"v{p}" for p in range(N)}
    binary = {p: p % 2 for p in range(N)}
    rows = []
    for name, runner, is_binary in ALGORITHMS:
        trace = runner(pattern, binary if is_binary else proposals, seed)
        verdict = check_consensus(
            trace, binary if is_binary else proposals, "consensus"
        )
        decided_ok = verdict.termination
        rows.append(
            [
                name,
                "decided" if decided_ok else "BLOCKED",
                "yes" if (verdict.agreement and verdict.validity) else "NO",
                trace.decision_latency("consensus") or "-",
                trace.messages_sent,
            ]
        )
    print(format_table(
        ["algorithm", "liveness", "safe", "latency", "messages"], rows
    ))
    print()
    return rows


def main() -> None:
    showdown(
        "Scenario A: one early crash (majority correct)",
        FailurePattern(N, {0: 20}),
        seed=1,
    )
    rows = showdown(
        "Scenario B: three early crashes (majority LOST)",
        FailurePattern(N, {0: 1, 1: 3, 2: 5}),
        seed=2,
    )
    outcome = {name: liveness for name, liveness, *_ in rows}
    assert outcome["(Omega,Sigma)  [this paper]"] == "decided"
    assert outcome["registers + Omega  [19]"] == "decided"
    print("Scenario B is the paper's territory: the majority-bound")
    print("classics (CT's ◇S, Ben-Or's coins) block — safely! — while")
    print("both Σ-powered routes still decide: the direct (Ω, Σ)")
    print("algorithm and the paper's own composition, registers-over-Σ")
    print("plus Ω.  That gap is what 'weakest failure detector for")
    print("consensus in every environment' buys.")


if __name__ == "__main__":
    main()
