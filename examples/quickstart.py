#!/usr/bin/env python3
"""Quickstart: consensus with the weakest failure detector, (Ω, Σ).

The paper's headline result (Corollary 4): (Ω, Σ) is the weakest
failure detector to solve consensus in *any* environment — here, an
environment where 4 of 5 processes may crash, far beyond the classical
majority-correct setting.

Run:  python examples/quickstart.py
"""

from repro import (
    FCrashEnvironment,
    OmegaSigmaConsensusCore,
    SystemBuilder,
    check_consensus,
    consensus_component,
    decided,
    omega_sigma_oracle,
)


def main() -> None:
    n = 5
    proposals = {pid: f"value-from-p{pid}" for pid in range(n)}

    print(f"Running consensus among {n} processes; up to {n - 1} may crash.")
    print(f"Proposals: {proposals}\n")

    trace = (
        SystemBuilder(n=n, seed=2020, horizon=60_000)
        # An environment is a set of failure patterns; this one allows
        # any minority *or majority* of processes to crash at any time.
        .environment(FCrashEnvironment(n, n - 1), crash_window=300)
        # The weakest detector for consensus: an eventual leader (Ω)
        # paired with always-intersecting quorums (Σ).
        .detector(omega_sigma_oracle())
        .component(
            "consensus",
            consensus_component(
                lambda pid: OmegaSigmaConsensusCore(proposals[pid])
            ),
        )
        .build()
        .run(stop_when=decided("consensus"))
    )

    print(f"Failure pattern drawn from the environment: {trace.pattern}")
    print(f"Crashed processes: {sorted(trace.pattern.faulty) or 'none'}")
    for decision in trace.decisions:
        status = "correct" if decision.pid in trace.pattern.correct else "faulty"
        print(
            f"  p{decision.pid} ({status}) decided {decision.value!r} "
            f"at simulated time {decision.time}"
        )

    verdict = check_consensus(trace, proposals)
    print("\nProperty verdicts (Section 4.1):")
    print(f"  Termination:        {verdict.termination}")
    print(f"  Uniform Agreement:  {verdict.agreement}")
    print(f"  Validity:           {verdict.validity}")
    print(f"\nCosts: {trace.messages_sent} messages, "
          f"{len(trace.steps)} steps, "
          f"decision latency {trace.decision_latency('consensus')} steps.")
    assert verdict.ok


if __name__ == "__main__":
    main()
