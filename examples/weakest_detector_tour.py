#!/usr/bin/env python3
"""The necessity directions, live: mining detectors out of algorithms.

"Weakest" has two halves.  Sufficiency is ordinary algorithm design;
necessity is the strange one: *any* algorithm solving the problem can
be made to cough up the detector.  This example runs both extraction
machines:

1. Figure 1 — a detector-free majority-ABD register implementation is
   instrumented and forced to emit a valid Σ ("Σ for free");
2. Figure 3 — a Ψ-based QC algorithm is simulated, interrogated and
   transformed back into a valid Ψ (the CHT-style pipeline: sample
   DAGs, a simulation forest with real executions of the algorithm
   inside a virtual runtime, a live branch agreement, then Ω/Σ
   extraction loops).

Run:  python examples/weakest_detector_tour.py   (takes ~10-20s)
"""

from repro import (
    FailurePattern,
    MajorityQuorums,
    RegisterBank,
    SystemBuilder,
    check_psi,
    check_sigma,
)
from repro.core.detectors import PsiOracle
from repro.protocols.base import CoreComponent
from repro.qc.extract_psi import PsiExtraction
from repro.qc.psi_qc import PsiQCCore
from repro.registers.extract_sigma import SigmaExtraction, initial_registers
from repro.registers.participants import ParticipantTracker
from repro.sim.probes import OutputRecorder


def extract_sigma_from_registers() -> None:
    print("=" * 64)
    print("Figure 1: Σ out of a detector-free register implementation")
    print("=" * 64)
    n = 4
    pattern = FailurePattern(n, {3: 250})  # one crash, majority correct
    system = (
        SystemBuilder(n=n, seed=5, horizon=20_000)
        .pattern(pattern)
        .component("ptrack", lambda pid: ParticipantTracker())
        .component(
            "reg",
            lambda pid: RegisterBank(
                MajorityQuorums(), initial=initial_registers(n)
            ),
        )
        .component("xsigma", lambda pid: SigmaExtraction())
        .build()
    )
    trace = system.run()
    history = trace.annotations["sigma-extraction"]
    print(f"scenario: {pattern}; register impl: majority-ABD, no detector")
    for pid in pattern.correct:
        rounds = system.component_at(pid, "xsigma").rounds_completed
        print(f"  p{pid}: {rounds} write/read rounds, final quorum "
              f"{sorted(history.last_value(pid))}")
    verdict = check_sigma(history, pattern)
    print(f"emitted quorum streams satisfy Σ: {verdict.ok} "
          f"(complete from t={verdict.holds_from})")
    assert verdict.ok, verdict.violations
    print()


def extract_psi_from_qc() -> None:
    print("=" * 64)
    print("Figure 3: Ψ out of an arbitrary QC algorithm")
    print("=" * 64)
    pattern = FailurePattern(3, {1: 300})
    system = (
        SystemBuilder(n=3, seed=3, horizon=16_000)
        .pattern(pattern)
        .detector(PsiOracle())  # D: whatever detector A happens to use
        .component(
            "xpsi",
            lambda pid: CoreComponent(
                PsiExtraction(
                    qc_factory=lambda: PsiQCCore(), prefix_stride=10
                )
            ),
        )
        .component("probe", lambda pid: OutputRecorder("xpsi", "psi-x"))
        .build()
    )
    trace = system.run()
    print(f"scenario: {pattern}; A = Figure 2's QC, D = a Ψ oracle")
    for pid in pattern.correct:
        core = system.component_at(pid, "xpsi").core
        print(f"  p{pid}: forest decisions {core.forest_decisions}, "
              f"branch {core.branch!r}, "
              f"{core.sigma_rounds} Σ rounds, "
              f"{core.leader_rounds} Ω election rounds")
    verdict = check_psi(trace.annotations["psi-x"], pattern)
    print(f"emitted output streams satisfy Ψ: {verdict.ok}")
    assert verdict.ok, verdict.violations
    print()


def main() -> None:
    extract_sigma_from_registers()
    extract_psi_from_qc()
    print("Both necessity machines ran against live algorithms — the")
    print("'weakest' in the paper's title, executed.")


if __name__ == "__main__":
    main()
