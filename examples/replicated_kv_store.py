#!/usr/bin/env python3
"""A crash-tolerant key-value store from Σ (Theorem 1 in anger).

Classical shared-register emulation (ABD) needs a correct majority.
The paper's Theorem 1 replaces majorities with the quorum detector Σ —
and with it, the same algorithm serves reads and writes while *all but
one* replica crash.

This example builds a 5-replica KV store where keys are ABD registers
over Σ quorums, kills three replicas mid-workload, keeps serving from
the survivors, and then certifies the whole recorded history as
linearizable.

Run:  python examples/replicated_kv_store.py
"""

from repro import (
    FailurePattern,
    RegisterBank,
    SigmaOracle,
    SigmaQuorums,
    SystemBuilder,
    check_linearizable,
)
from repro.sim.process import Component
from repro.sim.tasklets import WaitSteps

KEYS = ("user:alice", "user:bob", "cart:42")


class KVClient(Component):
    """Each replica doubles as a client issuing a scripted session."""

    name = "client"

    def __init__(self, session):
        super().__init__()
        self.session = session
        self.log = []
        self.done = False

    def on_start(self):
        self.spawn(self._run(), name=f"kv-client@{self.pid}")

    def _run(self):
        store: RegisterBank = self._host.component("kv")  # type: ignore[assignment]
        for op, key, value in self.session:
            yield WaitSteps(5)
            if op == "put":
                yield from store.write(key, value)
                self.log.append(f"put {key} <- {value!r}")
            else:
                result = yield from store.read(key)
                self.log.append(f"get {key} -> {result!r}")
        self.done = True


def main() -> None:
    n = 5
    # Three of five replicas die while the workload runs.
    pattern = FailurePattern(n, {2: 400, 3: 600, 4: 800})

    sessions = {
        0: [("put", "user:alice", "alice@v1"), ("get", "user:alice", None),
            ("put", "cart:42", ["book"]), ("get", "cart:42", None)],
        1: [("put", "user:bob", "bob@v1"), ("get", "user:alice", None),
            ("put", "user:bob", "bob@v2"), ("get", "user:bob", None)],
        2: [("get", "user:bob", None)],
        3: [("put", "cart:42", ["pen"]), ("get", "cart:42", None)],
        4: [("get", "cart:42", None)],
    }

    system = (
        SystemBuilder(n=n, seed=7, horizon=120_000)
        .pattern(pattern)
        .detector(SigmaOracle())
        .component(
            "kv", lambda pid: RegisterBank(SigmaQuorums(lambda d: d),
                                           record_ops=True)
        )
        .component("client", lambda pid: KVClient(sessions[pid]))
        .build()
    )
    trace = system.run(
        stop_when=lambda s: all(
            s.component_at(p, "client").done for p in s.pattern.correct
        )
    )

    print(f"Replicas: {n}; crashes: "
          f"{ {p: t for p, t in pattern.crash_times.items()} }")
    for pid in range(n):
        client = system.component_at(pid, "client")
        fate = "correct" if pid in pattern.correct else "CRASHED"
        print(f"\nreplica p{pid} [{fate}] session log:")
        for line in client.log:
            print(f"    {line}")

    completed = trace.completed_operations("kv")
    pending = [op for op in trace.operations if op.pending]
    print(f"\n{len(completed)} operations completed, "
          f"{len(pending)} cut off by crashes.")

    verdict = check_linearizable(trace.operations)
    print(f"History linearizable: {verdict.ok}")
    assert verdict.ok, verdict.reason
    print("\nWith majority quorums this workload would block after the "
          "third crash; Σ quorums kept it live with a single survivor "
          "pair — Theorem 1's point.")


if __name__ == "__main__":
    main()
