#!/usr/bin/env python3
"""Distributed transaction commit with (Ψ, FS) — Corollary 10.

The paper's motivating scenario from transaction processing [10]: a
transaction spans several resource managers; each votes Yes ("I can
commit") or No ("we must abort"), and all must agree on Commit or
Abort.  Non-blocking atomic commit is exactly as hard as its weakest
failure detector, (Ψ, FS) — this example runs that stack through three
classic scenarios:

1. every manager votes Yes, nobody crashes     → Commit (mandatory);
2. one manager votes No                        → Abort;
3. one manager crashes before voting           → Abort (non-blocking!).

Run:  python examples/atomic_commit.py
"""

from repro import (
    COMMIT,
    FailurePattern,
    NO,
    SystemBuilder,
    YES,
    check_nbac,
    consensus_component,
    decided,
    psi_fs_nbac_core,
    psi_fs_oracle,
)

MANAGERS = ["orders-db", "payments-db", "inventory-db", "audit-log"]


def run_transaction(title, votes, pattern, seed):
    n = len(votes)
    trace = (
        SystemBuilder(n=n, seed=seed, horizon=90_000)
        .pattern(pattern)
        .detector(psi_fs_oracle())
        .component(
            "nbac",
            consensus_component(lambda pid: psi_fs_nbac_core(votes[pid])),
        )
        .build()
        .run(stop_when=decided("nbac"))
    )
    verdict = check_nbac(trace, votes, "nbac")

    print(f"--- {title} ---")
    for pid, name in enumerate(MANAGERS):
        vote = votes[pid]
        decision = trace.decision_of(pid, "nbac")
        crashed_at = pattern.crash_time(pid)
        state = (
            f"crashed@t={crashed_at}" if crashed_at is not None else "alive"
        )
        outcome = decision.value if decision else "(no decision: crashed)"
        print(f"  {name:<13} voted {vote:<3} [{state:<13}] -> {outcome}")
    print(f"  NBAC spec satisfied: {verdict.ok}\n")
    assert verdict.ok, verdict.violations
    return {d.value for d in trace.decisions}


def main() -> None:
    n = len(MANAGERS)

    outcome = run_transaction(
        "Scenario 1: unanimous Yes, failure-free",
        {p: YES for p in range(n)},
        FailurePattern.crash_free(n),
        seed=11,
    )
    assert outcome == {COMMIT}, "all-Yes and failure-free MUST commit"

    run_transaction(
        "Scenario 2: inventory-db refuses",
        {0: YES, 1: YES, 2: NO, 3: YES},
        FailurePattern.crash_free(n),
        seed=12,
    )

    run_transaction(
        "Scenario 3: payments-db crashes before voting",
        {p: YES for p in range(n)},
        FailurePattern.single_crash(n, 1, 0),
        seed=13,
    )

    print("Note the third scenario: a blocking protocol (2PC with a dead")
    print("coordinator) would wait forever; here FS signals the failure,")
    print("the QC layer quits, and every survivor aborts — 'non-blocking'.")


if __name__ == "__main__":
    main()
