#!/usr/bin/env python3
"""A guided tour of the paper's failure detectors.

Samples each oracle's output at a few processes over a crash scenario
and prints the timelines side by side, then verifies each history
against its formal specification (Section 2 / Section 6.1).

Run:  python examples/detector_zoo.py
"""

import random

from repro import (
    FailurePattern,
    FSOracle,
    OmegaOracle,
    PsiOracle,
    SigmaOracle,
    check_fs,
    check_omega,
    check_psi,
    check_sigma,
)
from repro.core.detector import BOTTOM

HORIZON = 600
SAMPLE_TIMES = [0, 60, 150, 280, 420, 599]


def show(value) -> str:
    if isinstance(value, frozenset):
        return "{" + ",".join(map(str, sorted(value))) + "}"
    if isinstance(value, tuple) and len(value) == 2:
        return f"(ld={value[0]}, q={show(value[1])})"
    if value is BOTTOM:
        return "⊥"
    return str(value)


def tour(name, oracle, pattern, checker) -> None:
    history = oracle.build_history(pattern, HORIZON, random.Random(42))
    print(f"--- {name} ---")
    for pid in pattern.processes:
        fate = (
            f"crashes@{pattern.crash_time(pid)}"
            if pid in pattern.faulty
            else "correct"
        )
        cells = "  ".join(
            f"t={t}:{show(history.value(pid, t))}" for t in SAMPLE_TIMES
        )
        print(f"  p{pid} ({fate:<10}) {cells}")
    verdict = checker(history, pattern)
    print(f"  specification satisfied: {verdict.ok}"
          + (f" (stable from t={verdict.holds_from})"
             if verdict.holds_from is not None else ""))
    print()
    assert verdict.ok, verdict.violations


def main() -> None:
    pattern = FailurePattern(3, {2: 200})
    print(f"Scenario: {pattern}\n")

    tour(
        "Ω — eventual leader: eventually everyone trusts the same "
        "correct process",
        OmegaOracle(),
        pattern,
        check_omega,
    )
    tour(
        "Σ — quorums: any two outputs ever emitted intersect; "
        "eventually all-correct",
        SigmaOracle(),
        pattern,
        check_sigma,
    )
    tour(
        "FS — failure signal: green until a crash really happened, "
        "then eventually red forever",
        FSOracle(),
        pattern,
        check_fs,
    )
    tour(
        "Ψ — the weakest for quittable consensus: ⊥, then (Ω, Σ) "
        "behaviour or (only after a failure) FS behaviour",
        PsiOracle(),
        pattern,
        check_psi,
    )

    print("The paper's results, in detector terms:")
    print("  registers  ≡ Σ        consensus ≡ (Ω, Σ)")
    print("  QC         ≡ Ψ        NBAC      ≡ (Ψ, FS)")


if __name__ == "__main__":
    main()
