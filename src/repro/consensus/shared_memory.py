"""Consensus from registers + Ω — the Lo–Hadzilacos route [19].

Corollary 2's proof is compositional: Σ implements registers (Theorem
1), and "using registers and Ω we can solve consensus in any
environment [19]".  This module reproduces the second leg as a
round-based algorithm over an abstract *register space*:

* rounds ``r = 1, 2, ...``; in each round the process that Ω names
  leader publishes its estimate in a leader register ``L[r]``;
* every process adopts ``L[r]`` (waiting until it is written or the
  leader changes) and feeds it to a *commit-adopt* object ``CA_r``
  built from single-writer registers (Gafni's construction);
* a ``commit`` grade decides; the decision is published in a register
  ``D`` so laggards terminate.

Safety: commit-adopt agreement forces every estimate leaving round
``r`` to equal a committed value, and only processes that traversed
round ``r`` can write ``L[r+1]``, so all later inputs equal it too.
Liveness: once Ω stabilises, a single correct leader writes every
``L[r]``, all inputs agree, and commit-adopt must commit.

The register space is pluggable:

* :class:`InstantRegisterSpace` — magically atomic shared cells, for
  unit-testing the consensus logic in isolation;
* :class:`BankRegisterSpace` — the full message-passing stack: each
  read/write goes through the ABD-over-Σ emulation, making the
  composite a genuine "(Ω, Σ) solves consensus" executable proof.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Generator, Optional

from repro.consensus.paxos import omega_of
from repro.registers.abd import RegisterBank
from repro.sim.process import Component
from repro.sim.tasklets import WaitSteps


class RegisterSpace(ABC):
    """Named atomic registers exposed as tasklet-generator operations."""

    @abstractmethod
    def read(self, name: Any) -> Generator: ...

    @abstractmethod
    def write(self, name: Any, value: Any) -> Generator: ...


class InstantRegisterSpace(RegisterSpace):
    """Atomic-by-construction shared cells (test substrate).

    All processes must share the same instance; each operation
    completes within the invoking step, which trivially linearizes.
    """

    def __init__(self) -> None:
        self._cells: Dict[Any, Any] = {}

    def read(self, name: Any) -> Generator:
        return self._cells.get(name)
        yield  # pragma: no cover - makes this a generator

    def write(self, name: Any, value: Any) -> Generator:
        self._cells[name] = value
        return "ok"
        yield  # pragma: no cover - makes this a generator


class BankRegisterSpace(RegisterSpace):
    """Register space backed by a sibling :class:`RegisterBank`."""

    def __init__(self, bank: RegisterBank, prefix: str = "sm"):
        self.bank = bank
        self.prefix = prefix

    def read(self, name: Any) -> Generator:
        value = yield from self.bank.read((self.prefix, name))
        return value

    def write(self, name: Any, value: Any) -> Generator:
        result = yield from self.bank.write((self.prefix, name), value)
        return result


def commit_adopt(
    space: RegisterSpace, instance: Any, pid: int, n: int, value: Any
) -> Generator:
    """Gafni's commit-adopt from single-writer registers.

    Returns ``(grade, value)`` with grade "commit" or "adopt":

    * if all participants propose ``v``, everyone commits ``v``;
    * if anyone commits ``v``, everyone commits or adopts ``v``.
    """
    yield from space.write(("CA-A", instance, pid), value)
    seen_a = []
    for j in range(n):
        cell = yield from space.read(("CA-A", instance, j))
        if cell is not None:
            seen_a.append(cell)
    if all(v == value for v in seen_a):
        yield from space.write(("CA-B", instance, pid), ("commit", value))
    else:
        yield from space.write(("CA-B", instance, pid), ("adopt", value))
    seen_b = []
    for j in range(n):
        cell = yield from space.read(("CA-B", instance, j))
        if cell is not None:
            seen_b.append(cell)
    commits = [v for flag, v in seen_b if flag == "commit"]
    if commits:
        if all(flag == "commit" and v == commits[0] for flag, v in seen_b):
            return ("commit", commits[0])
        return ("adopt", commits[0])
    return ("adopt", value)


class SharedMemoryConsensus(Component):
    """Round-based consensus from a register space and Ω.

    Parameters
    ----------
    proposal:
        This process's proposal.
    space_factory:
        ``space_factory(self)`` returns the :class:`RegisterSpace` to
        run over (called at start so it can look up sibling
        components).
    omega_extract:
        How to read the leader out of the detector value.
    poll_interval:
        Local steps between re-polls while waiting on ``L[r]``.
    """

    name = "smcons"

    def __init__(
        self,
        proposal: Any,
        space_factory: Callable[["SharedMemoryConsensus"], RegisterSpace],
        omega_extract: Callable[[Any], Optional[int]] = omega_of,
        poll_interval: int = 2,
    ):
        super().__init__()
        if proposal is None:
            raise ValueError("proposals must be non-None")
        self.proposal = proposal
        self.space_factory = space_factory
        self.omega_extract = omega_extract
        self.poll_interval = poll_interval
        self.rounds_used = 0

    def on_start(self) -> None:
        self.spawn(self._run(), name=f"smcons@{self.pid}")

    def on_message(self, sender: int, payload: Any, meta: Dict[str, Any]) -> None:
        raise RuntimeError("shared-memory consensus exchanges no direct messages")

    def _run(self):
        space = self.space_factory(self)
        est = self.proposal
        r = 0
        while True:
            r += 1
            self.rounds_used = r
            decided_value = yield from space.read(("D",))
            if decided_value is not None:
                self.decide(decided_value)
                return

            leader = self.omega_extract(self.detector())
            if leader == self.pid:
                yield from space.write(("L", r), est)

            # Wait for the round's leader value, the leader to change,
            # or a decision to appear.
            round_input = est
            while True:
                lval = yield from space.read(("L", r))
                if lval is not None:
                    round_input = lval
                    break
                decided_value = yield from space.read(("D",))
                if decided_value is not None:
                    self.decide(decided_value)
                    return
                if self.omega_extract(self.detector()) != leader:
                    break
                yield WaitSteps(self.poll_interval)

            grade, est = yield from commit_adopt(
                space, r, self.pid, self.n, round_input
            )
            if grade == "commit":
                yield from space.write(("D",), est)
                self.decide(est)
                return
