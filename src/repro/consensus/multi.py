"""Multi-instance consensus.

Several reductions in the paper consume consensus as a *service* with
many independent instances: state-machine replication decides one
command per slot [17, 21], the binary→multivalued transformation [20]
runs one instance per candidate round, and the NBAC→FS extraction runs
NBAC instances "repeatedly (forever)".  :class:`MultiConsensusCore`
specialises the generic :class:`~repro.protocols.multi.MultiInstanceCore`
to lazily-created :class:`OmegaSigmaConsensusCore` children.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.consensus.paxos import OmegaSigmaConsensusCore
from repro.protocols.multi import MultiInstanceCore


class MultiConsensusCore(MultiInstanceCore):
    """An unbounded family of consensus instances.

    Parameters
    ----------
    instance_factory:
        Builds the core for one instance; defaults to
        :class:`OmegaSigmaConsensusCore` with no initial proposal (the
        instance acts as acceptor until :meth:`propose` supplies one).
    """

    def __init__(
        self,
        instance_factory: Optional[Callable[[str], OmegaSigmaConsensusCore]] = None,
    ):
        super().__init__(
            instance_factory or (lambda tag: OmegaSigmaConsensusCore())
        )

    def propose(self, key: Any, value: Any) -> Generator:
        """Tasklet: propose ``value`` in instance ``key``; returns the
        decision (use as ``decision = yield from multi.propose(k, v)``)."""
        inst = self.instance(key)
        inst.propose(value)  # type: ignore[attr-defined]
        _, decision = yield inst.wait_decided()
        return decision
