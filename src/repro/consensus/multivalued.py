"""Binary → multivalued consensus — the [20] substrate.

Footnote 6 of the paper: "by using the technique of [20] one can
transform any binary QC algorithm into a multivalued one".  This module
reproduces the consensus version of that transformation: given a
*binary* consensus service (instances deciding only 0/1), build
multivalued consensus.

Construction (candidate-election variant):

1. every process reliably disseminates its proposal ``(VAL, pid, v)``;
2. rounds ``k = 0, 1, 2, ...`` consider candidate ``i = k mod n``;
   each process proposes 1 to binary instance ``k`` iff it has received
   candidate ``i``'s value — and *before* proposing 1 it re-broadcasts
   that value to everyone (the echo);
3. the first instance to decide 1 elects its candidate: every process
   waits for (and, by the echo, eventually holds) that candidate's
   value and returns it.

Why it is correct:

* **Validity** — the decision is some process's disseminated proposal.
* **Agreement** — all processes follow the same sequence of binary
  decisions and stop at the first 1.
* **Termination** — the echo precedes any 1-proposal, and in our model
  a message once *sent* is delivered to every correct process even if
  the sender then crashes; so a decided 1 implies everyone eventually
  holds the candidate's value.  Conversely, eventually every correct
  process holds every correct process's value, so some round's instance
  receives only 1-proposals and binary validity forces a 1.

The binary instances come from a sibling
:class:`~repro.consensus.multi.MultiConsensusCore` — but any binary
consensus implementation with the standard interface works, which is
the point of the transformation.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.consensus.multi import MultiConsensusCore
from repro.protocols.base import ProtocolCore
from repro.sim.tasklets import WaitUntil


class MultivaluedFromBinaryCore(ProtocolCore):
    """Multivalued consensus over a binary consensus service.

    Parameters
    ----------
    proposal:
        This process's (arbitrary, hashable) proposal.
    max_rounds:
        Safety valve on candidate rounds (0 = unbounded).
    """

    BINARY_TAG = "bin"

    def __init__(self, proposal: Any, max_rounds: int = 0):
        super().__init__()
        if proposal is None:
            raise ValueError("proposals must be non-None")
        self.proposal = proposal
        self.max_rounds = max_rounds
        self._values: Dict[int, Any] = {}
        self.rounds_used = 0

    def start(self) -> None:
        self.add_child(self.BINARY_TAG, MultiConsensusCore())
        self.broadcast(("VAL", self.pid, self.proposal))
        self._values[self.pid] = self.proposal
        self.spawn(self._run(), name=f"mv@{self.pid}")

    def on_message(self, sender: int, payload: Any) -> None:
        if self.route_to_children(sender, payload):
            return
        kind = payload[0]
        if kind == "VAL":
            _, origin, value = payload
            self._values.setdefault(origin, value)
        else:
            raise ValueError(f"unknown multivalued message {payload!r}")

    def _run(self):
        binary: MultiConsensusCore = self.child(self.BINARY_TAG)  # type: ignore[assignment]
        k = 0
        while self.max_rounds == 0 or k < self.max_rounds:
            candidate = k % self.n
            if candidate in self._values:
                # Echo before voting 1: once this step's sends are out,
                # every correct process will eventually hold the value.
                self.broadcast(("VAL", candidate, self._values[candidate]))
                my_bit = 1
            else:
                my_bit = 0
            bit = yield from binary.propose(k, my_bit)
            k += 1
            self.rounds_used = k
            if bit == 1:
                value = yield WaitUntil(
                    lambda c=candidate: c in self._values
                    and (True, self._values[c])
                )
                self.decide(value[1])
                return
