"""Ben-Or's randomized binary consensus — the other way around FLP.

The paper circumvents FLP [8] with failure detector oracles; the other
classical escape hatch is randomization.  Ben-Or's algorithm (1983)
solves binary consensus with no detector at all, a correct majority,
and local coins — terminating with probability 1 rather than
deterministically.  Including it makes experiment E12's triptych
complete: no help ⇒ stuck; oracle ⇒ deterministic termination;
coins ⇒ probabilistic termination.

Per round ``r`` (n processes, majority correct, f < n/2):

* **Report**: broadcast ``(R, r, est)``; collect ``n - f`` reports.
  If more than ``n/2`` carry the same ``v``, propose ``v``, else ⊥.
* **Propose**: broadcast ``(P, r, proposal)``; collect ``n - f``.
  If at least ``f + 1`` carry the same non-⊥ ``v`` — **decide v**
  (two different values can never both clear f+1 out of n-f, and any
  process's next-round estimate is forced to v);
  else if any non-⊥ ``v`` arrives, adopt ``est = v``;
  else flip a local coin.

A decider broadcasts its decision (plus one final round of messages is
already in flight), so everyone terminates.

Coins are drawn from a deterministic per-(process, round) stream so
runs stay reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.protocols.base import ProtocolCore
from repro.sim.rng import derive_seed
from repro.sim.tasklets import WaitUntil


class BenOrConsensusCore(ProtocolCore):
    """Randomized binary consensus (crash model, f < n/2, no detector).

    Parameters
    ----------
    proposal:
        0 or 1.
    f:
        Resilience bound; defaults to ``(n - 1) // 2`` at start.
    coin_seed:
        Seed of the deterministic coin stream.
    """

    def __init__(self, proposal: Optional[int] = None, f: Optional[int] = None,
                 coin_seed: int = 0):
        super().__init__()
        if proposal is not None and proposal not in (0, 1):
            raise ValueError("Ben-Or is binary: propose 0 or 1")
        self.proposal = proposal
        self._f = f
        self.coin_seed = coin_seed
        self.round = 0
        self.rounds_used = 0
        self.coin_flips = 0
        self._reports: Dict[int, Dict[int, int]] = {}
        self._proposals: Dict[int, Dict[int, Optional[int]]] = {}

    def propose(self, value: int) -> None:
        if value not in (0, 1):
            raise ValueError("Ben-Or is binary: propose 0 or 1")
        if self.proposal is None:
            self.proposal = value

    def start(self) -> None:
        if self._f is None:
            self._f = (self.n - 1) // 2
        self.spawn(self._run(), name=f"benor@{self.pid}")

    def on_message(self, sender: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "R":
            _, r, value = payload
            self._reports.setdefault(r, {})[sender] = value
        elif kind == "P":
            _, r, value = payload
            self._proposals.setdefault(r, {})[sender] = value
        elif kind == "D":
            _, value = payload
            if not self.decided:
                self.decide(value)
        else:
            raise ValueError(f"unknown Ben-Or message {payload!r}")

    def _coin(self, r: int) -> int:
        self.coin_flips += 1
        return random.Random(
            derive_seed(self.coin_seed, f"coin-{self.pid}-{r}")
        ).randint(0, 1)

    def _run(self):
        yield WaitUntil(lambda: self.proposal is not None)
        est = self.proposal
        quorum = self.n - self._f
        while not self.decided:
            self.round += 1
            r = self.round
            self.rounds_used = r

            # Report phase.
            self.broadcast(("R", r, est))
            reports = self._reports.setdefault(r, {})
            yield WaitUntil(
                lambda: self.decided or len(reports) >= quorum
            )
            if self.decided:
                return
            counts = {0: 0, 1: 0}
            for v in reports.values():
                counts[v] += 1
            if counts[0] * 2 > self.n:
                my_prop: Optional[int] = 0
            elif counts[1] * 2 > self.n:
                my_prop = 1
            else:
                my_prop = None

            # Propose phase.
            self.broadcast(("P", r, my_prop))
            proposals = self._proposals.setdefault(r, {})
            yield WaitUntil(
                lambda: self.decided or len(proposals) >= quorum
            )
            if self.decided:
                return
            tallies = {0: 0, 1: 0}
            for v in proposals.values():
                if v is not None:
                    tallies[v] += 1
            decided_value = None
            for v in (0, 1):
                if tallies[v] >= self._f + 1:
                    decided_value = v
            if decided_value is not None:
                self.broadcast(("D", decided_value))
                if not self.decided:
                    self.decide(decided_value)
                return
            if tallies[0] > 0:
                est = 0
            elif tallies[1] > 0:
                est = 1
            else:
                est = self._coin(r)
