"""(Ω, Σ)-based consensus — the sufficiency half of Corollary 4.

The paper obtains "(Ω, Σ) solves consensus in every environment" by
composition: Σ implements registers (Theorem 1) and registers + Ω solve
consensus [19].  That composed route is reproduced in
:mod:`repro.consensus.shared_memory`.  This module implements the
*direct* message-passing algorithm implicit in the same result — a
Paxos-style ballot protocol in which:

* **Ω** tells a process whether it should act as leader (coordinate a
  ballot), and
* **Σ** tells a leader when it has heard from enough processes: a phase
  completes once the responder set contains some currently-output
  quorum.  Σ's perpetual Intersection property gives exactly the
  phase-1/phase-2 quorum intersection that Paxos safety needs, and its
  eventual Completeness gives liveness (eventually quorums contain only
  correct — hence responsive — processes).

Safety holds under any schedule and any number of crashes; termination
needs Ω to stabilise and Σ to become complete, which the oracles
guarantee in every environment.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Optional, Set, Tuple

from repro.core.detector import BOTTOM, is_omega_sigma_value
from repro.protocols.base import ProtocolCore
from repro.sim.tasklets import WaitSteps, WaitUntil


def omega_of(d: Any) -> Optional[int]:
    """Extract the Ω component from a detector value, if present."""
    if is_omega_sigma_value(d):
        return d[0]
    if isinstance(d, int):
        return d
    return None


def sigma_of(d: Any) -> Optional[FrozenSet[int]]:
    """Extract the Σ component from a detector value, if present."""
    if is_omega_sigma_value(d):
        return d[1]
    if isinstance(d, frozenset):
        return d
    return None


class OmegaSigmaConsensusCore(ProtocolCore):
    """Multivalued consensus from (Ω, Σ).

    Parameters
    ----------
    proposal:
        This process's proposal; may be None and supplied later via
        :meth:`propose` (the process acts as acceptor meanwhile).
    omega_extract / sigma_extract:
        How to read Ω and Σ out of the process's detector value.  The
        defaults understand the ``(leader, quorum)`` product encoding
        and ``BOTTOM``/unrelated values (yielding None, which simply
        pauses leadership/quorum progress) — this is what lets the very
        same core run under the Ψ detector inside Figure 2's QC
        algorithm, where (Ω, Σ) only becomes available after Ψ's switch.
    retry_interval:
        Local steps a non-leader (or a nacked leader) waits before
        re-examining leadership.
    """

    def __init__(
        self,
        proposal: Any = None,
        omega_extract: Callable[[Any], Optional[int]] = omega_of,
        sigma_extract: Callable[[Any], Optional[FrozenSet[int]]] = sigma_of,
        retry_interval: int = 8,
    ):
        super().__init__()
        self.proposal = proposal
        self._omega_extract = omega_extract
        self._sigma_extract = sigma_extract
        self.retry_interval = retry_interval

        # Acceptor state.
        self.promised: int = -1
        self.accepted: Optional[Tuple[int, Any]] = None  # (ballot, value)

        # Leader (per-attempt) state.
        self._attempt = 0
        self._p1b: Dict[int, Optional[Tuple[int, Any]]] = {}
        self._p2b: Set[int] = set()
        self._nacked = False

        # Statistics for the benchmark harness.
        self.ballots_started = 0
        self._forwarded_to: Optional[int] = None

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def propose(self, value: Any) -> None:
        """Supply the proposal (enables leadership)."""
        if value is None:
            raise ValueError("proposals must be non-None")
        if self.proposal is None:
            self.proposal = value

    def start(self) -> None:
        self.spawn(self._leader_loop(), name="paxos-leader")

    # ------------------------------------------------------------------
    # Detector access
    # ------------------------------------------------------------------
    def _leader(self) -> Optional[int]:
        return self._omega_extract(self.detector())

    def _quorum(self) -> Optional[FrozenSet[int]]:
        return self._sigma_extract(self.detector())

    def _quorum_reached(self, responders: Set[int]) -> bool:
        quorum = self._quorum()
        return quorum is not None and quorum <= responders

    # ------------------------------------------------------------------
    # Leader protocol
    # ------------------------------------------------------------------
    def _leader_loop(self):
        while not self.decided:
            if self.proposal is None or self._leader() != self.pid:
                # Liveness: the Ω-leader may have no proposal of its own
                # in this instance (e.g. an SMR slot it is not bidding
                # for).  Forward ours so it can coordinate on our
                # behalf; validity is preserved since the adopted value
                # is still some process's proposal.  Links are reliable,
                # so one forward per observed leader suffices — naive
                # periodic re-forwarding floods a stable leader's inbox
                # and starves every other protocol sharing it.
                leader = self._leader()
                if (
                    self.proposal is not None
                    and leader is not None
                    and leader != self.pid
                    and leader != self._forwarded_to
                ):
                    self._forwarded_to = leader
                    self.send(leader, ("FWD", self.proposal))
                yield WaitSteps(self.retry_interval)
                continue

            self._attempt += 1
            self.ballots_started += 1
            ballot = self._attempt * self.n + self.pid
            self._p1b = {}
            self._p2b = set()
            self._nacked = False

            self.broadcast(("P1A", ballot))
            yield WaitUntil(
                lambda: self.decided
                or self._nacked
                or self._quorum_reached(set(self._p1b))
            )
            if self.decided:
                return
            if self._nacked:
                yield WaitSteps(self.retry_interval + self.pid + 1)
                continue

            accepted = [a for a in self._p1b.values() if a is not None]
            if accepted:
                value = max(accepted, key=lambda a: a[0])[1]
            else:
                value = self.proposal

            self.broadcast(("P2A", ballot, value))
            yield WaitUntil(
                lambda: self.decided
                or self._nacked
                or self._quorum_reached(self._p2b)
            )
            if self.decided:
                return
            if self._nacked:
                yield WaitSteps(self.retry_interval + self.pid + 1)
                continue

            # Chosen: a Σ-quorum accepted (ballot, value).  Announce and
            # decide in the same atomic step, so either everyone hears
            # it or the leader never decided.
            self.broadcast(("DECIDE", value))
            if not self.decided:
                self.decide(value)
            return

    # ------------------------------------------------------------------
    # Acceptor protocol
    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "P1A":
            _, ballot = payload
            if ballot > self.promised:
                self.promised = ballot
                self.send(sender, ("P1B", ballot, self.accepted))
            else:
                self.send(sender, ("NACK", ballot))
        elif kind == "P2A":
            _, ballot, value = payload
            if ballot >= self.promised:
                self.promised = ballot
                self.accepted = (ballot, value)
                self.send(sender, ("P2B", ballot))
            else:
                self.send(sender, ("NACK", ballot))
        elif kind == "P1B":
            _, ballot, accepted = payload
            if ballot == self._current_ballot():
                self._p1b[sender] = accepted
        elif kind == "P2B":
            _, ballot = payload
            if ballot == self._current_ballot():
                self._p2b.add(sender)
        elif kind == "NACK":
            _, ballot = payload
            if ballot == self._current_ballot():
                self._nacked = True
        elif kind == "FWD":
            _, value = payload
            if self.proposal is None:
                self.proposal = value
        elif kind == "DECIDE":
            _, value = payload
            if not self.decided:
                self.decide(value)
        else:
            raise ValueError(f"unknown consensus message {payload!r}")

    def _current_ballot(self) -> int:
        return self._attempt * self.n + self.pid
