"""Consensus from the strong detector S — any number of crashes [4].

Chandra–Toueg's S-based algorithm is the classical proof that consensus
tolerates ``n - 1`` crashes *given a strong enough oracle*; the paper
reproduced here shows how little oracle is actually needed ((Ω, Σ)).
Running both side by side locates the price: S's perpetual weak
accuracy cannot be implemented under asynchrony at all, while Σ is free
under a majority and Ω needs only partial synchrony.

The algorithm (set-flooding, three phases):

* **Phase 1** — ``n - 1`` asynchronous rounds; in each, broadcast the
  *newly learned* proposal pairs and wait, for every process ``q``, to
  either receive q's round message or see q suspected (a resolved
  suspicion is latched — S may flicker on unprotected processes).
* **Phase 2** — broadcast the full proposal set; wait likewise; take
  the intersection of all received sets.  The never-suspected process
  threads through every wait, which forces all intersections equal.
* **Phase 3** — decide the value of the smallest pid in the final set.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Set, Tuple

from repro.protocols.base import ProtocolCore
from repro.sim.tasklets import WaitUntil

Pair = Tuple[int, Any]  # (origin pid, proposed value)


class StrongConsensusCore(ProtocolCore):
    """Consensus from S, resilient to ``n - 1`` crashes.

    The detector value is expected to be an S suspicion set.
    """

    def __init__(self, proposal: Any = None, suspects_extract=None):
        super().__init__()
        self.proposal = proposal
        self._suspects = suspects_extract or (
            lambda d: d if isinstance(d, frozenset) else frozenset()
        )
        self._p1: Dict[int, Dict[int, FrozenSet[Pair]]] = {}
        self._p2: Dict[int, FrozenSet[Pair]] = {}
        # Latched per-wait suspicion resolutions (S may flicker).
        self._latched: Dict[Any, Set[int]] = {}

    def propose(self, value: Any) -> None:
        if value is None:
            raise ValueError("proposals must be non-None")
        if self.proposal is None:
            self.proposal = value

    def start(self) -> None:
        self.spawn(self._run(), name=f"s-cons@{self.pid}")

    def on_message(self, sender: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "P1":
            _, r, pairs = payload
            self._p1.setdefault(r, {})[sender] = pairs
        elif kind == "P2":
            _, pairs = payload
            self._p2[sender] = pairs
        else:
            raise ValueError(f"unknown S-consensus message {payload!r}")

    # ------------------------------------------------------------------
    def _resolved(self, key: Any, received: Dict[int, Any]) -> bool:
        """Every process either responded or has been seen suspected."""
        latched = self._latched.setdefault(key, set())
        latched |= self._suspects(self.detector())
        return all(
            q == self.pid or q in received or q in latched
            for q in range(self.n)
        )

    def _run(self):
        yield WaitUntil(lambda: self.proposal is not None)
        known: Set[Pair] = {(self.pid, self.proposal)}
        fresh: Set[Pair] = set(known)

        # Phase 1: n - 1 rounds of flooding the newly learned pairs.
        for r in range(1, self.n):
            self.broadcast(("P1", r, frozenset(fresh)))
            received = self._p1.setdefault(r, {})
            yield WaitUntil(lambda r=r, recv=received: self._resolved(("p1", r), recv))
            snapshot = dict(received)
            fresh = set()
            for pairs in snapshot.values():
                fresh |= set(pairs) - known
            known |= fresh

        # Phase 2: exchange full sets; intersect what arrived.
        self.broadcast(("P2", frozenset(known)))
        yield WaitUntil(lambda: self._resolved("p2", self._p2))
        final = frozenset(known)
        for pairs in dict(self._p2).values():
            final &= pairs

        # Phase 3: deterministic choice from the agreed set.
        assert final, "intersection cannot be empty: it contains the never-suspected process's pairs"
        origin, value = min(final, key=lambda pair: pair[0])
        self.decide(value)