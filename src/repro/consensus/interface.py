"""The consensus problem (Section 4.1) and wiring helpers.

Each process invokes PROPOSE(v) which returns a value, subject to:

* **Termination** — if every correct process proposes, every correct
  process eventually returns a value;
* **Uniform Agreement** — no two processes (correct or faulty) return
  different values;
* **Validity** — a returned value was proposed by some process.

The paper states binary consensus (v ∈ {0, 1}); all implementations
here are natively multivalued (any hashable value), which subsumes it.
The separate binary→multivalued transformation of [20] is reproduced in
:mod:`repro.consensus.multivalued` as a substrate in its own right.
"""

from __future__ import annotations

from typing import Callable

from repro.protocols.base import CoreComponent, ProtocolCore


def consensus_component(
    core_factory: Callable[[int], ProtocolCore],
) -> Callable[[int], CoreComponent]:
    """Wrap a consensus-core factory as a component factory.

    ``core_factory(pid)`` must return an unattached core whose decision
    is the process's consensus output; the wrapping component records it
    in the run trace, where :func:`repro.analysis.properties.check_consensus`
    picks it up.
    """

    def factory(pid: int) -> CoreComponent:
        return CoreComponent(core_factory(pid))

    return factory
