"""The Chandra–Toueg ◇S consensus algorithm [4] — the paper's baseline.

This is the algorithm the reproduced paper generalises: consensus with
the eventually-strong detector ◇S and a *correct majority*.  Rotating
coordinator, four phases per round ``r`` (coordinator ``c = r mod n``):

1. everyone sends its timestamped estimate to ``c``;
2. ``c`` gathers a majority of estimates and adopts one with the
   highest timestamp;
3. everyone waits for ``c``'s proposal *or* suspects ``c`` via ◇S —
   replying ack (adopting the proposal, timestamping it ``r``) or nack;
4. on a majority of acks ``c`` reliably broadcasts the decision; any
   nack sends ``c`` (and everyone) to round ``r + 1``.

Safety is the locking argument: a decided value was adopted by a
majority at some round, and every later coordinator's majority of
estimates intersects it, so the highest-timestamp estimate is the
locked value.  Liveness needs the majority (phases 2/4 block without
one) and ◇S's weak accuracy (an eventually-unsuspected correct
coordinator whose round goes through).

Contrast with :mod:`repro.consensus.paxos`: same safety skeleton, but
quorums are hard-wired majorities and coordination rotates instead of
following Ω — which is exactly why it stops at majority-correct
environments and the paper's (Ω, Σ) algorithm does not (experiment E3).
"""

from __future__ import annotations

from typing import Any, Dict, Set, Tuple

from repro.protocols.base import ProtocolCore
from repro.protocols.broadcast import ReliableBroadcastCore
from repro.sim.tasklets import WaitSteps, WaitUntil


class ChandraTouegConsensusCore(ProtocolCore):
    """Consensus from ◇S + a correct majority.

    The detector value is expected to be a ◇S suspicion set
    (``frozenset`` of pids); ``suspects_extract`` adapts other shapes.
    """

    RB_TAG = "rb"

    def __init__(
        self,
        proposal: Any = None,
        suspects_extract=None,
    ):
        super().__init__()
        self.proposal = proposal
        self._suspects = suspects_extract or (
            lambda d: d if isinstance(d, frozenset) else frozenset()
        )
        # Estimate state: (value, timestamp of adopting round).
        self.estimate: Any = None
        self.estimate_ts = 0
        self.round = 0
        # Per-round coordinator state.
        self._estimates: Dict[int, Dict[int, Tuple[Any, int]]] = {}
        self._acks: Dict[int, Set[int]] = {}
        self._nacks: Dict[int, Set[int]] = {}
        self._proposals_seen: Dict[int, Any] = {}
        self.rounds_used = 0

    def propose(self, value: Any) -> None:
        if value is None:
            raise ValueError("proposals must be non-None")
        if self.proposal is None:
            self.proposal = value

    def start(self) -> None:
        rb = ReliableBroadcastCore()
        self.add_child(self.RB_TAG, rb)
        rb.on_deliver(self._on_decide_delivered)
        self.spawn(self._run(), name=f"ct@{self.pid}")

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: Any) -> None:
        if self.route_to_children(sender, payload):
            return
        kind = payload[0]
        if kind == "EST":  # phase 1: estimate to coordinator
            _, r, value, ts = payload
            self._estimates.setdefault(r, {})[sender] = (value, ts)
        elif kind == "PROP":  # phase 2->3: coordinator's proposal
            _, r, value = payload
            self._proposals_seen.setdefault(r, value)
        elif kind == "ACK":
            _, r = payload
            self._acks.setdefault(r, set()).add(sender)
        elif kind == "NACK":
            _, r = payload
            self._nacks.setdefault(r, set()).add(sender)
        else:
            raise ValueError(f"unknown CT message {payload!r}")

    def _on_decide_delivered(self, origin: int, body: Any) -> None:
        kind, value = body
        if kind == "DECIDE" and not self.decided:
            self.decide(value)

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------
    def _majority(self) -> int:
        return self.n // 2 + 1

    def _run(self):
        yield WaitUntil(lambda: self.proposal is not None)
        self.estimate = self.proposal
        self.estimate_ts = 0
        while not self.decided:
            self.round += 1
            r = self.round
            self.rounds_used = r
            coordinator = r % self.n

            # Phase 1: send the current estimate to the coordinator.
            self.send(coordinator, ("EST", r, self.estimate, self.estimate_ts))

            if coordinator == self.pid:
                self.spawn(self._coordinate(r), name=f"ct-coord@{self.pid}-r{r}")

            # Phase 3: wait for the proposal or suspicion of c.
            outcome = yield WaitUntil(
                lambda: self.decided
                or (r in self._proposals_seen and ("prop",))
                or (coordinator in self._suspects(self.detector()) and ("susp",))
            )
            if self.decided:
                return
            if outcome == ("prop",):
                value = self._proposals_seen[r]
                self.estimate = value
                self.estimate_ts = r
                self.send(coordinator, ("ACK", r))
            else:
                self.send(coordinator, ("NACK", r))
            # A fresh round begins immediately; pacing keeps nack storms
            # from flooding an unlucky coordinator.
            yield WaitSteps(2)

    def _coordinate(self, r: int):
        """Phases 2 and 4 of round r, run by its coordinator."""
        majority = self._majority()
        estimates = self._estimates.setdefault(r, {})
        yield WaitUntil(
            lambda: self.decided or len(estimates) >= majority
        )
        if self.decided:
            return
        value = max(estimates.values(), key=lambda vt: vt[1])[0]
        self.broadcast(("PROP", r, value))
        acks = self._acks.setdefault(r, set())
        nacks = self._nacks.setdefault(r, set())
        yield WaitUntil(
            lambda: self.decided
            or len(acks) >= majority
            or bool(nacks)
        )
        if self.decided:
            return
        if len(acks) >= majority:
            rb: ReliableBroadcastCore = self.child(self.RB_TAG)  # type: ignore[assignment]
            rb.rbroadcast(("DECIDE", value))