"""Objects (and in particular registers) from consensus — SMR [17, 21].

Corollary 3 leans on Lamport's state-machine approach: "by using
consensus we can implement any object, and in particular registers".
This module makes that executable: a :class:`ReplicatedStateMachine`
decides one command per slot using a consensus instance per slot, and
every process applies the agreed log to a deterministic object.

:class:`ReplicatedRegisterCore` specialises the machine to a read/write
register and records invocation/response intervals so the
linearizability checker can certify the emulation — which is exactly
the step the paper uses to turn "D solves consensus" into "D implements
registers" (and thence, via Figure 1, into "D yields Σ").
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.consensus.multi import MultiConsensusCore
from repro.protocols.base import CoreComponent, ProtocolCore
from repro.sim.tasklets import WaitSteps, WaitUntil


class StateMachine:
    """A deterministic object: ``apply(command) -> response``."""

    def apply(self, command: Any) -> Any:
        raise NotImplementedError


class RegisterMachine(StateMachine):
    """A read/write register as a state machine."""

    def __init__(self, initial: Any = None):
        self.value = initial

    def apply(self, command: Any) -> Any:
        kind = command[0]
        if kind == "write":
            self.value = command[1]
            return "ok"
        if kind == "read":
            return self.value
        raise ValueError(f"unknown register command {command!r}")


class ReplicatedStateMachine(ProtocolCore):
    """SMR over per-slot consensus instances.

    Commands are submitted locally via :meth:`execute` (a tasklet
    generator); the machine proposes the command for successive slots
    until it is decided into the log, then waits for the log to apply
    up to that point and returns the response.

    Every process applies the same log prefix to its own machine
    replica, so responses are consistent across processes — the
    linearization order *is* the log order.
    """

    CONSENSUS_TAG = "slots"

    def __init__(self, machine_factory: Callable[[], StateMachine]):
        super().__init__()
        self.machine_factory = machine_factory
        self.machine: StateMachine = None  # type: ignore[assignment]
        self.log: List[Any] = []
        self.responses: List[Any] = []
        self._next_cmd_seq = 0

    def start(self) -> None:
        self.machine = self.machine_factory()
        self.add_child(self.CONSENSUS_TAG, MultiConsensusCore())
        self.spawn(self._apply_loop(), name=f"smr-apply@{self.pid}")

    def on_message(self, sender: int, payload: Any) -> None:
        if not self.route_to_children(sender, payload):
            raise ValueError(f"unknown SMR message {payload!r}")

    # ------------------------------------------------------------------
    # Log construction
    # ------------------------------------------------------------------
    def _consensus(self) -> MultiConsensusCore:
        return self.child(self.CONSENSUS_TAG)  # type: ignore[return-value]

    def _apply_loop(self):
        """Applies decided slots in order, forever."""
        consensus = self._consensus()
        slot = 0
        while True:
            inst = consensus.instance(slot)
            _, tagged = yield inst.wait_decided()
            self.log.append(tagged)
            # Log entries are (origin pid, origin seq, command).
            self.responses.append(self.machine.apply(tagged[2]))
            slot += 1

    def execute(self, command: Any) -> Generator:
        """Tasklet: agree on a slot for ``command``, apply, return the
        response — ``resp = yield from smr.execute(cmd)``."""
        self._next_cmd_seq += 1
        tagged = (self.pid, self._next_cmd_seq, command)
        consensus = self._consensus()
        slot = len(self.log)
        while True:
            decided_cmd = yield from consensus.propose(slot, tagged)
            if decided_cmd == tagged:
                break
            slot += 1
        # Wait until the apply loop has processed our slot.
        yield WaitUntil(lambda: len(self.responses) > slot)
        return self.responses[slot]


class ReplicatedRegisterClient(ProtocolCore):
    """A register client speaking to a hosted replicated state machine.

    Issues a scripted sequence of read/write operations, recording
    intervals for the linearizability checker via the host component's
    context (the :class:`~repro.protocols.base.CoreComponent` trace
    hookup records decisions; operations are recorded explicitly here).
    """

    SMR_TAG = "smr"

    def __init__(self, script: List[Tuple[str, Any]], record_component: str = "smrreg"):
        super().__init__()
        self.script = list(script)
        self.record_component = record_component
        self.results: List[Any] = []
        self.done = False
        self._record_op: Optional[Callable[..., Any]] = None
        self._complete_op: Optional[Callable[..., Any]] = None

    def set_recorders(self, new_operation, complete_operation) -> None:
        """Wire trace recording (done by the hosting component)."""
        self._record_op = new_operation
        self._complete_op = complete_operation

    def start(self) -> None:
        self.add_child(
            self.SMR_TAG, ReplicatedStateMachine(lambda: RegisterMachine())
        )
        self.spawn(self._run(), name=f"smr-client@{self.pid}")

    def on_message(self, sender: int, payload: Any) -> None:
        if not self.route_to_children(sender, payload):
            raise ValueError(f"unknown client message {payload!r}")

    def _run(self):
        smr: ReplicatedStateMachine = self.child(self.SMR_TAG)  # type: ignore[assignment]
        for kind, arg in self.script:  # noqa: B007 - sequential script
            yield WaitSteps(2)
            if kind == "write":
                record = (
                    self._record_op(self.record_component, "write", ("r", arg))
                    if self._record_op
                    else None
                )
                yield from smr.execute(("write", arg))
                result: Any = "ok"
            else:
                record = (
                    self._record_op(self.record_component, "read", ("r",))
                    if self._record_op
                    else None
                )
                result = yield from smr.execute(("read",))
            if record is not None:
                self._complete_op(record, result)
            self.results.append((kind, result))
        self.done = True


class SMRRegisterComponent(CoreComponent):
    """Hosts a :class:`ReplicatedRegisterClient` with trace-recorded
    register operations (component name ``smrreg``)."""

    name = "smrreg"

    def __init__(self, script: List[Tuple[str, Any]]):
        super().__init__(ReplicatedRegisterClient(script, record_component=self.name))

    def on_start(self) -> None:
        client: ReplicatedRegisterClient = self.core  # type: ignore[assignment]
        client.set_recorders(self.ctx.new_operation, self.ctx.complete_operation)
        super().on_start()
