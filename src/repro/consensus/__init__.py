"""Consensus (Section 4) and its substrates.

* :mod:`repro.consensus.interface` — the problem specification
  (Termination, Uniform Agreement, Validity) and shared helpers;
* :mod:`repro.consensus.paxos` — (Ω, Σ)-based message-passing consensus
  (the sufficiency half of Corollary 4);
* :mod:`repro.consensus.multi` — multi-instance consensus (used by the
  binary→multivalued transformation, state-machine replication and the
  NBAC→FS extraction);
* :mod:`repro.consensus.shared_memory` — the Lo–Hadzilacos route:
  consensus from registers + Ω [19], run either over instant registers
  or the full ABD-over-Σ message-passing stack;
* :mod:`repro.consensus.multivalued` — binary→multivalued consensus
  (the [20] substrate invoked by footnote 6);
* :mod:`repro.consensus.replicated_object` — registers (and arbitrary
  objects) from consensus via state-machine replication [17, 21], the
  substrate behind Corollary 3.
"""

from repro.consensus.paxos import OmegaSigmaConsensusCore, omega_of, sigma_of
from repro.consensus.multi import MultiConsensusCore
from repro.consensus.chandra_toueg import ChandraTouegConsensusCore
from repro.consensus.ben_or import BenOrConsensusCore
from repro.consensus.interface import consensus_component

__all__ = [
    "OmegaSigmaConsensusCore",
    "MultiConsensusCore",
    "ChandraTouegConsensusCore",
    "BenOrConsensusCore",
    "consensus_component",
    "omega_of",
    "sigma_of",
]
