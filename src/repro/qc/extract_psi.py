"""Figure 3: extracting Ψ from any QC algorithm A (Theorem 6).

Given an arbitrary algorithm ``A`` that solves QC using an arbitrary
failure detector ``D`` (supplied as a core factory + the system's
detector), every process runs this transformation to emulate the output
of Ψ — first ⊥, then either permanently ``red`` (FS behaviour) or
permanently ``(Ω, Σ)`` pairs, with all processes on the same branch.

Structure (matching the paper's line numbers):

* **Task 1 (lines 2-7)** — repeatedly sample the local ``D`` module
  into a DAG ``G_p`` and gossip samples to the other processes
  (:class:`~repro.qc.cht.samples.SampleDag`); grow the canonical
  simulation forest of ``n + 1`` trees
  (:class:`~repro.qc.cht.forest.SimulationForest`), in which *real
  protocol cores of A* execute inside a virtual runtime.
* **Task 2, lines 8-14** — wait until p decides in a run of every
  tree.  A simulated Q decision certifies a real failure, so p proposes
  0 to a *real* execution of A; otherwise p locates two initial
  configurations differing in one proposal whose runs decide 0 and 1
  (the critical pair) and proposes ``(I, I', S, S')``.
* **Lines 15-18** — if the real execution of A decides 0 or Q, the
  emulated Ψ switches to ``red`` forever (FS branch).
* **Lines 19-34** — otherwise all processes agreed on the same tuple
  ``(I0, I1, S0, S1)`` and extract (Ω, Σ):

  - **Σ (lines 24-32)** is extracted verbatim: maintain the set C of
    configurations reached by prefixes of S0/S1; after each fresh local
    sample ``u``, simulate a deciding extension of every C ∈ C using
    only samples that descend from ``u``; the quorum is the set of
    processes taking steps in those extensions.  Fresh samples can only
    come from processes alive after ``u``, which yields Completeness;
    Intersection is the deep CHT argument (Lemma 12 of [12]), checked
    empirically by the experiment suite.
  - **Ω (line 22)** in [3] walks decision gadgets of the limit forest.
    The limit forest does not exist in a bounded run, so this
    implementation substitutes a convergent election with the same
    ingredients (the DAG and real executions of A): each round proposes
    a candidate — the previous agreed leader if its sample count still
    grows, else the process with the most samples — to a fresh real
    instance of A.  Faulty candidates stop accumulating samples and are
    eventually voted out; once a correct candidate is agreed it is
    re-proposed forever, so outputs stabilise on the same correct
    process.  DESIGN.md records this as the one bounded substitution in
    the Figure 3 pipeline.

Bounded-reproduction parameters (``prefix_stride``, simulation budgets)
are explicit knobs; the experiment suite checks the emitted histories
against :func:`repro.core.specs.check_psi`.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, List, Optional, Tuple

from repro.core.detector import BOTTOM, RED
from repro.protocols.base import ProtocolCore
from repro.protocols.multi import MultiInstanceCore
from repro.qc.cht.forest import SimulationForest, initial_proposals
from repro.qc.cht.samples import Sample, SampleDag
from repro.qc.cht.simulation import simulate_run
from repro.qc.spec import Q
from repro.sim.tasklets import WaitSteps, WaitUntil


class PsiExtraction(ProtocolCore):
    """The Figure 3 transformation, one instance per process.

    Parameters
    ----------
    qc_factory:
        Builds one (unattached) core of the QC algorithm ``A``.  Used
        three ways, mirroring the paper: simulated copies inside the
        forest, one real "branch agreement" execution, and repeated
        real executions for the leader election.
    sample_every / gossip_every:
        Local steps between detector samples, and samples between
        gossip broadcasts.
    prefix_stride:
        Stride over the prefixes of S0/S1 when forming the
        configuration set C of line 25 (1 = every prefix, exactly the
        paper; larger = bounded subsampling for speed).
    sim_step_budget:
        Cap on simulated steps per extension attempt.
    """

    AGREE_TAG = "agree"
    LEADER_TAG = "led"

    def __init__(
        self,
        qc_factory: Callable[[], ProtocolCore],
        sample_every: int = 2,
        gossip_every: int = 4,
        prefix_stride: int = 1,
        sim_step_budget: int = 40_000,
        leader_pace: int = 10,
        sigma_pace: int = 40,
    ):
        super().__init__()
        self.qc_factory = qc_factory
        self.sample_every = sample_every
        self.gossip_every = gossip_every
        self.prefix_stride = max(1, prefix_stride)
        self.sim_step_budget = sim_step_budget
        self.leader_pace = leader_pace
        self.sigma_pace = sigma_pace

        self.dag: SampleDag = None  # type: ignore[assignment]
        self.forest: SimulationForest = None  # type: ignore[assignment]
        self._branch: Optional[str] = None
        self._omega_output: Optional[int] = None
        self._sigma_output: Optional[FrozenSet[int]] = None
        self._gossiped_counts: Tuple[int, ...] = ()
        # Experiment-facing statistics.
        self.forest_decisions: Optional[List[Any]] = None
        self.agreed_tuple: Optional[Tuple] = None
        self.sigma_rounds = 0
        self.leader_rounds = 0

    # ------------------------------------------------------------------
    # The emulated Ψ module (line 1 / 18 / 34)
    # ------------------------------------------------------------------
    def output(self) -> Any:
        if self._branch is None:
            return BOTTOM
        if self._branch == "fs":
            return RED
        return (self._omega_output, self._sigma_output)

    @property
    def branch(self) -> Optional[str]:
        return self._branch

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.dag = SampleDag(self.n)
        self.forest = SimulationForest(
            self.n, lambda pid: self.qc_factory(), target=self.pid
        )
        self.add_child(self.AGREE_TAG, self.qc_factory())
        self.add_child(
            self.LEADER_TAG,
            MultiInstanceCore(lambda tag: self.qc_factory()),
        )
        self._gossiped_counts = (0,) * self.n
        self.spawn(self._sampler(), name=f"xpsi-sampler@{self.pid}")
        self.spawn(self._main(), name=f"xpsi-main@{self.pid}")

    def on_message(self, sender: int, payload: Any) -> None:
        if self.route_to_children(sender, payload):
            return
        kind = payload[0]
        if kind == "DAG":
            self.dag.merge(payload[1])
        else:
            raise ValueError(f"unknown extraction message {payload!r}")

    # ------------------------------------------------------------------
    # Task 1 (lines 2-7): sample + gossip
    # ------------------------------------------------------------------
    def _sampler(self):
        taken = 0
        while True:
            self.dag.take_sample(self.pid, self.detector())
            taken += 1
            if taken % self.gossip_every == 0:
                delta = self.dag.delta_since(self._gossiped_counts)
                self._gossiped_counts = self.dag.counts()
                self.broadcast(("DAG", tuple(delta)))
            yield WaitSteps(self.sample_every)

    # ------------------------------------------------------------------
    # Task 2 (lines 8-34)
    # ------------------------------------------------------------------
    def _main(self):
        # Line 8: grow the forest until p decides in every tree.
        while not self.forest.all_decided:
            self.forest.extend_all(self.dag, max_steps=2_000)
            yield WaitSteps(4)
        self.forest_decisions = self.forest.decisions()

        # Lines 9-14: choose what to propose to the real execution of A.
        if any(d is Q for d in self.forest_decisions):
            my_proposal: Any = 0  # line 11
        else:
            i, tree0, tree1 = self.forest.critical_pair()
            my_proposal = (
                "crit",
                initial_proposals(self.n, i - 1),
                initial_proposals(self.n, i),
                tuple(tree0.schedule),
                tuple(tree1.schedule),
            )

        agree = self.child(self.AGREE_TAG)
        agree.propose(my_proposal)  # type: ignore[attr-defined]
        _, decision = yield agree.wait_decided()  # line 15

        if decision == 0 or decision is Q:
            self._branch = "fs"  # lines 16-18
            return

        # Lines 19-20: all processes hold the same (I0, I1, S0, S1).
        _, i0, i1, s0, s1 = decision
        self.agreed_tuple = (i0, i1, s0, s1)
        self._omega_output = self.pid
        self._sigma_output = frozenset(range(self.n))
        self._branch = "omega-sigma"

        # Lines 21-34: extract Ω and Σ concurrently.
        self.spawn(self._extract_omega(), name=f"xpsi-omega@{self.pid}")
        self.spawn(
            self._extract_sigma(i0, i1, s0, s1), name=f"xpsi-sigma@{self.pid}"
        )

    # ------------------------------------------------------------------
    # Ω (line 22) — bounded substitution, see module docstring.
    # ------------------------------------------------------------------
    def _extract_omega(self):
        leaders: MultiInstanceCore = self.child(self.LEADER_TAG)  # type: ignore[assignment]
        agreed: Optional[int] = None
        prev_counts = self.dag.counts()
        k = 0
        while True:
            counts = self.dag.counts()
            if agreed is not None and counts[agreed] > prev_counts[agreed]:
                candidate = agreed
            else:
                best = max(range(self.n), key=lambda q: (counts[q], -q))
                candidate = best
            prev_counts = counts

            inst = leaders.instance(k)
            inst.propose(candidate)  # type: ignore[attr-defined]
            _, decided_leader = yield inst.wait_decided()
            k += 1
            self.leader_rounds = k
            if decided_leader is not Q and isinstance(decided_leader, int):
                agreed = decided_leader
                self._omega_output = decided_leader
            yield WaitSteps(self.leader_pace)

    # ------------------------------------------------------------------
    # Σ (lines 24-32)
    # ------------------------------------------------------------------
    def _extract_sigma(self, i0, i1, s0: Tuple[Sample, ...], s1: Tuple[Sample, ...]):
        # Line 25: C = configurations reached by prefixes of S0/S1.
        configs: List[Tuple[Tuple[int, ...], Tuple[Sample, ...]]] = []
        for initial, schedule in ((i0, s0), (i1, s1)):
            lengths = list(range(0, len(schedule) + 1, self.prefix_stride))
            if lengths[-1] != len(schedule):
                lengths.append(len(schedule))
            for j in lengths:
                configs.append((initial, tuple(schedule[:j])))

        while True:
            # Line 27: wait for a fresh local sample u.
            base = self.dag.count(self.pid)
            fresh = yield WaitUntil(
                lambda: self.dag.count(self.pid) > base
                and (True, self.dag.sample(self.pid, base + 1))
            )
            u: Sample = fresh[1]

            # Lines 28-31: for each C, simulate a deciding extension
            # using only samples that descend from u.
            quorum: set[int] = set()
            for initial, prefix in configs:
                while True:
                    runtime, schedule, decided = simulate_run(
                        self.n,
                        lambda pid: self.qc_factory(),
                        list(initial),
                        self.dag,
                        target=self.pid,
                        prefix=prefix,
                        restrict_after=u,
                        max_steps=self.sim_step_budget,
                    )
                    if decided:
                        break
                    # Not enough fresh samples yet; let task 1 gossip.
                    yield WaitSteps(self.sample_every * 2)
                extension = schedule[len(prefix):]
                quorum.update(s.pid for s in extension)

            # Line 32.
            self._sigma_output = frozenset(quorum)
            self.sigma_rounds += 1
            # Pacing (bounded-reproduction knob): the paper re-runs per
            # fresh sample; we breathe between rounds to keep the
            # simulation budget proportional to run length.
            yield WaitSteps(self.sigma_pace)
