"""The quittable consensus problem (Section 5).

QC is consensus weakened with an escape hatch: each process invokes
PROPOSE(v) and gets back either a proposed value or the special value
``Q`` ("quit"), subject to:

* **Termination** — if every correct process proposes, every correct
  process eventually returns;
* **Uniform Agreement** — no two processes return different values;
* **Validity** — a returned value is a proposal or ``Q``, and
  (a) a non-Q value was proposed by some process,
  (b) ``Q`` may be returned only if a failure previously occurred.

The paper defines binary QC and notes the generalisation to arbitrary
value sets is straightforward; implementations here are multivalued
(footnote 6's binary→multivalued technique is reproduced separately in
:mod:`repro.consensus.multivalued`).

Contrast with NBAC (§1): quitting is never *inevitable* in QC — even
after a failure, processes may still agree on a proposed value — and
``Q`` certifies that a failure really occurred, whereas NBAC's Abort
can also mean somebody voted No.
"""

from __future__ import annotations


class _Quit:
    """The distinguished 'quit' outcome of quittable consensus."""

    _instance = None

    def __new__(cls) -> "_Quit":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Q"

    def __reduce__(self):
        return (_Quit, ())


#: The singleton quit value.
Q = _Quit()
