"""Figure 2: using Ψ to solve QC (Theorem 5).

Transcription of Figure 2, per process ``p``:

1. while Ψ_p = ⊥ do nop;
2. if Ψ_p ∈ {green, red} — Ψ henceforth behaves like FS, which it may
   do only if a failure occurred — return Q;
3. else — Ψ henceforth behaves like (Ω, Σ) — run the (Ω, Σ)-based
   consensus algorithm on the initial proposal and return its decision.

The embedded consensus is the :class:`~repro.consensus.paxos.OmegaSigmaConsensusCore`,
whose detector extractors pull (Ω, Σ) straight out of the Ψ value —
before the switch they see ⊥ and simply stall, which is harmless
because the branch decision precedes any consensus activity at this
process.  Note the branch agreement built into Ψ's specification is
what makes mixing impossible: either all processes end up in the
consensus, or all return Q.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.consensus.paxos import OmegaSigmaConsensusCore, omega_of, sigma_of
from repro.core.detector import BOTTOM, is_fs_value
from repro.protocols.base import ProtocolCore
from repro.qc.spec import Q
from repro.sim.tasklets import WaitUntil


class PsiQCCore(ProtocolCore):
    """Quittable consensus from the failure detector Ψ."""

    CONSENSUS_TAG = "cons"

    def __init__(self, proposal: Any = None, psi_extract=None):
        """``psi_extract`` pulls the Ψ component out of the process's
        detector value — identity for a plain Ψ oracle (default), first
        component when running under the (Ψ, FS) product of Corollary 10."""
        super().__init__()
        self.proposal = proposal
        self._psi_extract = psi_extract or (lambda d: d)
        #: Which branch this process observed ("fs" or "omega-sigma").
        self.branch_taken: Optional[str] = None

    def _psi(self) -> Any:
        return self._psi_extract(self.detector())

    def propose(self, value: Any) -> None:
        if value is None:
            raise ValueError("proposals must be non-None")
        if self.proposal is None:
            self.proposal = value

    def start(self) -> None:
        extract = self._psi_extract
        consensus = OmegaSigmaConsensusCore(
            omega_extract=lambda d: omega_of(extract(d))
            if extract(d) is not BOTTOM
            else None,
            sigma_extract=lambda d: sigma_of(extract(d))
            if extract(d) is not BOTTOM
            else None,
        )
        self.add_child(self.CONSENSUS_TAG, consensus)
        self.spawn(self._run(), name=f"psi-qc@{self.pid}")

    def on_message(self, sender: int, payload: Any) -> None:
        if not self.route_to_children(sender, payload):
            raise ValueError(f"unknown QC message {payload!r}")

    def _run(self):
        # Line 1: while Ψ_p = ⊥ do nop.
        value = yield WaitUntil(
            lambda: self.proposal is not None
            and self._psi() is not BOTTOM
            and (True, self._psi())
        )
        _, d = value
        if is_fs_value(d):
            # Line 2-4: Ψ behaves like FS — a failure occurred; quit.
            self.branch_taken = "fs"
            self.decide(Q)
            return
        # Line 5-7: Ψ behaves like (Ω, Σ) — run consensus on v.
        self.branch_taken = "omega-sigma"
        consensus: OmegaSigmaConsensusCore = self.child(self.CONSENSUS_TAG)  # type: ignore[assignment]
        consensus.propose(self.proposal)
        _, decision = yield consensus.wait_decided()
        self.decide(decision)
