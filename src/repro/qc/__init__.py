"""Quittable consensus (Sections 5–6).

* :mod:`repro.qc.spec` — the QC problem and the Q sentinel;
* :mod:`repro.qc.psi_qc` — Figure 2: solving QC with Ψ (Theorem 5);
* :mod:`repro.qc.cht` — the CHT-style simulation machinery (sample
  DAGs, simulation forests, valence/critical-index analysis);
* :mod:`repro.qc.extract_psi` — Figure 3: extracting Ψ from any QC
  algorithm (Theorem 6).
"""

from repro.qc.spec import Q
from repro.qc.psi_qc import PsiQCCore

__all__ = ["Q", "PsiQCCore"]
