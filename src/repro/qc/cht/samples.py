"""Failure detector samples and the DAG G_p.

Task 1 of Figure 3 (lines 2-7): every process repeatedly samples its
failure detector module and exchanges samples with the others, building
"an ever-increasing DAG G_p of failure detector samples".

Structure (as in [3]): when process ``q`` takes its ``k``-th sample, the
new vertex receives an edge from *every* vertex currently in ``G_q``.
That makes edges representable implicitly: each sample carries a
*knowledge vector* ``know`` with ``know[r]`` = the highest sequence
number of ``r``'s samples present in ``G_q`` at creation time.  Then

    (r, j) ≺ (q, k)   iff   j ≤ know_{(q,k)}[r]

and the relation is transitive because later samples of ``q`` know at
least everything earlier ones did.  Merging DAGs (gossip) is a plain
union of sample sets — vectors never change after creation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class Sample:
    """One failure detector sample — a vertex of the DAG.

    ``seq`` starts at 1; ``know[r]`` is the number of ``r``-samples in
    the sampler's DAG when this one was taken (0 = none).  Note
    ``know[pid] == seq - 1`` always: a sample knows all its
    predecessors from the same process.
    """

    pid: int
    seq: int
    value: Any
    know: Tuple[int, ...]

    def descends_from(self, other: "Sample") -> bool:
        """Whether ``other ≺ self`` in the DAG."""
        return self.know[other.pid] >= other.seq

    def compatible_after(self, pid: int, seq: int) -> bool:
        """Whether this sample may follow vertex ``(pid, seq)`` on a path."""
        if seq == 0:
            return True  # path start: anything goes
        return self.know[pid] >= seq


class SampleDag:
    """The DAG ``G_p`` of one process: per-process sample lists.

    Samples of each process are stored in sequence order with no gaps up
    to the highest *contiguous* prefix; out-of-order gossip arrivals are
    parked until their predecessors arrive, so :meth:`samples_of` always
    returns a gap-free prefix (simulation needs every sample's content).
    """

    def __init__(self, n: int):
        self.n = n
        self._samples: List[List[Sample]] = [[] for _ in range(n)]
        self._parked: Dict[Tuple[int, int], Sample] = {}

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def take_sample(self, pid: int, value: Any) -> Sample:
        """Record a fresh local sample (edges from all current vertices)."""
        know = tuple(len(self._samples[q]) for q in range(self.n))
        sample = Sample(pid=pid, seq=know[pid] + 1, value=value, know=know)
        self._samples[pid].append(sample)
        return sample

    def merge(self, samples: Iterable[Sample]) -> int:
        """Union in gossiped samples; returns how many were new."""
        added = 0
        for sample in samples:
            key = (sample.pid, sample.seq)
            if self.contains(*key) or key in self._parked:
                continue
            self._parked[key] = sample
            added += 1
        self._unpark()
        return added

    def _unpark(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for key in sorted(self._parked):
                pid, seq = key
                if seq == len(self._samples[pid]) + 1:
                    self._samples[pid].append(self._parked.pop(key))
                    progressed = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, pid: int, seq: int) -> bool:
        return 1 <= seq <= len(self._samples[pid])

    def count(self, pid: int) -> int:
        return len(self._samples[pid])

    def counts(self) -> Tuple[int, ...]:
        return tuple(len(s) for s in self._samples)

    def sample(self, pid: int, seq: int) -> Sample:
        return self._samples[pid][seq - 1]

    def samples_of(self, pid: int) -> List[Sample]:
        return list(self._samples[pid])

    def all_samples(self) -> List[Sample]:
        out: List[Sample] = []
        for samples in self._samples:
            out.extend(samples)
        return out

    def delta_since(self, counts: Tuple[int, ...]) -> List[Sample]:
        """Samples not covered by a per-process count vector (gossip)."""
        out: List[Sample] = []
        for pid in range(self.n):
            out.extend(self._samples[pid][counts[pid]:])
        return out

    def total(self) -> int:
        return sum(len(s) for s in self._samples)
