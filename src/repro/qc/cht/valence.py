"""Decision tags, valence and critical indices on bounded forests.

In [3] every node of the limit forest is tagged with the set of
decisions reached in descendant runs; a node is *u-valent* when its tag
set is the singleton ``{u}`` and *multivalent* otherwise.  Section 6.3.1
adapts this to QC's three outcomes: nodes may be 0-, 1- or Q-valent or
multivalent, and an index ``i`` is *critical* when the root of Υ_i is
multivalent, or the roots of Υ_{i-1} and Υ_i are u- and v-valent with
``u ≠ v``.

The limit forest is infinite; this module computes the *bounded*
analogue used by tests and benchmarks: descendant decisions are sampled
by branching over which process steps next (up to ``branch_depth``
levels) and then extending each branch canonically to a decision.  The
computed tag set is a subset of the true one, so:

* "multivalent" verdicts are sound (two witnessed decisions really are
  reachable);
* "univalent" verdicts are sound *relative to the explored fan-out* —
  exactly the finitisation DESIGN.md declares for CHT machinery.

This is also where the paper's Lemma 8 observation becomes executable:
on a crash-free pattern no Q decision can appear (QC validity), so the
roots of Υ_0 and Υ_n are 0- and 1-valent and a critical index exists;
with crashes, all-Q forests — where no critical index exists and Ω
cannot be extracted — are actually witnessed by the tests.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, List, Optional, Sequence, Set

from repro.protocols.base import ProtocolCore

from repro.qc.cht.samples import Sample, SampleDag
from repro.qc.cht.simulation import simulate_run


def decision_tags(
    n: int,
    core_factory: Callable[[int], ProtocolCore],
    proposals: Sequence[Any],
    dag: SampleDag,
    target: int,
    prefix: Sequence[Sample] = (),
    branch_depth: int = 2,
    max_steps: int = 50_000,
) -> FrozenSet[Any]:
    """The (bounded) tag set of the node ``(proposals, prefix)``.

    Branches over the next step's process for ``branch_depth`` levels,
    then decides each branch along the canonical path.
    """
    tags: Set[Any] = set()

    def explore(prefix_now: List[Sample], depth: int) -> None:
        if depth == 0:
            _, _, decided = _decide(prefix_now)
            return
        extensions = _one_step_extensions(prefix_now)
        if not extensions:
            _decide(prefix_now)
            return
        for sample in extensions:
            explore(prefix_now + [sample], depth - 1)

    def _one_step_extensions(prefix_now: List[Sample]) -> List[Sample]:
        tip = (prefix_now[-1].pid, prefix_now[-1].seq) if prefix_now else (-1, 0)
        counts = {}
        for s in prefix_now:
            counts[s.pid] = max(counts.get(s.pid, 0), s.seq)
        out: List[Sample] = []
        for q in range(n):
            seq = counts.get(q, 0) + 1
            while dag.contains(q, seq):
                sample = dag.sample(q, seq)
                if sample.compatible_after(*tip):
                    out.append(sample)
                    break
                seq += 1
        return out

    def _decide(prefix_now: List[Sample]):
        runtime, schedule, decided = simulate_run(
            n,
            core_factory,
            list(proposals),
            dag,
            target,
            prefix=tuple(prefix_now),
            max_steps=max_steps,
        )
        if decided:
            tags.add(runtime.decision_of(target))
        return runtime, schedule, decided

    explore(list(prefix), branch_depth)
    return frozenset(tags)


def classify(tags: FrozenSet[Any]) -> str:
    """"u-valent" (a single tag) or "multivalent" (several)."""
    if not tags:
        return "undetermined"
    if len(tags) == 1:
        return f"{next(iter(tags))!r}-valent"
    return "multivalent"


def find_critical_index(root_tags: Sequence[FrozenSet[Any]]) -> Optional[int]:
    """The smallest critical index of a forest given its root tag sets.

    ``root_tags[i]`` is the tag set of tree i's root, ``i = 0 .. n``.
    Returns None when no index is critical — which per Section 6.3.1
    can happen only if every root is tagged only with Q.
    """
    for i, tags in enumerate(root_tags):
        if len(tags) > 1:
            return i  # multivalent critical
    for i in range(1, len(root_tags)):
        a, b = root_tags[i - 1], root_tags[i]
        if len(a) == 1 and len(b) == 1 and a != b:
            return i  # univalent critical
    return None
