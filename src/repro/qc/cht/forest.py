"""The simulation forest Υ_p of Figure 3.

Process ``p`` organises its simulated runs of A into ``n + 1`` trees;
tree ``i`` roots at the initial configuration ``I_i`` in which processes
``p_1 .. p_i`` propose 1 and the rest propose 0 (our pids being
0-based: ``pid < i`` proposes 1).

The full CHT forest contains *every* schedule compatible with a DAG
path.  Line 8 of Figure 3 only needs, per tree, *some* run in which
``p`` decides, so :class:`SimulationForest` maintains one *canonical*
run per tree — a deterministic fair path through the DAG, extended
incrementally as gossip grows the DAG — and reports each tree's
decision when it arrives.  (The wider tree structure, with branching
and valence tags, is exercised separately in
:mod:`repro.qc.cht.valence`.)
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.protocols.base import ProtocolCore
from repro.qc.cht.samples import Sample, SampleDag
from repro.qc.cht.simulation import BalancedPathDriver, VirtualRuntime


def initial_proposals(n: int, i: int) -> Tuple[int, ...]:
    """The initial configuration I_i: first ``i`` processes propose 1."""
    if not 0 <= i <= n:
        raise ValueError(f"tree index must be in [0, n], got {i}")
    return tuple(1 if pid < i else 0 for pid in range(n))


class TreeRun:
    """The canonical run of one tree, extended as the DAG grows.

    Path selection is the balanced driver of
    :class:`~repro.qc.cht.simulation.BalancedPathDriver`: prefer the
    least-stepped process, waiting out a bounded patience for processes
    whose compatible samples have not gossiped in yet, so every process
    that keeps sampling keeps taking simulated steps — the fairness the
    simulated algorithm's Termination needs.
    """

    def __init__(
        self,
        n: int,
        core_factory: Callable[[int], ProtocolCore],
        proposals: Sequence[Any],
        target: int,
        patience: int = 25,
    ):
        self.n = n
        self.target = target
        self.runtime = VirtualRuntime(n, core_factory, proposals)
        self.schedule: List[Sample] = []
        self.driver = BalancedPathDriver(n, patience=patience)
        # Highest sample seq per process either applied or proven
        # permanently incompatible with this path.
        self._consumed = [0] * n

    @property
    def decided(self) -> bool:
        return self.runtime.decided(self.target)

    @property
    def decision(self) -> Any:
        return self.runtime.decision_of(self.target)

    def extend(self, dag: SampleDag, max_steps: int = 10_000) -> bool:
        """Advance the canonical path with whatever the DAG now offers.

        Returns True iff the target has decided (possibly earlier).
        Samples incompatible with the current tip are skipped for good:
        once a sample fails to descend from the tip it can never lie on
        this path's future (descendance would have to be transitive
        through the tip).
        """

        def peek(q: int) -> Optional[Sample]:
            while dag.contains(q, self._consumed[q] + 1):
                sample = dag.sample(q, self._consumed[q] + 1)
                if sample.compatible_after(*self.driver.tip):
                    return sample
                self._consumed[q] += 1
            return None

        steps = 0
        while steps < max_steps and not self.decided:
            sample = self.driver.choose(peek)
            if sample is None:
                break  # wait for gossip; patience ticked inside choose
            self._consumed[sample.pid] += 1
            self.runtime.step(sample.pid, sample.value)
            self.schedule.append(sample)
            steps += 1
        return self.decided


class SimulationForest:
    """The n+1 canonical tree runs of Figure 3, line 6/8."""

    def __init__(
        self,
        n: int,
        core_factory: Callable[[int], ProtocolCore],
        target: int,
    ):
        self.n = n
        self.target = target
        self.trees: List[TreeRun] = [
            TreeRun(n, core_factory, initial_proposals(n, i), target)
            for i in range(n + 1)
        ]

    def extend_all(self, dag: SampleDag, max_steps: int = 10_000) -> None:
        for tree in self.trees:
            if not tree.decided:
                tree.extend(dag, max_steps)

    @property
    def all_decided(self) -> bool:
        """Line 8: p decided in some run of every tree."""
        return all(tree.decided for tree in self.trees)

    def decisions(self) -> List[Any]:
        return [tree.decision for tree in self.trees]

    def critical_pair(self) -> Tuple[int, "TreeRun", "TreeRun"]:
        """The smallest adjacent pair of trees with different decisions.

        Only meaningful once every tree decided and no decision is Q
        (line 12's "every tree of Υ_p has a run where p decides 0 or
        1"); then tree 0 decided 0 and tree n decided 1 by QC validity,
        so a boundary must exist.
        """
        decisions = self.decisions()
        for i in range(1, self.n + 1):
            if decisions[i - 1] != decisions[i]:
                return i, self.trees[i - 1], self.trees[i]
        raise RuntimeError(
            f"no critical pair: all trees decided {decisions[0]!r}"
        )
