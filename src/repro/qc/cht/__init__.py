"""CHT-style simulation machinery for the Figure 3 extraction.

The extraction of Ψ from an arbitrary QC algorithm ``A`` (Theorem 6)
follows Chandra–Hadzilacos–Toueg [3]: processes gossip *failure
detector samples* into an ever-growing DAG, and simulate runs of ``A``
that are compatible with paths of that DAG.

* :mod:`repro.qc.cht.samples` — samples and the DAG ``G_p`` (edges are
  implicit in per-sample knowledge vectors);
* :mod:`repro.qc.cht.simulation` — the virtual runtime that actually
  executes ``A``'s protocol cores inside a single real process, driven
  by DAG paths;
* :mod:`repro.qc.cht.forest` — the n+1-tree simulation forest Υ_p and
  canonical deciding runs;
* :mod:`repro.qc.cht.valence` — decision tags, u-valence/multivalence
  and critical-index analysis on bounded forests.
"""

from repro.qc.cht.samples import Sample, SampleDag
from repro.qc.cht.simulation import VirtualRuntime, simulate_run
from repro.qc.cht.forest import SimulationForest, initial_proposals

__all__ = [
    "Sample",
    "SampleDag",
    "VirtualRuntime",
    "simulate_run",
    "SimulationForest",
    "initial_proposals",
]
