"""The virtual runtime: executing algorithm A inside a simulated run.

Figure 3's task 1 (line 6) "constructs a forest of ever-increasing
simulated runs of algorithm A using D that could have occurred with the
current failure pattern and failure detector history".  To make that
literal, the same :class:`~repro.protocols.base.ProtocolCore` objects
that execute A in the real system are instantiated inside a
:class:`VirtualRuntime` — a sandbox with its own message buffer and
tasklet drivers — and stepped along paths of the sample DAG: the i-th
step of a simulated run is taken by the process of the i-th path vertex
and sees that vertex's detector value.

A run/schedule is *compatible* with a DAG path exactly as in [3]: the
sequence of (process, detector value) pairs of its steps matches the
path.  Message delivery inside a step is deterministic (oldest pending
message to the stepping process, else λ), so a schedule is fully
reproducible from its sample sequence — which is what lets the Figure 3
algorithm ship schedules to other processes inside QC proposals and the
Σ-extraction replay configurations by prefix instead of snapshotting
live generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.protocols.base import ProtocolContext, ProtocolCore
from repro.qc.cht.samples import Sample, SampleDag
from repro.sim.tasklets import TaskletDriver


@dataclass
class VirtualMessage:
    seq: int
    sender: int
    dest: int
    payload: Any


class VirtualContext(ProtocolContext):
    """Context for one simulated process inside a virtual runtime."""

    def __init__(self, runtime: "VirtualRuntime", pid: int):
        self.runtime = runtime
        self.pid = pid
        self.n = runtime.n

    def send(self, dest: int, payload: Any) -> None:
        self.runtime._enqueue(self.pid, dest, payload)

    def broadcast(self, payload: Any) -> None:
        for dest in range(self.n):
            self.runtime._enqueue(self.pid, dest, payload)

    def detector(self) -> Any:
        return self.runtime._current_d[self.pid]

    def spawn(self, gen: Generator, name: str = "") -> None:
        self.runtime._drivers[self.pid].spawn(gen, name)


class VirtualRuntime:
    """A sandboxed n-process system executing cores of algorithm A.

    Parameters
    ----------
    n:
        Number of simulated processes.
    core_factory:
        ``core_factory(pid)`` builds the (unattached) core of A for
        process ``pid``.
    proposals:
        Initial configuration: ``proposals[pid]`` is handed to the
        core's ``propose`` before its first step.
    """

    def __init__(
        self,
        n: int,
        core_factory: Callable[[int], ProtocolCore],
        proposals: Sequence[Any],
    ):
        if len(proposals) != n:
            raise ValueError("need one proposal per process")
        self.n = n
        self.proposals = list(proposals)
        self.cores: List[ProtocolCore] = [core_factory(pid) for pid in range(n)]
        self._drivers = [TaskletDriver() for _ in range(n)]
        self._started = [False] * n
        self._buffers: List[List[VirtualMessage]] = [[] for _ in range(n)]
        self._next_msg_seq = 0
        self._current_d: List[Any] = [None] * n
        self.steps_taken = 0
        #: pids that took at least one step (Σ-extraction quorums).
        self.step_takers: set[int] = set()

    # ------------------------------------------------------------------
    def _enqueue(self, sender: int, dest: int, payload: Any) -> None:
        self._buffers[dest].append(
            VirtualMessage(self._next_msg_seq, sender, dest, payload)
        )
        self._next_msg_seq += 1

    def _ensure_started(self, pid: int) -> None:
        if self._started[pid]:
            return
        self._started[pid] = True
        core = self.cores[pid]
        core.attach(VirtualContext(self, pid))
        core.start()
        propose = getattr(core, "propose", None)
        if callable(propose):
            propose(self.proposals[pid])

    def step(self, pid: int, detector_value: Any) -> None:
        """One atomic simulated step ⟨pid, oldest-message-or-λ, d⟩.

        The receivable message is chosen *before* the core runs, so a
        message the process sends within this very step (e.g. from
        ``start``) is not delivered back to it in the same step —
        matching the real network's minimum delay of one.
        """
        buffer = self._buffers[pid]
        msg = buffer.pop(0) if buffer else None
        self._current_d[pid] = detector_value
        self._ensure_started(pid)
        if msg is not None:
            self.cores[pid].on_message(msg.sender, msg.payload)
        self._drivers[pid].advance()
        self.steps_taken += 1
        self.step_takers.add(pid)

    def decision_of(self, pid: int) -> Any:
        return self.cores[pid].decision

    def decided(self, pid: int) -> bool:
        return self.cores[pid].decided


def apply_schedule(runtime: VirtualRuntime, schedule: Sequence[Sample]) -> None:
    """Apply a recorded schedule (its sample sequence) to a runtime."""
    for sample in schedule:
        runtime.step(sample.pid, sample.value)


class BalancedPathDriver:
    """Chooses the next vertex of a canonical fair DAG path.

    The naive greedy path ("apply whatever is compatible") starves
    processes whose samples only learn about the path tip through
    gossip: the simulating process's own samples are always compatible,
    so the tip outruns everyone else forever, the simulated leader never
    steps, and the run never decides.  The balanced driver instead
    always prefers the process with the *fewest applied steps*, and when
    that laggard has no compatible sample yet it waits (reporting "no
    progress") for up to ``patience`` attempts before *benching* the
    laggard — correct processes deliver a compatible sample within a
    gossip round-trip and get unbenched on arrival; crashed processes
    stay benched, exactly as a fair schedule must eventually exclude
    them.

    Pool access is pluggable: ``peek(q)`` returns q's next candidate
    sample (skipping permanently-incompatible ones is the caller's
    business via ``advance(q)``).
    """

    def __init__(self, n: int, patience: int = 12):
        self.n = n
        self.patience = patience
        self.applied_counts = [0] * n
        self.tip: Tuple[int, int] = (-1, 0)
        self._stall = [0] * n
        self._benched = [False] * n

    def note_prefix(self, schedule: Sequence[Sample]) -> None:
        """Account for an already-applied prefix."""
        for sample in schedule:
            self.applied_counts[sample.pid] += 1
        if schedule:
            self.tip = (schedule[-1].pid, schedule[-1].seq)

    def choose(self, peek) -> Optional[Sample]:
        """Pick the next path vertex, or None to wait for the DAG.

        ``peek(q)`` must return q's next *tip-compatible* sample or
        None.  A compatible sample from a benched process unbenches it.
        """
        available: Dict[int, Sample] = {}
        for q in range(self.n):
            sample = peek(q)
            if sample is not None:
                available[q] = sample
                if self._benched[q]:
                    self._benched[q] = False
                self._stall[q] = 0

        if not available:
            return None

        # The fairness frontier: the least-applied unbenched processes.
        active = [q for q in range(self.n) if not self._benched[q]]
        frontier = min(self.applied_counts[q] for q in active)
        laggards = [
            q
            for q in active
            if self.applied_counts[q] == frontier and q not in available
        ]
        if laggards:
            # Give gossip a chance to produce the laggards' samples.
            exhausted = True
            for q in laggards:
                self._stall[q] += 1
                if self._stall[q] <= self.patience:
                    exhausted = False
                else:
                    self._benched[q] = True
            if not exhausted:
                return None

        # Apply the least-applied process that actually has a sample.
        q = min(available, key=lambda r: (self.applied_counts[r], r))
        sample = available[q]
        self.applied_counts[q] += 1
        self.tip = (sample.pid, sample.seq)
        return sample


def canonical_extension(
    runtime: VirtualRuntime,
    per_process: Sequence[Sequence[Sample]],
    used: Dict[int, int],
    driver: BalancedPathDriver,
    target: int,
    max_steps: int,
) -> Tuple[List[Sample], bool]:
    """Extend a run along the driver's balanced DAG path until
    ``target`` decides, the driver wants to wait for more samples, or
    ``max_steps`` is reached.

    ``per_process[q]`` is the pool of q's candidate samples in sequence
    order; ``used[q]`` tracks consumption (samples skipped as
    tip-incompatible are consumed for good — once a sample fails to
    descend from the tip it can never rejoin this path).

    Returns ``(steps applied, target decided?)``.
    """
    applied: List[Sample] = []

    def peek(q: int) -> Optional[Sample]:
        pool = per_process[q]
        idx = used.get(q, 0)
        while idx < len(pool):
            sample = pool[idx]
            if sample.compatible_after(*driver.tip):
                used[q] = idx
                return sample
            idx += 1
        used[q] = idx
        return None

    while len(applied) < max_steps and not runtime.decided(target):
        sample = driver.choose(peek)
        if sample is None:
            break
        used[sample.pid] = used.get(sample.pid, 0) + 1
        runtime.step(sample.pid, sample.value)
        applied.append(sample)
    return applied, runtime.decided(target)


def simulate_run(
    n: int,
    core_factory: Callable[[int], ProtocolCore],
    proposals: Sequence[Any],
    dag: SampleDag,
    target: int,
    prefix: Sequence[Sample] = (),
    restrict_after: Optional[Sample] = None,
    max_steps: int = 100_000,
    patience: int = 2,
) -> Tuple[VirtualRuntime, List[Sample], bool]:
    """Build a simulated run of A from an initial configuration.

    Replays ``prefix`` (a recorded schedule), then extends along a
    balanced path using the DAG's samples — optionally only those that
    are proper descendants of ``restrict_after`` (line 29's "subgraph
    induced by the descendants of u", the freshness device of the
    Σ-extraction).  The pools are a snapshot of the DAG, so waiting for
    gossip is pointless here and ``patience`` is kept minimal; callers
    that need fresher samples re-invoke with the grown DAG.

    Returns ``(runtime, full schedule, target decided?)``.
    """
    runtime = VirtualRuntime(n, core_factory, proposals)
    apply_schedule(runtime, prefix)
    schedule = list(prefix)

    driver = BalancedPathDriver(n, patience=patience)
    driver.note_prefix(schedule)

    pools: List[List[Sample]] = []
    used: Dict[int, int] = {}
    prefix_counts: Dict[int, int] = {}
    for s in prefix:
        prefix_counts[s.pid] = max(prefix_counts.get(s.pid, 0), s.seq)
    for q in range(n):
        pool = dag.samples_of(q)
        if restrict_after is not None:
            pool = [s for s in pool if s.descends_from(restrict_after)]
        else:
            # Skip samples already consumed by the prefix.
            pool = [s for s in pool if s.seq > prefix_counts.get(q, 0)]
        pools.append(pool)
        used[q] = 0

    decided = False
    while not decided and runtime.steps_taken - len(prefix) < max_steps:
        applied, decided = canonical_extension(
            runtime, pools, used, driver, target, max_steps
        )
        schedule.extend(applied)
        if not applied and not decided:
            # No step was possible.  The pools are a fixed snapshot, so
            # either the driver is waiting out its laggard patience
            # (retry immediately — the stall counters tick until the
            # laggard is benched) or the path is genuinely dry.
            if not _driver_waiting(driver, pools, used):
                break
    return runtime, schedule, decided


def _driver_waiting(
    driver: BalancedPathDriver,
    pools: Sequence[Sequence[Sample]],
    used: Dict[int, int],
) -> bool:
    """Whether the driver would still make progress on retry (it is
    waiting out patience rather than out of samples)."""
    for q in range(len(pools)):
        idx = used.get(q, 0)
        pool = pools[q]
        while idx < len(pool):
            if pool[idx].compatible_after(*driver.tip):
                return True
            idx += 1
    return False
