"""repro — an executable reproduction of
"The Weakest Failure Detectors to Solve Certain Fundamental Problems in
Distributed Computing" (Delporte-Gallet, Fauconnier, Guerraoui,
Hadzilacos, Kouznetsov, Toueg — PODC 2004).

The paper determines the weakest failure detectors for four problems in
asynchronous message-passing systems with crash failures, in *every*
environment:

======================  =========================
problem                 weakest failure detector
======================  =========================
atomic register         Σ (quorum)
consensus               (Ω, Σ)
quittable consensus     Ψ
non-blocking commit     (Ψ, FS)
======================  =========================

This library makes the whole paper executable: the computational model
(:mod:`repro.sim`), the failure detectors and their specifications
(:mod:`repro.core`), every algorithm in Figures 1-5 plus every
substrate they build on (:mod:`repro.registers`, :mod:`repro.consensus`,
:mod:`repro.qc`, :mod:`repro.nbac`, :mod:`repro.ex_nihilo`), and
property checkers turning the theorems into machine-checked experiments
(:mod:`repro.analysis`).

Quickstart::

    from repro import (SystemBuilder, decided, consensus_component,
                       OmegaSigmaConsensusCore, omega_sigma_oracle,
                       FCrashEnvironment, check_consensus)

    proposals = {pid: f"value-{pid}" for pid in range(5)}
    trace = (
        SystemBuilder(n=5, seed=42, horizon=50_000)
        .environment(FCrashEnvironment(5, 4))          # up to 4 of 5 crash
        .detector(omega_sigma_oracle())                # the weakest detector
        .component("consensus", consensus_component(
            lambda pid: OmegaSigmaConsensusCore(proposals[pid])))
        .build()
        .run(stop_when=decided("consensus"))
    )
    assert check_consensus(trace, proposals).ok
"""

from repro.core import (
    FailurePattern,
    Environment,
    CrashFreeEnvironment,
    FCrashEnvironment,
    MajorityCorrectEnvironment,
    OrderedCrashEnvironment,
    ExplicitEnvironment,
)
from repro.core.detector import BOTTOM, GREEN, RED
from repro.core.detectors import (
    OmegaOracle,
    SigmaOracle,
    MajoritySigmaOracle,
    FSOracle,
    PsiOracle,
    PerfectOracle,
    EventuallyPerfectOracle,
    EventuallyStrongOracle,
    StrongOracle,
    ProductOracle,
    omega_sigma_oracle,
)
from repro.core.specs import (
    check_omega,
    check_sigma,
    check_fs,
    check_psi,
    check_omega_sigma,
    check_perfect,
    check_eventually_perfect,
    check_eventually_strong,
)
from repro.sim import (
    System,
    SystemBuilder,
    Component,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.sim.system import decided
from repro.analysis import check_consensus, check_qc, check_nbac
from repro.consensus import (
    OmegaSigmaConsensusCore,
    MultiConsensusCore,
    ChandraTouegConsensusCore,
    BenOrConsensusCore,
    consensus_component,
)
from repro.registers import (
    RegisterBank,
    AtomicSnapshot,
    MajorityQuorums,
    SigmaQuorums,
    check_linearizable,
    RegisterWorkload,
)
from repro.sim.partition import TransientPartition
from repro.sim.export import trace_to_dict, trace_to_json
from repro.qc import Q, PsiQCCore
from repro.nbac import (
    YES,
    NO,
    COMMIT,
    ABORT,
    NBACFromQCCore,
    QCFromNBACCore,
    FSFromNBACCore,
    psi_fs_nbac_core,
    psi_fs_oracle,
)

__version__ = "1.0.0"

__all__ = [
    # model
    "FailurePattern",
    "Environment",
    "CrashFreeEnvironment",
    "FCrashEnvironment",
    "MajorityCorrectEnvironment",
    "OrderedCrashEnvironment",
    "ExplicitEnvironment",
    # detector values
    "BOTTOM",
    "GREEN",
    "RED",
    "Q",
    # oracles
    "OmegaOracle",
    "SigmaOracle",
    "MajoritySigmaOracle",
    "FSOracle",
    "PsiOracle",
    "PerfectOracle",
    "EventuallyPerfectOracle",
    "EventuallyStrongOracle",
    "StrongOracle",
    "ProductOracle",
    "omega_sigma_oracle",
    "psi_fs_oracle",
    # specs
    "check_omega",
    "check_sigma",
    "check_fs",
    "check_psi",
    "check_omega_sigma",
    "check_perfect",
    "check_eventually_perfect",
    "check_eventually_strong",
    # simulation
    "System",
    "SystemBuilder",
    "Component",
    "RandomScheduler",
    "RoundRobinScheduler",
    "decided",
    # problems
    "check_consensus",
    "check_qc",
    "check_nbac",
    "OmegaSigmaConsensusCore",
    "MultiConsensusCore",
    "ChandraTouegConsensusCore",
    "BenOrConsensusCore",
    "consensus_component",
    "RegisterBank",
    "AtomicSnapshot",
    "MajorityQuorums",
    "SigmaQuorums",
    "check_linearizable",
    "RegisterWorkload",
    "TransientPartition",
    "trace_to_dict",
    "trace_to_json",
    "PsiQCCore",
    "YES",
    "NO",
    "COMMIT",
    "ABORT",
    "NBACFromQCCore",
    "QCFromNBACCore",
    "FSFromNBACCore",
    "psi_fs_nbac_core",
]
