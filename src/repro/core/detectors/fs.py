"""The failure signal detector FS.

Definition (Section 2): the range of FS is ``{green, red}``, and
``H ∈ FS(F)`` iff

* **Accuracy** (perpetual): red is only ever output after a failure has
  occurred: ``∀p ∀t : H(p, t) = red ⇒ F(t) ≠ ∅``;
* **Completeness** (eventual): if a failure occurs, every correct
  process eventually outputs red forever:
  ``faulty(F) ≠ ∅ ⇒ ∀p ∈ correct(F) ∃t ∀t' ≥ t : H(p, t') = red``.

If the pattern is crash-free, FS outputs green everywhere, forever.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core.detector import GREEN, RED, FailureDetector
from repro.core.failure_pattern import FailurePattern
from repro.core.history import FailureDetectorHistory


class FSOracle(FailureDetector):
    """Samples histories of FS.

    Parameters
    ----------
    max_detection_delay:
        Upper bound on the sampled per-process delay between the first
        crash and that process's permanent switch to red.  The switch
        time is drawn uniformly from ``[t* , t* + max_detection_delay]``
        where ``t*`` is the first crash time.
    flicker:
        When true (default), processes may flicker red/green between the
        first crash and their permanent switch — admissible because
        Accuracy only forbids red *before* a failure.
    """

    name = "FS"

    def __init__(self, max_detection_delay: int = 50, flicker: bool = True):
        if max_detection_delay < 0:
            raise ValueError("max_detection_delay must be non-negative")
        self.max_detection_delay = max_detection_delay
        self.flicker = flicker

    def build_history(
        self,
        pattern: FailurePattern,
        horizon: int,
        rng: random.Random,
    ) -> FailureDetectorHistory:
        first_crash = pattern.first_crash_time()
        if first_crash is None:
            return FailureDetectorHistory(
                pattern.n, horizon, lambda pid, t: GREEN
            )

        switch: Dict[int, int] = {}
        for pid in pattern.processes:
            delay = rng.randint(0, self.max_detection_delay)
            switch[pid] = first_crash + delay
        noise_seed = rng.randrange(2**62)
        flicker = self.flicker

        def value(pid: int, t: int) -> str:
            if t < first_crash:
                return GREEN
            if t >= switch[pid]:
                return RED
            if flicker and hash((noise_seed, pid, t // 3)) % 2 == 0:
                return RED
            return GREEN

        return FailureDetectorHistory(pattern.n, horizon, value)
