"""The failure detector Ψ — the weakest to solve quittable consensus.

Definition (Section 6.1): for each failure pattern ``F``, ``H ∈ Ψ(F)``
iff one of the following holds:

* **(Ω, Σ) branch** — there is ``H' ∈ (Ω, Σ)(F)`` such that every
  process outputs ⊥ up to some (per-process) switch time and ``H'``
  afterwards; or
* **FS branch** — a failure occurs at some time ``t*``
  (``F(t*) ≠ ∅``), and there is ``H' ∈ FS(F)`` such that every process
  outputs ⊥ up to some switch time ``≥ t*`` and ``H'`` afterwards.

The switch need not be simultaneous, but all processes commit to the
*same* branch.  The FS branch is only admissible after a failure;
processes are never *obliged* to take it.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from repro.core.detector import BOTTOM, FailureDetector
from repro.core.detectors.combined import omega_sigma_oracle
from repro.core.detectors.fs import FSOracle
from repro.core.failure_pattern import FailurePattern
from repro.core.history import FailureDetectorHistory

FS_BRANCH = "fs"
OMEGA_SIGMA_BRANCH = "omega-sigma"


class PsiOracle(FailureDetector):
    """Samples histories of Ψ.

    Parameters
    ----------
    branch:
        Force the branch: :data:`FS_BRANCH` or :data:`OMEGA_SIGMA_BRANCH`.
        Forcing the FS branch on a crash-free pattern raises, since that
        history would be inadmissible.  By default the oracle flips a
        (seeded) coin when a failure occurs and otherwise must take the
        (Ω, Σ) branch.
    max_switch_delay:
        Upper bound on the sampled gap between the earliest admissible
        switch time and each process's actual switch.
    """

    name = "Psi"

    def __init__(
        self,
        branch: str | None = None,
        max_switch_delay: int = 50,
        noisy: bool = True,
    ):
        if branch not in (None, FS_BRANCH, OMEGA_SIGMA_BRANCH):
            raise ValueError(f"unknown branch {branch!r}")
        if max_switch_delay < 0:
            raise ValueError("max_switch_delay must be non-negative")
        self.branch = branch
        self.max_switch_delay = max_switch_delay
        self.noisy = noisy

    def _choose_branch(self, pattern: FailurePattern, rng: random.Random) -> str:
        if self.branch is not None:
            if self.branch == FS_BRANCH and pattern.is_crash_free():
                raise ValueError(
                    "the FS branch of Psi is inadmissible on a crash-free pattern"
                )
            return self.branch
        if pattern.is_crash_free():
            return OMEGA_SIGMA_BRANCH
        return rng.choice([FS_BRANCH, OMEGA_SIGMA_BRANCH])

    def build_history(
        self,
        pattern: FailurePattern,
        horizon: int,
        rng: random.Random,
    ) -> FailureDetectorHistory:
        branch = self._choose_branch(pattern, rng)
        sub_rng = random.Random(rng.randrange(2**62))

        if branch == FS_BRANCH:
            t_star = pattern.first_crash_time()
            assert t_star is not None  # enforced by _choose_branch
            inner = FSOracle().build_history(pattern, horizon, sub_rng)
            earliest = t_star
        else:
            inner = omega_sigma_oracle(noisy=self.noisy).build_history(
                pattern, horizon, sub_rng
            )
            earliest = 0

        switch: Dict[int, int] = {}
        for pid in pattern.processes:
            switch[pid] = earliest + rng.randint(0, self.max_switch_delay)

        def value(pid: int, t: int) -> Any:
            if t < switch[pid]:
                return BOTTOM
            return inner.value(pid, t)

        history = FailureDetectorHistory(pattern.n, horizon, value)
        # Expose the sampled branch for tests and experiment reports.
        history.psi_branch = branch  # type: ignore[attr-defined]
        return history
