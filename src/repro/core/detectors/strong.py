"""The strong detector S — perpetual weak accuracy.

S (Chandra–Toueg [4]) outputs suspicion sets subject to:

* **Strong completeness** — eventually every faulty process is
  permanently suspected by every correct process;
* **(Perpetual) weak accuracy** — some correct process is *never*
  suspected by anyone, from time 0.

The perpetual clause is what ◇S relaxes.  Its payoff: with S,
consensus is solvable with *any* number of crashes — like the paper's
(Ω, Σ) — but S is far more than the weakest detector for the job (it
cannot be implemented under asynchrony even with a correct majority,
whereas (Ω, Σ)'s components can).  Experiment E3's table shows both
surviving f = n - 1 while the eventual-only baselines stop at the
majority line.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet

from repro.core.detector import FailureDetector
from repro.core.failure_pattern import FailurePattern
from repro.core.history import FailureDetectorHistory


class StrongOracle(FailureDetector):
    """Samples histories of S.

    One correct process is protected from time 0 at every module;
    everything else enjoys the definition's full slack — arbitrary
    (even flickering) wrong suspicions of other correct processes,
    bounded detection delays for crashed ones.
    """

    name = "S"

    def __init__(self, protect: int | None = None, noisy: bool = True):
        self.protect = protect
        self.noisy = noisy

    def build_history(
        self,
        pattern: FailurePattern,
        horizon: int,
        rng: random.Random,
    ) -> FailureDetectorHistory:
        if not pattern.correct:
            raise ValueError("S requires at least one correct process")
        if self.protect is not None:
            if self.protect not in pattern.correct:
                raise ValueError(
                    f"protected process {self.protect} is not correct"
                )
            protected = self.protect
        else:
            protected = min(pattern.correct)

        detect: Dict[tuple, int] = {}
        for observer in pattern.processes:
            for victim, crash_t in pattern.crash_times.items():
                detect[(observer, victim)] = crash_t + rng.randint(0, 40)
        noise_seed = rng.randrange(2**62)

        def value(pid: int, t: int) -> FrozenSet[int]:
            suspects = {
                victim
                for victim in pattern.faulty
                if t >= detect[(pid, victim)]
            }
            if self.noisy:
                mix = random.Random(hash((noise_seed, pid, t // 5)))
                for q in pattern.correct:
                    if q not in (pid, protected) and mix.random() < 0.2:
                        suspects.add(q)
            suspects.discard(protected)
            suspects.discard(pid)
            return frozenset(suspects)

        return FailureDetectorHistory(pattern.n, horizon, value)
