"""The leader failure detector Ω.

Definition (Section 2): the range of Ω is Pi, and ``H ∈ Ω(F)`` iff there
is a correct process ``p`` such that every correct process eventually
outputs ``p`` forever:

    ∃p ∈ correct(F)  ∀q ∈ correct(F)  ∃t  ∀t' ≥ t : H(q, t') = p.

Before the stabilization time the output is unconstrained (it may name
crashed processes, and different processes may disagree); the oracle
deliberately emits such noise so that algorithms are exercised against
the full adversarial latitude the definition allows.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core.detector import FailureDetector, sample_stabilization_time
from repro.core.failure_pattern import FailurePattern
from repro.core.history import FailureDetectorHistory


class OmegaOracle(FailureDetector):
    """Samples histories of Ω.

    Parameters
    ----------
    noisy:
        When true (default), pre-stabilization outputs are sampled
        adversarially: each process flips between random (possibly
        faulty) leaders.  When false, the oracle outputs the eventual
        leader from time 0 — the "benign" history useful in unit tests.
    leader:
        Force the eventual leader to a specific correct process.  By
        default the oracle picks the smallest correct pid.
    churn_period:
        How many steps a pre-stabilization noise output persists before
        flipping.  The default (7) reproduces the historical noise
        stream; ``1`` is the maximal in-spec churn adversary used by the
        chaos harness — the output may change on *every* step before
        stabilization, which the definition of Ω fully permits.
    stabilization_span:
        Cap on how long after the last crash the oracle may stay noisy
        (see :func:`repro.core.detector.sample_stabilization_time`).
        Larger spans keep the churn going longer while remaining
        admissible — stabilization still happens inside the horizon.
    """

    name = "Omega"

    def __init__(
        self,
        noisy: bool = True,
        leader: int | None = None,
        churn_period: int = 7,
        stabilization_span: int | None = None,
    ):
        if churn_period < 1:
            raise ValueError(f"churn_period must be >= 1, got {churn_period}")
        self.noisy = noisy
        self.leader = leader
        self.churn_period = churn_period
        self.stabilization_span = stabilization_span

    def build_history(
        self,
        pattern: FailurePattern,
        horizon: int,
        rng: random.Random,
    ) -> FailureDetectorHistory:
        if not pattern.correct:
            raise ValueError("Omega requires at least one correct process")
        if self.leader is not None:
            if self.leader not in pattern.correct:
                raise ValueError(
                    f"forced leader {self.leader} is not correct in {pattern!r}"
                )
            leader = self.leader
        else:
            leader = min(pattern.correct)

        if not self.noisy:
            return FailureDetectorHistory(
                pattern.n, horizon, lambda pid, t: leader
            )

        # Per-process stabilization times and pre-stabilization noise.
        stab: Dict[int, int] = {}
        noise_seed = rng.randrange(2**62)
        span = self.stabilization_span
        for pid in pattern.processes:
            if span is None:
                stab[pid] = sample_stabilization_time(rng, pattern, horizon)
            else:
                stab[pid] = sample_stabilization_time(
                    rng, pattern, horizon, span=span
                )
        period = self.churn_period

        def value(pid: int, t: int) -> int:
            if t >= stab[pid]:
                return leader
            # Deterministic pseudo-noise: any process id is admissible
            # before stabilization, including faulty ones.
            mix = hash((noise_seed, pid, t // period))
            return mix % pattern.n

        return FailureDetectorHistory(pattern.n, horizon, value)
