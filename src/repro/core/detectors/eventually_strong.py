"""The eventually strong detector ◇S — the classical consensus detector.

Chandra–Toueg [4] solve consensus with ◇S and a correct majority, and
[3] proves Ω ≅ ◇S is the weakest for that setting; the paper reproduced
here generalises exactly that result to every environment (Corollary
4).  ◇S outputs suspicion sets subject to:

* **Strong completeness** — eventually every faulty process is
  permanently suspected by every correct process;
* **Eventual weak accuracy** — eventually *some* correct process is
  never suspected by any correct process.

Weaker than ◇P (which protects every correct process); exactly strong
enough to elect a leader (the unsuspected correct process).
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet

from repro.core.detector import FailureDetector, sample_stabilization_time
from repro.core.failure_pattern import FailurePattern
from repro.core.history import FailureDetectorHistory


class EventuallyStrongOracle(FailureDetector):
    """Samples histories of ◇S.

    After stabilization each process suspects the faulty processes and,
    adversarially, may keep *wrongly* suspecting correct processes —
    all except one sampled "protected" correct process, exercising the
    full slack weak accuracy leaves.
    """

    name = "<>S"

    def __init__(self, protect: int | None = None, noisy: bool = True):
        self.protect = protect
        self.noisy = noisy

    def build_history(
        self,
        pattern: FailurePattern,
        horizon: int,
        rng: random.Random,
    ) -> FailureDetectorHistory:
        if not pattern.correct:
            raise ValueError("<>S requires at least one correct process")
        if self.protect is not None:
            if self.protect not in pattern.correct:
                raise ValueError(
                    f"protected process {self.protect} is not correct"
                )
            protected = self.protect
        else:
            protected = min(pattern.correct)

        stab: Dict[int, int] = {
            pid: sample_stabilization_time(rng, pattern, horizon)
            for pid in pattern.processes
        }
        noise_seed = rng.randrange(2**62)
        others = [p for p in pattern.processes if p != protected]

        def value(pid: int, t: int) -> FrozenSet[int]:
            if t >= stab[pid]:
                suspects = set(pattern.faulty)
                if self.noisy:
                    # Weak accuracy permits persistent wrong suspicion
                    # of unprotected correct processes.
                    mix = random.Random(hash((noise_seed, pid, t // 6)))
                    for q in others:
                        if q != pid and q in pattern.correct and mix.random() < 0.3:
                            suspects.add(q)
                suspects.discard(protected)
                suspects.discard(pid)
                return frozenset(suspects)
            mix = random.Random(hash((noise_seed, pid, t // 4)))
            k = mix.randint(0, pattern.n - 1)
            return frozenset(mix.sample(range(pattern.n), k))

        return FailureDetectorHistory(pattern.n, horizon, value)
