"""Product failure detectors (D, D').

The paper composes detectors by pairing: "(D, D') is the failure
detector that outputs a vector with two components, the first being the
output of D and the second being the output of D'" (footnote 2).  The
two headline products are (Ω, Σ) — the weakest detector for consensus —
and (Ψ, FS) — the weakest detector for NBAC.
"""

from __future__ import annotations

import random
from typing import Any, Tuple

from repro.core.detector import FailureDetector
from repro.core.detectors.omega import OmegaOracle
from repro.core.detectors.sigma import SigmaOracle
from repro.core.failure_pattern import FailurePattern
from repro.core.history import FailureDetectorHistory


class ProductOracle(FailureDetector):
    """The product (D, D') of two oracles.

    Each component is sampled independently (with RNGs split from the
    caller's), and the emitted value at ``(p, t)`` is the pair of
    component values at ``(p, t)``.
    """

    def __init__(self, first: FailureDetector, second: FailureDetector):
        self.first = first
        self.second = second
        self.name = f"({first.name}, {second.name})"

    def build_history(
        self,
        pattern: FailurePattern,
        horizon: int,
        rng: random.Random,
    ) -> FailureDetectorHistory:
        rng_first = random.Random(rng.randrange(2**62))
        rng_second = random.Random(rng.randrange(2**62))
        h_first = self.first.build_history(pattern, horizon, rng_first)
        h_second = self.second.build_history(pattern, horizon, rng_second)

        def value(pid: int, t: int) -> Tuple[Any, Any]:
            return (h_first.value(pid, t), h_second.value(pid, t))

        return FailureDetectorHistory(pattern.n, horizon, value)

    def __repr__(self) -> str:
        return f"ProductOracle({self.first!r}, {self.second!r})"


def omega_sigma_oracle(
    noisy: bool = True,
    churn_period: int = 7,
    reshuffle_period: int = 5,
    stabilization_span: int | None = None,
) -> ProductOracle:
    """The (Ω, Σ) oracle — the weakest detector to solve consensus.

    ``churn_period`` / ``reshuffle_period`` / ``stabilization_span``
    thread through to the component oracles; the defaults reproduce the
    historical histories exactly, while ``1``/``1``/large is the chaos
    harness's maximal in-spec perturbation.
    """
    return ProductOracle(
        OmegaOracle(
            noisy=noisy,
            churn_period=churn_period,
            stabilization_span=stabilization_span,
        ),
        SigmaOracle(
            noisy=noisy,
            reshuffle_period=reshuffle_period,
            stabilization_span=stabilization_span,
        ),
    )
