"""The quorum failure detector Σ.

Definition (Section 2): the range of Σ is ``2^Pi``, and ``H ∈ Σ(F)`` iff

* **Intersection** (perpetual): any two quorums output at any times by
  any processes intersect:
  ``∀p, p'  ∀t, t' : H(p, t) ∩ H(p', t') ≠ ∅``;
* **Completeness** (eventual): eventually every quorum output at a
  correct process contains only correct processes:
  ``∀p ∈ correct(F)  ∃t  ∀t' ≥ t : H(p, t') ⊆ correct(F)``.

Two oracles are provided:

* :class:`SigmaOracle` works in *every* environment.  It keeps the
  perpetual intersection property by threading a common correct
  "kernel" process through every quorum; before stabilization the rest
  of the quorum is noise (may include faulty processes), afterwards it
  is a subset of the correct processes.
* :class:`MajoritySigmaOracle` outputs majority quorums, which intersect
  pairwise by counting.  It is only admissible in majority-correct
  environments (completeness needs a fully-correct majority) and
  mirrors the paper's remark that Σ comes "for free" there.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List

from repro.core.detector import FailureDetector, sample_stabilization_time
from repro.core.failure_pattern import FailurePattern
from repro.core.history import FailureDetectorHistory


class SigmaOracle(FailureDetector):
    """Samples histories of Σ, valid in any environment.

    Every emitted quorum contains a fixed correct *kernel* process, which
    enforces Intersection at all times; Completeness is achieved by
    shrinking quorums to subsets of ``correct(F)`` after a sampled
    stabilization time.

    Parameters
    ----------
    reshuffle_period:
        How many steps an emitted quorum persists before being redrawn.
        The default (5) reproduces the historical stream; ``1`` redraws
        the quorum on every step — the maximal in-spec reshuffling
        adversary, still sound because every draw contains the kernel
        (Intersection) and post-stabilization draws are subsets of
        ``correct(F)`` (Completeness).
    stabilization_span:
        Cap on post-crash noise duration, as in :class:`OmegaOracle`.
    """

    name = "Sigma"

    def __init__(
        self,
        noisy: bool = True,
        kernel: int | None = None,
        reshuffle_period: int = 5,
        stabilization_span: int | None = None,
    ):
        if reshuffle_period < 1:
            raise ValueError(
                f"reshuffle_period must be >= 1, got {reshuffle_period}"
            )
        self.noisy = noisy
        self.kernel = kernel
        self.reshuffle_period = reshuffle_period
        self.stabilization_span = stabilization_span

    def build_history(
        self,
        pattern: FailurePattern,
        horizon: int,
        rng: random.Random,
    ) -> FailureDetectorHistory:
        if not pattern.correct:
            raise ValueError("Sigma requires at least one correct process")
        if self.kernel is not None:
            if self.kernel not in pattern.correct:
                raise ValueError(
                    f"kernel {self.kernel} is not correct in {pattern!r}"
                )
            kernel = self.kernel
        else:
            kernel = min(pattern.correct)

        correct = sorted(pattern.correct)
        everyone = list(pattern.processes)

        if not self.noisy:
            stable = frozenset(correct)
            return FailureDetectorHistory(
                pattern.n, horizon, lambda pid, t: stable
            )

        span = self.stabilization_span
        stab: Dict[int, int] = {
            pid: (
                sample_stabilization_time(rng, pattern, horizon)
                if span is None
                else sample_stabilization_time(rng, pattern, horizon, span=span)
            )
            for pid in pattern.processes
        }
        noise_seed = rng.randrange(2**62)
        period = self.reshuffle_period

        def value(pid: int, t: int) -> FrozenSet[int]:
            mix = random.Random(hash((noise_seed, pid, t // period)))
            if t >= stab[pid]:
                # Subset of correct processes, always containing kernel.
                k = mix.randint(1, len(correct))
                quorum = set(mix.sample(correct, k))
            else:
                # Arbitrary noise, possibly including faulty processes.
                k = mix.randint(1, len(everyone))
                quorum = set(mix.sample(everyone, k))
            quorum.add(kernel)
            return frozenset(quorum)

        return FailureDetectorHistory(pattern.n, horizon, value)


class MajoritySigmaOracle(FailureDetector):
    """Σ via majorities; admissible only when a majority is correct.

    Any two majorities of Pi intersect, giving Intersection without a
    designated kernel.  Completeness holds because after stabilization
    the oracle emits majorities drawn from ``correct(F)``, which exist
    exactly when a majority of processes is correct.
    """

    name = "Sigma(majority)"

    def build_history(
        self,
        pattern: FailurePattern,
        horizon: int,
        rng: random.Random,
    ) -> FailureDetectorHistory:
        majority = pattern.n // 2 + 1
        correct = sorted(pattern.correct)
        if len(correct) < majority:
            raise ValueError(
                "MajoritySigmaOracle needs a correct majority; "
                f"only {len(correct)}/{pattern.n} correct in {pattern!r}"
            )
        everyone = list(pattern.processes)
        stab: Dict[int, int] = {
            pid: sample_stabilization_time(rng, pattern, horizon)
            for pid in pattern.processes
        }
        noise_seed = rng.randrange(2**62)

        def value(pid: int, t: int) -> FrozenSet[int]:
            mix = random.Random(hash((noise_seed, pid, t // 5)))
            if t >= stab[pid]:
                pool: List[int] = correct
            else:
                pool = everyone
            k = mix.randint(majority, len(pool)) if len(pool) >= majority else majority
            return frozenset(mix.sample(pool, min(k, len(pool))))

        return FailureDetectorHistory(pattern.n, horizon, value)
