"""Oracle implementations of the paper's failure detectors.

Each oracle samples one admissible history ``H ∈ D(F)`` for a concrete
failure pattern ``F``:

* :class:`~repro.core.detectors.omega.OmegaOracle` — Ω, eventual leader;
* :class:`~repro.core.detectors.sigma.SigmaOracle` — Σ, quorums;
* :class:`~repro.core.detectors.fs.FSOracle` — FS, failure signal;
* :class:`~repro.core.detectors.psi.PsiOracle` — Ψ, the weakest detector
  for quittable consensus;
* :class:`~repro.core.detectors.perfect.PerfectOracle` /
  :class:`~repro.core.detectors.perfect.EventuallyPerfectOracle` — the
  classical P and ◇P baselines;
* :class:`~repro.core.detectors.combined.ProductOracle` — the product
  (D, D') used for (Ω, Σ) and (Ψ, FS).
"""

from repro.core.detectors.omega import OmegaOracle
from repro.core.detectors.sigma import SigmaOracle, MajoritySigmaOracle
from repro.core.detectors.fs import FSOracle
from repro.core.detectors.psi import PsiOracle
from repro.core.detectors.perfect import PerfectOracle, EventuallyPerfectOracle
from repro.core.detectors.eventually_strong import EventuallyStrongOracle
from repro.core.detectors.strong import StrongOracle
from repro.core.detectors.combined import ProductOracle, omega_sigma_oracle

__all__ = [
    "OmegaOracle",
    "SigmaOracle",
    "MajoritySigmaOracle",
    "FSOracle",
    "PsiOracle",
    "PerfectOracle",
    "EventuallyPerfectOracle",
    "EventuallyStrongOracle",
    "StrongOracle",
    "ProductOracle",
    "omega_sigma_oracle",
]
