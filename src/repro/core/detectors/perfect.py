"""Classical baseline detectors: P (perfect) and ◇P (eventually perfect).

These are not part of the paper's contributions but are the standard
points of comparison from Chandra–Toueg [4]; the experiment suite uses
them to position Σ/Ω/FS/Ψ in the detector hierarchy (e.g. P can
implement every detector in this library, and ◇P can implement Ω).

Both output a set of *suspected* processes:

* **P** — strong completeness (eventually every faulty process is
  permanently suspected by every correct process) and strong accuracy
  (no process is suspected before it crashes);
* **◇P** — strong completeness and *eventual* strong accuracy (there is
  a time after which correct processes are not suspected).
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet

from repro.core.detector import FailureDetector, sample_stabilization_time
from repro.core.failure_pattern import FailurePattern
from repro.core.history import FailureDetectorHistory


class PerfectOracle(FailureDetector):
    """Samples histories of the perfect detector P.

    Each process suspects a crashed process after a per-pair sampled
    detection delay, and never suspects a live one.
    """

    name = "P"

    def __init__(self, max_detection_delay: int = 50):
        if max_detection_delay < 0:
            raise ValueError("max_detection_delay must be non-negative")
        self.max_detection_delay = max_detection_delay

    def build_history(
        self,
        pattern: FailurePattern,
        horizon: int,
        rng: random.Random,
    ) -> FailureDetectorHistory:
        detect: Dict[tuple[int, int], int] = {}
        for observer in pattern.processes:
            for victim, crash_t in pattern.crash_times.items():
                detect[(observer, victim)] = crash_t + rng.randint(
                    0, self.max_detection_delay
                )

        def value(pid: int, t: int) -> FrozenSet[int]:
            return frozenset(
                victim
                for victim in pattern.faulty
                if t >= detect[(pid, victim)]
            )

        return FailureDetectorHistory(pattern.n, horizon, value)


class EventuallyPerfectOracle(FailureDetector):
    """Samples histories of ◇P.

    Before a sampled stabilization time, suspicions are noisy (live
    processes may be wrongly suspected); afterwards the output equals
    the set of processes that have actually crashed, with perfect-
    detector behaviour from then on.
    """

    name = "<>P"

    def __init__(self, max_detection_delay: int = 50):
        if max_detection_delay < 0:
            raise ValueError("max_detection_delay must be non-negative")
        self.max_detection_delay = max_detection_delay

    def build_history(
        self,
        pattern: FailurePattern,
        horizon: int,
        rng: random.Random,
    ) -> FailureDetectorHistory:
        stab: Dict[int, int] = {
            pid: sample_stabilization_time(rng, pattern, horizon)
            for pid in pattern.processes
        }
        noise_seed = rng.randrange(2**62)

        def value(pid: int, t: int) -> FrozenSet[int]:
            if t >= stab[pid]:
                return pattern.crashed_at(t)
            mix = random.Random(hash((noise_seed, pid, t // 4)))
            k = mix.randint(0, pattern.n - 1)
            return frozenset(mix.sample(range(pattern.n), k))

        return FailureDetectorHistory(pattern.n, horizon, value)
