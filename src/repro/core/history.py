"""Failure detector histories.

A *failure detector history* with range ``R`` is a function
``H : Pi x T -> R`` giving the value of each process's failure detector
module at each time (Section 2).  A run of a simulation only *samples*
``H`` at the times when processes take steps, so this module provides
both:

* :class:`FailureDetectorHistory` — a dense history defined at every
  time step up to a horizon (what oracle detectors generate), and
* :class:`SampledHistory` — the sparse per-step samples recorded in a
  run trace (what spec checkers consume).

Both expose the same ``samples_of(pid)`` iteration interface, so the
property checkers in :mod:`repro.core.specs` work on either.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Iterator, List, Tuple

Sample = Tuple[int, Any]  # (time, detector value)

#: Per-process memo bound for dense histories.  Spec checkers sweep
#: times mostly in order, so a recency window this size makes repeated
#: queries free while keeping horizon-length histories O(n * bound)
#: instead of O(n * horizon).
DEFAULT_HISTORY_CACHE_SIZE = 2048


class FailureDetectorHistory:
    """A dense history ``H(p, t)`` backed by a value function.

    Oracle detectors construct these lazily: ``value_fn(pid, t)`` is
    evaluated on demand and memoised per process in a bounded LRU —
    long-horizon sweeps no longer grow the memo without bound.  The
    bound is safe because ``value_fn`` must be deterministic in
    ``(pid, t)``: an evicted entry recomputes to the same value.
    """

    def __init__(
        self,
        n: int,
        horizon: int,
        value_fn: Callable[[int, int], Any],
        cache_size: int = DEFAULT_HISTORY_CACHE_SIZE,
    ):
        if n <= 0:
            raise ValueError(f"need at least one process, got n={n}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self.n = n
        self.horizon = horizon
        self.cache_size = cache_size
        self._value_fn = value_fn
        self._cache: List[OrderedDict[int, Any]] = [OrderedDict() for _ in range(n)]
        #: Optional duck-typed perf-counter bag (the sim layer attaches a
        #: :class:`repro.sim.perf.PerfCounters`; core never imports sim).
        self.perf = None

    def value(self, pid: int, t: int) -> Any:
        """``H(pid, t)``."""
        if not 0 <= pid < self.n:
            raise ValueError(f"unknown process {pid}")
        if t < 0:
            raise ValueError(f"negative time {t}")
        perf = self.perf
        if perf is not None:
            perf.detector_value_calls += 1
        memo = self._cache[pid]
        try:
            memo.move_to_end(t)
            if perf is not None:
                perf.detector_cache_hits += 1
            return memo[t]
        except KeyError:
            pass
        value = self._value_fn(pid, t)
        memo[t] = value
        if len(memo) > self.cache_size:
            memo.popitem(last=False)
        return value

    def cached_entries(self, pid: int | None = None) -> int:
        """How many ``(pid, t)`` memo entries are currently held."""
        if pid is not None:
            return len(self._cache[pid])
        return sum(len(memo) for memo in self._cache)

    def samples_of(self, pid: int) -> Iterator[Sample]:
        """All ``(t, H(pid, t))`` pairs up to the horizon."""
        for t in range(self.horizon):
            yield (t, self.value(pid, t))

    def processes(self) -> range:
        return range(self.n)


class SampledHistory:
    """The sparse detector samples observed in a run.

    Each process contributes the (time, value) pairs at which it actually
    took steps.  This is the *observable* portion of ``H``; since all the
    detector specifications quantify over all times, checking them on the
    sampled subset is a sound (necessary) check, and the simulation's
    fairness guarantees make it an adequate one.
    """

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError(f"need at least one process, got n={n}")
        self.n = n
        self._samples: List[List[Sample]] = [[] for _ in range(n)]

    def record(self, pid: int, t: int, value: Any) -> None:
        """Append the detector value ``pid`` saw at step time ``t``."""
        if not 0 <= pid < self.n:
            raise ValueError(f"unknown process {pid}")
        samples = self._samples[pid]
        if samples and samples[-1][0] >= t:
            raise ValueError(
                f"non-increasing sample time {t} for process {pid} "
                f"(last was {samples[-1][0]})"
            )
        samples.append((t, value))

    def samples_of(self, pid: int) -> Iterator[Sample]:
        return iter(self._samples[pid])

    def last_value(self, pid: int) -> Any:
        """The most recent value seen by ``pid`` (None if never stepped)."""
        samples = self._samples[pid]
        return samples[-1][1] if samples else None

    def processes(self) -> range:
        return range(self.n)

    def sample_count(self, pid: int) -> int:
        return len(self._samples[pid])

    @classmethod
    def from_pairs(
        cls, n: int, pairs: Iterable[Tuple[int, int, Any]]
    ) -> "SampledHistory":
        """Build from ``(pid, t, value)`` triples (sorted per process)."""
        hist = cls(n)
        by_pid: Dict[int, List[Tuple[int, Any]]] = {}
        for pid, t, value in pairs:
            by_pid.setdefault(pid, []).append((t, value))
        for pid, samples in by_pid.items():
            for t, value in sorted(samples):
                hist.record(pid, t, value)
        return hist
