"""Property checkers for failure detector histories.

Each checker transcribes one detector definition from Section 2 (and
Section 6.1 for Ψ) into a predicate over *observed* histories — either
dense oracle histories or the sparse per-step samples recorded in a run.

Perpetual properties (Σ-Intersection, FS-Accuracy, P-Accuracy) are
checked exhaustively over all observed samples.  Eventual properties
("eventually ... forever") are finitised: the checker looks for a suffix
of the observation window on which the property holds and reports the
time it holds from.  A finite window can of course only *falsify* an
eventual property or confirm it held over the observed suffix; the
simulation harness sizes horizons so that the stable suffix is long
enough to be meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.core.detector import BOTTOM, GREEN, RED, is_fs_value, is_omega_sigma_value
from repro.core.failure_pattern import FailurePattern
from repro.core.history import SampledHistory


class HistoryLike(Protocol):
    """Anything exposing per-process (time, value) samples."""

    n: int

    def samples_of(self, pid: int) -> Any: ...

    def processes(self) -> range: ...


@dataclass
class SpecVerdict:
    """Outcome of checking one detector specification.

    Attributes
    ----------
    ok:
        Whether every clause of the specification held on the
        observations.
    holds_from:
        For specifications with an eventual clause, the earliest
        observed time from which the eventual clause held at every
        relevant process (None when ``ok`` is false or the clause is
        vacuous).
    violations:
        Human-readable descriptions of each violated clause.
    """

    ok: bool
    holds_from: Optional[int] = None
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def _samples(history: HistoryLike, pid: int) -> List[Tuple[int, Any]]:
    return list(history.samples_of(pid))


def _stable_suffix_start(
    samples: Sequence[Tuple[int, Any]], predicate
) -> Optional[int]:
    """Earliest sample time from which ``predicate(value)`` holds through
    the end of ``samples``; None if it fails on the final sample or the
    sequence is empty."""
    start: Optional[int] = None
    for t, value in samples:
        if predicate(value):
            if start is None:
                start = t
        else:
            start = None
    return start


# ----------------------------------------------------------------------
# Omega
# ----------------------------------------------------------------------
def check_omega(history: HistoryLike, pattern: FailurePattern) -> SpecVerdict:
    """Check Ω: some correct process is eventually output forever by
    every correct process."""
    violations: List[str] = []
    final_values = {}
    holds_from = 0
    for pid in sorted(pattern.correct):
        samples = _samples(history, pid)
        if not samples:
            violations.append(f"correct process {pid} has no samples")
            continue
        last_value = samples[-1][1]
        final_values[pid] = last_value
        start = _stable_suffix_start(samples, lambda v: v == last_value)
        assert start is not None
        holds_from = max(holds_from, start)

    if violations:
        return SpecVerdict(False, None, violations)

    leaders = set(final_values.values())
    if len(leaders) != 1:
        violations.append(
            f"correct processes converge to different leaders: {final_values}"
        )
        return SpecVerdict(False, None, violations)

    leader = leaders.pop()
    if leader not in pattern.correct:
        violations.append(f"eventual leader {leader!r} is not a correct process")
        return SpecVerdict(False, None, violations)

    return SpecVerdict(True, holds_from)


# ----------------------------------------------------------------------
# Sigma
# ----------------------------------------------------------------------
def check_sigma(history: HistoryLike, pattern: FailurePattern) -> SpecVerdict:
    """Check Σ: perpetual pairwise Intersection and eventual
    Completeness (quorums at correct processes ⊆ correct(F))."""
    violations: List[str] = []

    # Pairwise intersection over *distinct* quorum values (the identity
    # of the emitting process/time is irrelevant to the property, and
    # extraction outputs repeat heavily, so dedup is a large win).
    distinct: Dict[frozenset, Tuple[int, int]] = {}
    for pid in pattern.processes:
        for t, value in _samples(history, pid):
            if not isinstance(value, frozenset):
                violations.append(
                    f"H({pid},{t}) = {value!r} is not a set of processes"
                )
                return SpecVerdict(False, None, violations)
            distinct.setdefault(value, (pid, t))

    quorum_list = list(distinct.items())
    # Fast sufficient conditions before the quadratic fallback: a
    # non-empty global intersection (kernel-style families) or all
    # quorums being majorities each imply pairwise intersection.
    globally_common = None
    for q, _ in quorum_list:
        globally_common = q if globally_common is None else globally_common & q
        if not globally_common:
            break
    all_majorities = all(
        len(q) >= pattern.n // 2 + 1 for q, _ in quorum_list
    )
    if not globally_common and not all_majorities:
        for i, (q1, (p1, t1)) in enumerate(quorum_list):
            for q2, (p2, t2) in quorum_list[i + 1 :]:
                if not q1 & q2:
                    violations.append(
                        f"Intersection violated: H({p1},{t1})={sorted(q1)} "
                        f"and H({p2},{t2})={sorted(q2)} are disjoint"
                    )
                    return SpecVerdict(False, None, violations)

    holds_from = 0
    correct = pattern.correct
    for pid in sorted(correct):
        samples = _samples(history, pid)
        if not samples:
            violations.append(f"correct process {pid} has no samples")
            continue
        start = _stable_suffix_start(samples, lambda q: q <= correct)
        if start is None:
            violations.append(
                f"Completeness violated at process {pid}: final quorum "
                f"{sorted(samples[-1][1])} contains faulty processes"
            )
        else:
            holds_from = max(holds_from, start)

    if violations:
        return SpecVerdict(False, None, violations)
    return SpecVerdict(True, holds_from)


# ----------------------------------------------------------------------
# FS
# ----------------------------------------------------------------------
def check_fs(history: HistoryLike, pattern: FailurePattern) -> SpecVerdict:
    """Check FS: red only after a failure; eventually-red at every
    correct process if a failure occurred."""
    violations: List[str] = []
    first_crash = pattern.first_crash_time()

    for pid in pattern.processes:
        for t, value in _samples(history, pid):
            if value not in (GREEN, RED):
                violations.append(f"H({pid},{t}) = {value!r} is not green/red")
                return SpecVerdict(False, None, violations)
            if value == RED and (first_crash is None or t < first_crash):
                violations.append(
                    f"Accuracy violated: H({pid},{t}) = red but no failure "
                    f"has occurred by time {t}"
                )

    holds_from: Optional[int] = None
    if pattern.faulty:
        holds_from = 0
        for pid in sorted(pattern.correct):
            samples = _samples(history, pid)
            if not samples:
                violations.append(f"correct process {pid} has no samples")
                continue
            start = _stable_suffix_start(samples, lambda v: v == RED)
            if start is None:
                violations.append(
                    f"Completeness violated: correct process {pid} does not "
                    f"end in a red suffix despite faulty={sorted(pattern.faulty)}"
                )
            else:
                holds_from = max(holds_from, start)

    if violations:
        return SpecVerdict(False, None, violations)
    return SpecVerdict(True, holds_from)


# ----------------------------------------------------------------------
# (Omega, Sigma) product
# ----------------------------------------------------------------------
def check_omega_sigma(history: HistoryLike, pattern: FailurePattern) -> SpecVerdict:
    """Check the product (Ω, Σ) componentwise."""
    omega_part = SampledHistory(pattern.n)
    sigma_part = SampledHistory(pattern.n)
    for pid in pattern.processes:
        for t, value in _samples(history, pid):
            if not is_omega_sigma_value(value):
                return SpecVerdict(
                    False,
                    None,
                    [f"H({pid},{t}) = {value!r} is not an (Omega, Sigma) pair"],
                )
            omega_part.record(pid, t, value[0])
            sigma_part.record(pid, t, value[1])
    omega_verdict = check_omega(omega_part, pattern)
    sigma_verdict = check_sigma(sigma_part, pattern)
    ok = omega_verdict.ok and sigma_verdict.ok
    holds_from = None
    if ok:
        holds_from = max(omega_verdict.holds_from or 0, sigma_verdict.holds_from or 0)
    return SpecVerdict(
        ok, holds_from, omega_verdict.violations + sigma_verdict.violations
    )


# ----------------------------------------------------------------------
# Psi
# ----------------------------------------------------------------------
def check_psi(history: HistoryLike, pattern: FailurePattern) -> SpecVerdict:
    """Check Ψ: a ⊥-prefix at every process, then a single common branch
    — FS (admissible only after a failure) or (Ω, Σ) — whose suffix
    samples satisfy the corresponding sub-specification."""
    violations: List[str] = []
    branch_types = set()
    switch_times = {}
    suffix = SampledHistory(pattern.n)

    for pid in pattern.processes:
        seen_non_bottom = False
        for t, value in _samples(history, pid):
            if value is BOTTOM:
                if seen_non_bottom:
                    violations.append(
                        f"process {pid} reverted to ⊥ at time {t} after switching"
                    )
                continue
            if not seen_non_bottom:
                seen_non_bottom = True
                switch_times[pid] = t
            if is_fs_value(value):
                branch_types.add("fs")
            elif is_omega_sigma_value(value):
                branch_types.add("omega-sigma")
            else:
                violations.append(
                    f"H({pid},{t}) = {value!r} is neither ⊥, FS, nor (Omega, Sigma)"
                )
                return SpecVerdict(False, None, violations)
            suffix.record(pid, t, value)

    if violations:
        return SpecVerdict(False, None, violations)

    if len(branch_types) > 1:
        violations.append(
            "processes committed to different branches: "
            f"{sorted(branch_types)} (switch times {switch_times})"
        )
        return SpecVerdict(False, None, violations)

    if not branch_types:
        # Everyone output ⊥ throughout the window.  The definition
        # requires every process to switch eventually, so correct
        # processes stuck at ⊥ for the whole window falsify Ψ.
        if any(
            any(True for _ in history.samples_of(pid)) for pid in pattern.correct
        ):
            violations.append(
                "no process ever switched away from ⊥ within the window"
            )
            return SpecVerdict(False, None, violations)
        return SpecVerdict(True, None)

    branch = branch_types.pop()
    for pid in sorted(pattern.correct):
        if pid not in switch_times:
            samples = _samples(history, pid)
            if samples:
                violations.append(
                    f"correct process {pid} never switched away from ⊥"
                )
    if violations:
        return SpecVerdict(False, None, violations)

    if branch == "fs":
        first_crash = pattern.first_crash_time()
        if first_crash is None:
            violations.append(
                "FS branch taken on a crash-free pattern (inadmissible)"
            )
            return SpecVerdict(False, None, violations)
        for pid, t_switch in sorted(switch_times.items()):
            if t_switch < first_crash:
                violations.append(
                    f"process {pid} switched to FS at {t_switch}, before the "
                    f"first crash at {first_crash}"
                )
        if violations:
            return SpecVerdict(False, None, violations)
        sub = check_fs(suffix, pattern)
    else:
        sub = check_omega_sigma(suffix, pattern)

    if not sub.ok:
        return SpecVerdict(
            False, None, [f"{branch} suffix fails: {v}" for v in sub.violations]
        )
    holds_from = max(
        [sub.holds_from or 0] + [t for t in switch_times.values()]
    )
    return SpecVerdict(True, holds_from)


# ----------------------------------------------------------------------
# P and <>P
# ----------------------------------------------------------------------
def check_perfect(history: HistoryLike, pattern: FailurePattern) -> SpecVerdict:
    """Check P: strong accuracy (never suspect before crash) and strong
    completeness (faulty processes end permanently suspected)."""
    violations: List[str] = []
    for pid in pattern.processes:
        for t, suspects in _samples(history, pid):
            for victim in suspects:
                if not pattern.crashed(victim, t):
                    violations.append(
                        f"Accuracy violated: {pid} suspects {victim} at {t} "
                        f"but {victim} has not crashed"
                    )
    holds_from = _check_strong_completeness(history, pattern, violations)
    if violations:
        return SpecVerdict(False, None, violations)
    return SpecVerdict(True, holds_from)


def check_eventually_perfect(
    history: HistoryLike, pattern: FailurePattern
) -> SpecVerdict:
    """Check ◇P: strong completeness and eventual strong accuracy."""
    violations: List[str] = []
    holds_from = _check_strong_completeness(history, pattern, violations) or 0
    for pid in sorted(pattern.correct):
        samples = _samples(history, pid)
        if not samples:
            continue
        start = _stable_suffix_start(
            samples, lambda s: not (s & pattern.correct)
        )
        if start is None:
            violations.append(
                f"Eventual accuracy violated: process {pid} still suspects a "
                f"correct process in its final sample"
            )
        else:
            holds_from = max(holds_from, start)
    if violations:
        return SpecVerdict(False, None, violations)
    return SpecVerdict(True, holds_from)


def check_strong(history: HistoryLike, pattern: FailurePattern) -> SpecVerdict:
    """Check S: strong completeness plus *perpetual* weak accuracy —
    some correct process is suspected by nobody at any observed time."""
    violations: List[str] = []
    holds_from = _check_strong_completeness(history, pattern, violations) or 0

    never_suspected = set(pattern.correct)
    for pid in pattern.processes:
        for _, suspects in _samples(history, pid):
            never_suspected -= suspects
            if not never_suspected:
                break
        if not never_suspected:
            break
    if not never_suspected:
        violations.append(
            "Weak accuracy violated: every correct process was suspected "
            "by someone at some time"
        )

    if violations:
        return SpecVerdict(False, None, violations)
    return SpecVerdict(True, holds_from)


def check_eventually_strong(
    history: HistoryLike, pattern: FailurePattern
) -> SpecVerdict:
    """Check ◇S: strong completeness and eventual *weak* accuracy
    (some correct process eventually suspected by no correct process)."""
    violations: List[str] = []
    holds_from = _check_strong_completeness(history, pattern, violations) or 0

    protected_candidates = set(pattern.correct)
    starts: List[int] = []
    for pid in sorted(pattern.correct):
        samples = _samples(history, pid)
        if not samples:
            continue
        for candidate in list(protected_candidates):
            start = _stable_suffix_start(
                samples, lambda s, c=candidate: c not in s
            )
            if start is None:
                protected_candidates.discard(candidate)
    if not protected_candidates:
        violations.append(
            "Eventual weak accuracy violated: every correct process is "
            "suspected in some correct process's final samples"
        )
    else:
        # Stabilisation time of the surviving candidate(s).
        candidate = min(protected_candidates)
        for pid in sorted(pattern.correct):
            samples = _samples(history, pid)
            if not samples:
                continue
            start = _stable_suffix_start(
                samples, lambda s: candidate not in s
            )
            holds_from = max(holds_from, start or 0)

    if violations:
        return SpecVerdict(False, None, violations)
    return SpecVerdict(True, holds_from)


def _check_strong_completeness(
    history: HistoryLike, pattern: FailurePattern, violations: List[str]
) -> Optional[int]:
    if not pattern.faulty:
        return None
    holds_from = 0
    for pid in sorted(pattern.correct):
        samples = _samples(history, pid)
        if not samples:
            violations.append(f"correct process {pid} has no samples")
            continue
        start = _stable_suffix_start(
            samples, lambda s: pattern.faulty <= s
        )
        if start is None:
            violations.append(
                f"Completeness violated: process {pid} does not permanently "
                f"suspect all of {sorted(pattern.faulty)}"
            )
        else:
            holds_from = max(holds_from, start)
    return holds_from
