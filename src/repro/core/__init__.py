"""Core model: failure patterns, environments, detector histories and specs.

This package is a direct transcription of Section 2 of the paper
(Delporte-Gallet et al., PODC 2004): failure patterns ``F``, failure
detector histories ``H``, failure detectors ``D`` as maps from patterns to
sets of histories, and environments ``E`` as sets of failure patterns.
"""

from repro.core.failure_pattern import FailurePattern
from repro.core.environment import (
    Environment,
    CrashFreeEnvironment,
    FCrashEnvironment,
    MajorityCorrectEnvironment,
    OrderedCrashEnvironment,
    ExplicitEnvironment,
)
from repro.core.history import FailureDetectorHistory

__all__ = [
    "FailurePattern",
    "Environment",
    "CrashFreeEnvironment",
    "FCrashEnvironment",
    "MajorityCorrectEnvironment",
    "OrderedCrashEnvironment",
    "ExplicitEnvironment",
    "FailureDetectorHistory",
]
