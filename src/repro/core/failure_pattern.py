"""Failure patterns.

A *failure pattern* is a function ``F : T -> 2^Pi`` where ``F(t)`` is the
set of processes that have crashed through time ``t`` (Section 2 of the
paper).  Crashed processes do not recover, so ``F`` is monotone:
``F(t) ⊆ F(t + 1)``.

In this reproduction time is a discrete global clock ``t = 0, 1, 2, ...``
(the paper's clock is likewise discrete and inaccessible to processes).
A :class:`FailurePattern` is represented compactly by a crash time per
process: ``crash_times[p] = t`` means ``p ∈ F(t')`` for all ``t' >= t``.
Processes absent from ``crash_times`` never crash.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple


class FailurePattern:
    """An immutable crash schedule over processes ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of processes in the system (``|Pi|``).
    crash_times:
        Mapping ``pid -> time`` of the first instant at which the process
        is crashed.  A process with no entry is correct.

    Examples
    --------
    >>> f = FailurePattern(3, {2: 10})
    >>> f.crashed(2, 9), f.crashed(2, 10)
    (False, True)
    >>> sorted(f.correct)
    [0, 1]
    >>> sorted(f.faulty)
    [2]
    """

    __slots__ = ("_n", "_crash_times", "_faulty", "_correct", "_events")

    def __init__(self, n: int, crash_times: Optional[Mapping[int, int]] = None):
        if n <= 0:
            raise ValueError(f"need at least one process, got n={n}")
        crash_times = dict(crash_times or {})
        for pid, t in crash_times.items():
            if not 0 <= pid < n:
                raise ValueError(f"crash of unknown process {pid} (n={n})")
            if t < 0:
                raise ValueError(f"negative crash time {t} for process {pid}")
        self._n = n
        self._crash_times: Dict[int, int] = crash_times
        self._faulty: FrozenSet[int] = frozenset(crash_times)
        self._correct: FrozenSet[int] = frozenset(
            p for p in range(n) if p not in crash_times
        )
        self._events: Tuple[Tuple[int, int], ...] = tuple(
            sorted((t, p) for p, t in crash_times.items())
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of processes in the system."""
        return self._n

    @property
    def processes(self) -> range:
        """The process ids ``0 .. n-1`` (the set Pi)."""
        return range(self._n)

    @property
    def faulty(self) -> FrozenSet[int]:
        """``faulty(F)``: processes that crash at some time in this pattern."""
        return self._faulty

    @property
    def correct(self) -> FrozenSet[int]:
        """``correct(F) = Pi - faulty(F)``."""
        return self._correct

    @property
    def crash_times(self) -> Mapping[int, int]:
        """Read-only view of the per-process crash times."""
        return dict(self._crash_times)

    # ------------------------------------------------------------------
    # The function F(t)
    # ------------------------------------------------------------------
    def crashed_at(self, t: int) -> FrozenSet[int]:
        """``F(t)``: the set of processes crashed through time ``t``."""
        return frozenset(
            p for p, ct in self._crash_times.items() if ct <= t
        )

    def crashed(self, pid: int, t: int) -> bool:
        """Whether process ``pid`` is crashed at time ``t``."""
        ct = self._crash_times.get(pid)
        return ct is not None and ct <= t

    def alive_at(self, t: int) -> FrozenSet[int]:
        """Processes not yet crashed at time ``t`` (they may crash later)."""
        return frozenset(p for p in range(self._n) if not self.crashed(p, t))

    def crash_events(self) -> Tuple[Tuple[int, int], ...]:
        """The crash schedule as ``(time, pid)`` pairs, time-ordered.

        Precomputed so run loops can maintain the alive set
        *incrementally* — O(total crashes) over a whole run instead of
        O(n · horizon) membership tests.
        """
        return self._events

    def first_crash_time(self) -> Optional[int]:
        """The first ``t`` with ``F(t) != {}``, or ``None`` if crash-free."""
        if not self._crash_times:
            return None
        return min(self._crash_times.values())

    def crash_time(self, pid: int) -> Optional[int]:
        """Crash time of ``pid``, or ``None`` if ``pid`` is correct."""
        return self._crash_times.get(pid)

    def is_crash_free(self) -> bool:
        """True iff no process ever crashes (``faulty(F) = {}``)."""
        return not self._crash_times

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailurePattern):
            return NotImplemented
        return self._n == other._n and self._crash_times == other._crash_times

    def __hash__(self) -> int:
        return hash((self._n, tuple(sorted(self._crash_times.items()))))

    def __repr__(self) -> str:
        crashes = ", ".join(
            f"p{p}@{t}" for p, t in sorted(self._crash_times.items())
        )
        return f"FailurePattern(n={self._n}, crashes=[{crashes}])"

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def crash_free(cls, n: int) -> "FailurePattern":
        """The failure-free pattern on ``n`` processes."""
        return cls(n, {})

    @classmethod
    def single_crash(cls, n: int, pid: int, t: int) -> "FailurePattern":
        """A pattern where only ``pid`` crashes, at time ``t``."""
        return cls(n, {pid: t})

    @classmethod
    def crashes(cls, n: int, pairs: Iterable[tuple[int, int]]) -> "FailurePattern":
        """A pattern from ``(pid, time)`` pairs."""
        return cls(n, dict(pairs))
