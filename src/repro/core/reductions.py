"""History-level reductions between failure detectors.

The weakest-detector methodology compares detectors by *reducibility*:
``D' ⪯ D`` when any history of D can be transformed (possibly using
communication) into a history of D'.  This module implements the purely
local reductions that position the paper's detectors in the classical
hierarchy — each is a function applied pointwise to a stronger
detector's history, so the transformation needs no messages at all:

* ``P → Σ`` — trust everyone you do not suspect.  Strong accuracy
  makes unsuspected sets supersets of ``correct(F)``, so any two
  outputs share every correct process (Intersection); strong
  completeness shrinks them to exactly ``correct(F)`` (Completeness).
* ``P → FS`` and ``◇P-style suspicion lists → FS`` requires perpetual
  accuracy: signal red as soon as anyone is suspected.
* ``◇P → Ω`` — the classical eventual-leader election: the smallest
  unsuspected process.
* ``(Ω, Σ) → Ψ`` — Ψ's (Ω, Σ) branch with an immediate switch: any
  (Ω, Σ) history is already an admissible Ψ history with switch time 0.
* ``Ψ → nothing weaker locally`` — Ψ's power is only unlocked through
  algorithms (Figures 2-4); there is no pointwise map from Ψ to Ω or Σ
  because the FS branch carries no leader/quorum information.  The
  test suite demonstrates this with a concrete Ψ history that defeats
  any pointwise extraction.

Together with the algorithmic extractions (Figures 1 and 3) and the
ex-nihilo constructions, these give the full reducibility picture the
paper's introduction sketches:

    P  ⟶  (Ω, Σ)  ⟶  Ψ        P ⟶ FS        majority ⟶ Σ (free)
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet

from repro.core.detector import BOTTOM, GREEN, RED
from repro.core.history import FailureDetectorHistory


def transform_history(
    history: FailureDetectorHistory,
    fn: Callable[[int, int, Any], Any],
) -> FailureDetectorHistory:
    """A new history with ``H'(p, t) = fn(p, t, H(p, t))``."""
    return FailureDetectorHistory(
        history.n,
        history.horizon,
        lambda pid, t: fn(pid, t, history.value(pid, t)),
    )


# ----------------------------------------------------------------------
# From P (perfect suspicion lists)
# ----------------------------------------------------------------------
def sigma_from_perfect(history: FailureDetectorHistory) -> FailureDetectorHistory:
    """Σ out of P: the quorum is everyone not currently suspected.

    Needs P's *strong accuracy* (never suspect a live process): then
    every output contains all correct processes, so all outputs
    pairwise intersect; strong completeness gives eventual equality
    with ``correct(F)``.
    """
    everyone = frozenset(range(history.n))

    def fn(pid: int, t: int, suspects: FrozenSet[int]) -> FrozenSet[int]:
        return everyone - suspects

    return transform_history(history, fn)


def fs_from_perfect(history: FailureDetectorHistory) -> FailureDetectorHistory:
    """FS out of P: red exactly while someone is suspected.

    P-accuracy means a suspicion certifies a real crash, so red never
    precedes a failure; P-completeness makes suspicion (hence red)
    permanent at correct processes once someone crashed.
    """

    def fn(pid: int, t: int, suspects: FrozenSet[int]) -> str:
        return RED if suspects else GREEN

    return transform_history(history, fn)


# ----------------------------------------------------------------------
# From ◇P (eventually perfect suspicion lists)
# ----------------------------------------------------------------------
def omega_from_eventually_perfect(
    history: FailureDetectorHistory,
) -> FailureDetectorHistory:
    """Ω out of ◇P: the smallest unsuspected process.

    After ◇P stabilises, every correct process's suspicion list is a
    subset of the faulty processes containing all of them, so the
    smallest unsuspected pid is the same correct process everywhere,
    forever.
    """

    def fn(pid: int, t: int, suspects: FrozenSet[int]) -> int:
        for q in range(history.n):
            if q not in suspects or q == pid:
                return q
        return pid  # unreachable: a process never suspects itself here

    return transform_history(history, fn)


# ----------------------------------------------------------------------
# Into Ψ
# ----------------------------------------------------------------------
def psi_from_omega_sigma(
    history: FailureDetectorHistory, switch_time: int = 0
) -> FailureDetectorHistory:
    """Ψ out of (Ω, Σ): take the (Ω, Σ) branch, switching at a fixed
    time.  Any (Ω, Σ) history with a ⊥-prefix is an admissible Ψ
    history — the branch is unconditional (unlike FS, which demands a
    prior failure)."""

    def fn(pid: int, t: int, value: Any) -> Any:
        return BOTTOM if t < switch_time else value

    return transform_history(history, fn)


def psi_fs_from_psi_and_fs(
    psi_history: FailureDetectorHistory,
    fs_history: FailureDetectorHistory,
) -> FailureDetectorHistory:
    """The (Ψ, FS) product from component histories — Corollary 10's
    detector assembled from parts."""
    if psi_history.n != fs_history.n or psi_history.horizon != fs_history.horizon:
        raise ValueError("component histories must have matching shape")
    return FailureDetectorHistory(
        psi_history.n,
        psi_history.horizon,
        lambda pid, t: (psi_history.value(pid, t), fs_history.value(pid, t)),
    )
