"""Failure detector base class and shared value vocabulary.

A failure detector ``D`` with range ``R`` maps each failure pattern ``F``
to a set of histories ``D(F)`` (Section 2).  An *oracle* detector in this
reproduction is a sampler of that set: given a concrete failure pattern,
a horizon, and a seeded RNG, it produces one admissible history
``H ∈ D(F)``.

Value vocabulary used across the library:

* Ω values are process ids (``int``);
* Σ values are ``frozenset`` quorums of process ids;
* FS values are the strings :data:`GREEN` and :data:`RED`;
* (Ω, Σ) product values are ``(leader, quorum)`` tuples;
* Ψ values are :data:`BOTTOM` during the initial period, then either an
  FS value or an (Ω, Σ) value, depending on the branch Ψ commits to.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, FrozenSet, Tuple

from repro.core.failure_pattern import FailurePattern
from repro.core.history import FailureDetectorHistory

GREEN = "green"
RED = "red"


class _Bottom:
    """The ⊥ value output by Ψ during its initial period."""

    _instance = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


BOTTOM = _Bottom()


def is_fs_value(value: Any) -> bool:
    """Whether ``value`` is in the range of FS."""
    return value in (GREEN, RED)


def is_omega_sigma_value(value: Any) -> bool:
    """Whether ``value`` is in the range of the product (Ω, Σ)."""
    return (
        isinstance(value, tuple)
        and len(value) == 2
        and isinstance(value[0], int)
        and isinstance(value[1], frozenset)
    )


OmegaSigmaValue = Tuple[int, FrozenSet[int]]


class FailureDetector(ABC):
    """An oracle that samples a history ``H ∈ D(F)``.

    Subclasses implement :meth:`build_history`.  The returned history must
    satisfy the detector's defining properties for the given pattern;
    :mod:`repro.core.specs` provides checkers that the test suite runs
    against every oracle.
    """

    #: Human-readable detector name (e.g. ``"Sigma"``) for traces/reports.
    name: str = "D"

    @abstractmethod
    def build_history(
        self,
        pattern: FailurePattern,
        horizon: int,
        rng: random.Random,
    ) -> FailureDetectorHistory:
        """Sample one admissible history for ``pattern`` up to ``horizon``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


#: Default cap on how long after the last crash an oracle may stay noisy.
DEFAULT_STABILIZATION_SPAN = 200


def sample_stabilization_time(
    rng: random.Random,
    pattern: FailurePattern,
    horizon: int,
    span: int = DEFAULT_STABILIZATION_SPAN,
) -> int:
    """A stabilization time for "eventually forever" properties.

    Eventual detector properties only promise good behaviour *after some
    time*.  Oracles sample that time so that it falls after the last
    crash (eventual properties typically cannot stabilise while the set
    of alive processes is still shrinking), with at most ``span`` extra
    steps of noise — bounded so that algorithms whose liveness waits on
    stabilization make progress well inside typical horizons.
    """
    crash_times = [t for t in pattern.crash_times.values()]
    earliest = (max(crash_times) + 1) if crash_times else 0
    latest = min(max(earliest, horizon // 2), earliest + span)
    if latest <= earliest:
        return earliest
    return rng.randint(earliest, latest)
