"""Environments: sets of failure patterns.

Formally an *environment* ``E`` is a set of failure patterns (Section 2):
the patterns under which an algorithm of interest is required to work.
The paper's headline results hold "for all environments"; this module
provides the concrete environment families used by the experiments:

* :class:`CrashFreeEnvironment` — no process ever crashes;
* :class:`FCrashEnvironment` — at most ``f`` crashes, arbitrary timing
  (``f = n - 1`` is the wait-free / "any number of crashes" environment);
* :class:`MajorityCorrectEnvironment` — fewer than ``n/2`` crashes, the
  classical setting of [Attiya-Bar-Noy-Dolev] and [Chandra-Toueg];
* :class:`OrderedCrashEnvironment` — "process p never fails before q",
  one of the paper's examples of a non-standard environment;
* :class:`ExplicitEnvironment` — an explicit finite set of patterns.

Each environment doubles as a *sampler*: :meth:`Environment.sample`
draws a pattern from the environment using a seeded RNG, which is how the
simulation harness instantiates runs.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Sequence

from repro.core.failure_pattern import FailurePattern


class Environment(ABC):
    """A set of failure patterns over ``n`` processes, with a sampler."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError(f"need at least one process, got n={n}")
        self.n = n

    @abstractmethod
    def contains(self, pattern: FailurePattern) -> bool:
        """Membership test: is ``pattern`` in this environment?"""

    @abstractmethod
    def sample(self, rng: random.Random, horizon: int) -> FailurePattern:
        """Draw a pattern from the environment.

        ``horizon`` bounds crash times so that crashes land inside the
        finite window a simulation will actually observe.
        """

    def validate(self, pattern: FailurePattern) -> FailurePattern:
        """Return ``pattern`` if it belongs to the environment, else raise."""
        if pattern.n != self.n:
            raise ValueError(
                f"pattern is over {pattern.n} processes, environment over {self.n}"
            )
        if not self.contains(pattern):
            raise ValueError(f"{pattern!r} is not in environment {self!r}")
        return pattern

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n})"


def _sample_crash_times(
    rng: random.Random, victims: Sequence[int], horizon: int
) -> dict[int, int]:
    """Uniform crash times in ``[0, horizon)`` for each victim."""
    upper = max(1, horizon)
    return {pid: rng.randrange(upper) for pid in victims}


class CrashFreeEnvironment(Environment):
    """The environment containing only the failure-free pattern."""

    def contains(self, pattern: FailurePattern) -> bool:
        return pattern.n == self.n and pattern.is_crash_free()

    def sample(self, rng: random.Random, horizon: int) -> FailurePattern:
        return FailurePattern.crash_free(self.n)


class FCrashEnvironment(Environment):
    """At most ``f`` processes crash, at arbitrary times.

    ``f = n - 1`` is the paper's "regardless of the number of faulty
    processes" setting (at least one process must be correct for any of
    the problems to be meaningful).
    """

    def __init__(self, n: int, f: int):
        super().__init__(n)
        if not 0 <= f <= n - 1:
            raise ValueError(f"f must be in [0, n-1], got f={f}, n={n}")
        self.f = f

    def contains(self, pattern: FailurePattern) -> bool:
        return pattern.n == self.n and len(pattern.faulty) <= self.f

    def sample(self, rng: random.Random, horizon: int) -> FailurePattern:
        k = rng.randint(0, self.f)
        victims = rng.sample(range(self.n), k)
        return FailurePattern(self.n, _sample_crash_times(rng, victims, horizon))

    def __repr__(self) -> str:
        return f"FCrashEnvironment(n={self.n}, f={self.f})"


class MajorityCorrectEnvironment(Environment):
    """Fewer than ``n/2`` processes crash — the classical CT/ABD setting."""

    def __init__(self, n: int):
        super().__init__(n)
        self.f = (n - 1) // 2

    def contains(self, pattern: FailurePattern) -> bool:
        return pattern.n == self.n and len(pattern.faulty) <= self.f

    def sample(self, rng: random.Random, horizon: int) -> FailurePattern:
        k = rng.randint(0, self.f)
        victims = rng.sample(range(self.n), k)
        return FailurePattern(self.n, _sample_crash_times(rng, victims, horizon))


class OrderedCrashEnvironment(Environment):
    """Patterns in which ``first`` never fails before ``second``.

    This is the paper's example of an environment that constrains the
    *timing*, not just the count, of crashes: every pattern either keeps
    ``first`` correct, or crashes ``first`` no earlier than ``second``.
    At most ``f`` crashes overall.
    """

    def __init__(self, n: int, first: int, second: int, f: Optional[int] = None):
        super().__init__(n)
        if first == second:
            raise ValueError("first and second must be distinct processes")
        for pid in (first, second):
            if not 0 <= pid < n:
                raise ValueError(f"unknown process {pid}")
        self.first = first
        self.second = second
        self.f = n - 1 if f is None else f

    def contains(self, pattern: FailurePattern) -> bool:
        if pattern.n != self.n or len(pattern.faulty) > self.f:
            return False
        t_first = pattern.crash_time(self.first)
        if t_first is None:
            return True
        t_second = pattern.crash_time(self.second)
        return t_second is not None and t_first >= t_second

    def sample(self, rng: random.Random, horizon: int) -> FailurePattern:
        for _ in range(64):
            k = rng.randint(0, self.f)
            victims = rng.sample(range(self.n), k)
            pattern = FailurePattern(
                self.n, _sample_crash_times(rng, victims, horizon)
            )
            if self.contains(pattern):
                return pattern
        # Fall back to a pattern that trivially satisfies the order.
        return FailurePattern.crash_free(self.n)

    def __repr__(self) -> str:
        return (
            f"OrderedCrashEnvironment(n={self.n}, first={self.first}, "
            f"second={self.second}, f={self.f})"
        )


class ExplicitEnvironment(Environment):
    """An explicit, finite set of failure patterns."""

    def __init__(self, n: int, patterns: Iterable[FailurePattern]):
        super().__init__(n)
        self._patterns: List[FailurePattern] = list(patterns)
        if not self._patterns:
            raise ValueError("an environment must contain at least one pattern")
        for p in self._patterns:
            if p.n != n:
                raise ValueError(f"pattern {p!r} is not over n={n} processes")

    @property
    def patterns(self) -> Sequence[FailurePattern]:
        return tuple(self._patterns)

    def contains(self, pattern: FailurePattern) -> bool:
        return pattern in self._patterns

    def sample(self, rng: random.Random, horizon: int) -> FailurePattern:
        return rng.choice(self._patterns)

    def __repr__(self) -> str:
        return f"ExplicitEnvironment(n={self.n}, |patterns|={len(self._patterns)})"
