"""Atomicity (linearizability) checking for register histories.

The registers of Section 3 must be *atomic* [18] / linearizable [15]:
every operation appears to take effect instantaneously between its
invocation and its response.  This module decides, for a recorded
history of read/write intervals, whether such a linearization exists.

The checker is a Wing–Gong style backtracking search specialised to
register semantics, with memoisation on (set of remaining operations,
current register value).  Pending operations (invoked, never responded
— e.g. cut off by a crash or a blocked quorum) may legally either have
taken effect or not; the search explores both choices.

Worst-case exponential (the problem is NP-complete in general), but
histories produced by the experiment workloads — dozens of operations
per register — check in milliseconds.  ``max_nodes`` guards runaway
searches; exceeding it raises rather than returning a wrong verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.sim.trace import OperationRecord

#: Response time assigned to pending operations for ordering purposes.
INFINITY = float("inf")


class LinearizabilityBudgetExceeded(RuntimeError):
    """The search exceeded its node budget (verdict unknown)."""


@dataclass(frozen=True)
class _Op:
    op_id: int
    kind: str  # "read" | "write"
    value: Any  # written value, or value returned by the read
    invoke: float
    respond: float  # INFINITY when pending

    @property
    def pending(self) -> bool:
        return self.respond == INFINITY


@dataclass
class LinearizabilityVerdict:
    ok: bool
    register: Any = None
    reason: str = ""
    #: Linearization order (op ids) witnessing ok=True for each register.
    witnesses: Dict[Any, List[int]] = None  # type: ignore[assignment]

    def __bool__(self) -> bool:
        return self.ok


def check_linearizable(
    operations: Sequence[OperationRecord],
    initial: Optional[Dict[Any, Any]] = None,
    max_nodes: int = 2_000_000,
) -> LinearizabilityVerdict:
    """Check a multi-register history of read/write operations.

    ``operations`` are trace records with ``kind`` "read" (args =
    (register,), result = returned value) or "write" (args =
    (register, value)).  Registers are independent objects, so the
    history is checked per register.
    """
    initial = dict(initial or {})
    by_register: Dict[Any, List[_Op]] = {}
    for rec in operations:
        if rec.kind == "read":
            reg = rec.args[0]
            value = rec.result
        elif rec.kind == "write":
            reg, value = rec.args[0], rec.args[1]
        else:
            raise ValueError(f"unknown operation kind {rec.kind!r}")
        by_register.setdefault(reg, []).append(
            _Op(
                op_id=rec.op_id,
                kind=rec.kind,
                value=value,
                invoke=rec.invoke_time,
                respond=INFINITY if rec.pending else rec.response_time,
            )
        )

    witnesses: Dict[Any, List[int]] = {}
    for reg, ops in sorted(by_register.items(), key=lambda kv: str(kv[0])):
        witness = _check_register(ops, initial.get(reg), max_nodes)
        if witness is None:
            return LinearizabilityVerdict(
                ok=False,
                register=reg,
                reason=f"no linearization exists for register {reg!r} "
                f"({len(ops)} operations)",
                witnesses={},
            )
        witnesses[reg] = witness
    return LinearizabilityVerdict(ok=True, witnesses=witnesses)


def _check_register(
    ops: List[_Op], initial_value: Any, max_nodes: int
) -> Optional[List[int]]:
    """Search for a linearization of one register's history.

    Returns the witness order (op ids; pending ops that were deemed
    never-effective are omitted) or None.
    """
    ops = sorted(ops, key=lambda o: (o.invoke, o.respond))
    completed = [o for o in ops if not o.pending]
    budget = [max_nodes]
    seen: set[Tuple[FrozenSet[int], Hashable]] = set()

    def minimal_candidates(remaining: List[_Op]) -> List[_Op]:
        """Ops that may be linearized next: nothing remaining responded
        before their invocation."""
        if not remaining:
            return []
        min_respond = min(o.respond for o in remaining)
        return [o for o in remaining if o.invoke <= min_respond]

    def search(
        remaining: Tuple[_Op, ...], current: Any, order: List[int]
    ) -> Optional[List[int]]:
        budget[0] -= 1
        if budget[0] < 0:
            raise LinearizabilityBudgetExceeded(
                f"exceeded {max_nodes} search nodes"
            )
        live = [o for o in remaining if not o.pending]
        if not live:
            # All completed ops linearized; remaining pending ops can
            # all be deemed never-effective.
            return list(order)
        key = (frozenset(o.op_id for o in remaining), _hashable(current))
        if key in seen:
            return None
        seen.add(key)

        for op in minimal_candidates(list(remaining)):
            if op.kind == "read":
                if not _values_equal(op.value, current):
                    continue
                next_value = current
            else:
                next_value = op.value
            rest = tuple(o for o in remaining if o.op_id != op.op_id)
            order.append(op.op_id)
            found = search(rest, next_value, order)
            if found is not None:
                return found
            order.pop()
        # Additionally, a *pending* minimal op may be skipped outright
        # (it never took effect).  Completed ops must be linearized.
        for op in minimal_candidates(list(remaining)):
            if not op.pending:
                continue
            rest = tuple(o for o in remaining if o.op_id != op.op_id)
            found = search(rest, current, order)
            if found is not None:
                return found
        return None

    result = search(tuple(ops), initial_value, [])
    return result


def _values_equal(a: Any, b: Any) -> bool:
    return a == b


def _hashable(value: Any) -> Hashable:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
