"""Atomic registers in message-passing systems (Section 3, Theorem 1).

* :mod:`repro.registers.quorums` — quorum strategies: static majorities
  (the classical ABD assumption) vs. dynamic Σ quorums (the paper's
  generalisation);
* :mod:`repro.registers.abd` — the ABD register emulation [1], written
  against a quorum strategy, so the very same code is "ABD with
  majorities" or "ABD with Σ" (sufficiency half of Theorem 1);
* :mod:`repro.registers.multiwriter` — the classical SWMR→MWMR
  transformation [16, 23] the proof sketch appeals to;
* :mod:`repro.registers.linearizability` — an atomicity checker for
  recorded read/write histories;
* :mod:`repro.registers.workload` — open/closed-loop clients that drive
  registers and record operation intervals;
* :mod:`repro.registers.participants` — causal participant tracking
  (the P_i(k) sets of Figure 1);
* :mod:`repro.registers.extract_sigma` — Figure 1: emulating Σ from any
  register implementation (necessity half of Theorem 1);
* :mod:`repro.registers.snapshot` — atomic snapshots from registers
  (the classical next rung of the shared-memory toolbox Σ unlocks).
"""

from repro.registers.quorums import (
    QuorumStrategy,
    MajorityQuorums,
    SigmaQuorums,
    FixedQuorums,
)
from repro.registers.abd import RegisterBank
from repro.registers.linearizability import check_linearizable
from repro.registers.snapshot import AtomicSnapshot
from repro.registers.workload import RegisterWorkload

__all__ = [
    "QuorumStrategy",
    "MajorityQuorums",
    "SigmaQuorums",
    "FixedQuorums",
    "RegisterBank",
    "AtomicSnapshot",
    "check_linearizable",
    "RegisterWorkload",
]
