"""Register workloads: clients that drive read/write traffic.

A workload component runs alongside a :class:`~repro.registers.abd.RegisterBank`
in each process, issuing operations in a closed loop and recording
invocation/response intervals (via the bank's ``record_ops``), which the
linearizability checker then judges.  Written values are tagged
``(pid, seq)`` so that every write is unique — not required by the
checker, but it makes counterexamples crisp.
"""

from __future__ import annotations

import random
from typing import Any, List, Sequence

from repro.registers.abd import RegisterBank
from repro.sim.process import Component
from repro.sim.rng import derive_seed
from repro.sim.tasklets import WaitSteps


class RegisterWorkload(Component):
    """A closed-loop client: think, operate, repeat.

    Parameters
    ----------
    bank_name:
        Component name of the register bank to drive.
    registers:
        The register names this client touches.
    ops_per_process:
        Operations to issue before going quiescent (0 = run forever).
    read_fraction:
        Probability that an operation is a read.
    think_steps:
        Local steps between operations (gives other traffic room).
    seed:
        Per-process workload RNG seed (derived; independent of the
        system's scheduling randomness).
    """

    name = "workload"

    def __init__(
        self,
        bank_name: str = "reg",
        registers: Sequence[Any] = ("r",),
        ops_per_process: int = 6,
        read_fraction: float = 0.5,
        think_steps: int = 3,
        seed: int = 0,
    ):
        super().__init__()
        self.bank_name = bank_name
        self.registers = list(registers)
        self.ops_per_process = ops_per_process
        self.read_fraction = read_fraction
        self.think_steps = think_steps
        self._seed = seed
        self.results: List[Any] = []
        self.done = False

    def on_start(self) -> None:
        self.spawn(self._run(), name=f"workload@{self.pid}")

    def _run(self):
        rng = random.Random(derive_seed(self._seed, f"workload-{self.pid}"))
        bank: RegisterBank = self._host.component(self.bank_name)  # type: ignore[assignment]
        seq = 0
        issued = 0
        while self.ops_per_process == 0 or issued < self.ops_per_process:
            yield WaitSteps(self.think_steps)
            reg = rng.choice(self.registers)
            if rng.random() < self.read_fraction:
                value = yield from bank.read(reg)
                self.results.append(("read", reg, value))
            else:
                seq += 1
                yield from bank.write(reg, (self.pid, seq))
                self.results.append(("write", reg, (self.pid, seq)))
            issued += 1
        self.done = True


def workload_quiescent(component_name: str = "workload"):
    """Stop predicate: every live process's workload finished.

    Crashed processes are excused — their in-flight operations stay
    pending, which is exactly the case the linearizability checker's
    pending-operation handling exists for.
    """

    def predicate(system) -> bool:
        for pid in system.pattern.correct:
            comp = system.component_at(pid, component_name)
            if not comp.done:  # type: ignore[attr-defined]
                return False
        return True

    return predicate
