"""Causal participant tracking — the P_i(k) sets of Figure 1.

Figure 1 defines the *participants* of process ``p_i``'s ``k``-th write
as the processes with an event causally between the write's beginning
and its termination:

    P_i(k) = { p_j | ∃e event of p_j : wb ≺ e ≺ we }

The paper's implementation sketch ("roughly speaking ...") is followed
literally: while the write is open, the writer tags every outgoing
message with the context ``(i, k)``; any process receiving a tagged
message joins the context (its receive event satisfies ``wb ≺ e``) and
tags all of its subsequent messages with the context plus the set of
participants it has learned.  When the writer terminates the write, the
participants whose membership causally reached back to it — exactly
those with ``e ≺ we`` — form ``P_i(k)``.

The tracker is process-wide middleware: it hooks *all* messages of its
process (the register emulation's, the extraction algorithm's, anyone
else's), because causality does not care which protocol carried it.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Set, Tuple

from repro.sim.network import Message
from repro.sim.process import Component
from repro.sim.trace import DeliveredMessage

WriteKey = Tuple[int, int]  # (writer pid, write counter k)

#: Key under which contexts travel in message metadata.
META_KEY = "write-contexts"


class ParticipantTracker(Component):
    """Middleware tracking open write contexts and their participants."""

    name = "ptrack"

    def __init__(self) -> None:
        super().__init__()
        #: Contexts this process has observed: key -> known participants.
        self._seen: Dict[WriteKey, Set[int]] = {}
        #: Highest write counter this process has *closed* per writer
        #: (itself); reappearing echoes of closed own contexts are
        #: ignored.
        self._closed_k: int = 0

    def on_start(self) -> None:
        self.ctx.add_outgoing_hook(self._tag_outgoing)
        self.ctx.add_incoming_hook(self._merge_incoming)

    # ------------------------------------------------------------------
    # Writer API (used by the Figure 1 extraction)
    # ------------------------------------------------------------------
    def open_write(self, k: int) -> WriteKey:
        """Begin tracking this process's ``k``-th write."""
        key = (self.pid, k)
        self._seen[key] = {self.pid}
        return key

    def close_write(self, key: WriteKey) -> FrozenSet[int]:
        """Terminate the write; returns P_i(k)."""
        participants = frozenset(self._seen.pop(key, {self.pid}))
        if key[0] == self.pid:
            self._closed_k = max(self._closed_k, key[1])
        return participants

    # ------------------------------------------------------------------
    # Middleware hooks
    # ------------------------------------------------------------------
    def _tag_outgoing(self, msg: Message) -> None:
        if self._seen:
            msg.meta[META_KEY] = {
                key: frozenset(parts) for key, parts in self._seen.items()
            }

    def _merge_incoming(
        self, delivered: DeliveredMessage, meta: Dict[str, Any]
    ) -> None:
        contexts = meta.get(META_KEY)
        if not contexts:
            return
        for key, parts in contexts.items():
            writer, k = key
            if writer == self.pid and k <= self._closed_k:
                continue  # echo of a context we already closed
            bucket = self._seen.setdefault(key, set())
            bucket.update(parts)
            bucket.add(self.pid)
        self._garbage_collect()

    def _garbage_collect(self) -> None:
        """Keep only the newest open context per writer — writers issue
        writes sequentially, so older contexts are necessarily closed."""
        newest: Dict[int, int] = {}
        for writer, k in self._seen:
            newest[writer] = max(newest.get(writer, -1), k)
        for key in [kk for kk in self._seen if kk[1] < newest[kk[0]]]:
            del self._seen[key]

    def observed(self, key: WriteKey) -> FrozenSet[int]:
        """Current participant estimate for an open context."""
        return frozenset(self._seen.get(key, ()))
