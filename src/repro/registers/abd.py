"""The ABD atomic register emulation [1], generalised over quorums.

Every process is simultaneously a *replica* (stores a timestamped value
per register) and a *client* (runs read/write operations).  A bank of
named multi-writer multi-reader registers is provided; single-writer
use (each register written by one process, as in Figure 1) can skip the
write's timestamp-discovery phase via ``single_writer=True``.

Operations are generators meant for tasklets::

    value = yield from bank.read("Reg3")
    yield from bank.write("Reg3", value + 1)

Protocol (per operation):

* **write(r, v)** — phase 1 (skipped for single-writer): query a quorum
  for the highest timestamp of ``r``; phase 2: propagate
  ``(ts, v)`` with ``ts`` greater than any seen, wait for a quorum of
  acks.
* **read(r)** — phase 1: query a quorum for timestamped values, pick
  the maximum; phase 2 (the famous write-back): propagate that maximum
  to a quorum before returning, which is what makes reads atomic rather
  than merely regular.

Timestamps are ``(seq, pid)`` pairs ordered lexicographically, so
concurrent writers never forge equal timestamps.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from repro.registers.quorums import QuorumStrategy
from repro.sim.process import Component
from repro.sim.tasklets import WaitUntil

Timestamp = Tuple[int, int]

#: Timestamp below any real write's.
INITIAL_TS: Timestamp = (0, -1)


class RegisterBank(Component):
    """A bank of named atomic registers, emulated over messages.

    Parameters
    ----------
    quorums:
        The :class:`~repro.registers.quorums.QuorumStrategy` that
        decides phase completion — majorities for classical ABD, Σ for
        Theorem 1.
    initial:
        Initial value per register name (default None for all).
    record_ops:
        When true, every read/write is recorded as an
        invocation/response interval in the run trace, feeding the
        linearizability checker.  Internal uses (e.g. the consensus-
        from-registers stack) leave it off.
    """

    name = "reg"

    def __init__(
        self,
        quorums: QuorumStrategy,
        initial: Optional[Dict[Any, Any]] = None,
        record_ops: bool = False,
    ):
        super().__init__()
        self.quorums = quorums
        self.initial = dict(initial or {})
        self.record_ops = record_ops
        self._store: Dict[Any, Tuple[Timestamp, Any]] = {}
        self._next_rid = 0
        self._replies: Dict[int, Dict[int, Any]] = {}
        self._write_seq: Dict[Any, int] = {}
        # Statistics.
        self.reads_done = 0
        self.writes_done = 0

    # ------------------------------------------------------------------
    # Replica side
    # ------------------------------------------------------------------
    def _entry(self, reg: Any) -> Tuple[Timestamp, Any]:
        if reg not in self._store:
            self._store[reg] = (INITIAL_TS, self.initial.get(reg))
        return self._store[reg]

    def on_message(self, sender: int, payload: Any, meta: Dict[str, Any]) -> None:
        kind = payload[0]
        if kind == "RQ":  # read query
            _, reg, rid = payload
            ts, value = self._entry(reg)
            self.send(sender, ("RR", rid, ts, value))
        elif kind == "WQ":  # write / write-back
            _, reg, rid, ts, value = payload
            current_ts, _ = self._entry(reg)
            if ts > current_ts:
                self._store[reg] = (ts, value)
            self.send(sender, ("WA", rid))
        elif kind in ("RR", "WA"):
            rid = payload[1]
            bucket = self._replies.get(rid)
            if bucket is not None:
                bucket[sender] = payload
        else:
            raise ValueError(f"unknown register message {payload!r}")

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def _phase(self, request: Tuple) -> Generator:
        """Broadcast ``request`` (with a fresh rid spliced in) and wait
        for a quorum of replies; returns the reply dict."""
        rid = self._next_rid
        self._next_rid += 1
        self._replies[rid] = {}
        kind, reg, *rest = request
        self.broadcast((kind, reg, rid, *rest))
        replies = self._replies[rid]
        yield WaitUntil(
            lambda: self.quorums.satisfied(set(replies), self.detector(), self.n)
            and (True, dict(replies))
        )
        del self._replies[rid]
        return replies

    def read(self, reg: Any) -> Generator:
        """Tasklet: atomic read — ``value = yield from bank.read(r)``."""
        record = (
            self.ctx.new_operation(self.name, "read", (reg,))
            if self.record_ops
            else None
        )
        replies = yield from self._phase(("RQ", reg))
        ts, value = max(
            ((p[2], p[3]) for p in replies.values()), key=lambda tv: tv[0]
        )
        # Write-back: ensure a quorum stores (ts, value) before returning.
        yield from self._phase(("WQ", reg, ts, value))
        self.reads_done += 1
        if record is not None:
            self.ctx.complete_operation(record, value)
        return value

    def write(self, reg: Any, value: Any, single_writer: bool = False) -> Generator:
        """Tasklet: atomic write — ``yield from bank.write(r, v)``.

        ``single_writer=True`` asserts this process is the register's
        only writer and skips the timestamp-discovery phase, as in the
        original SWMR ABD protocol.
        """
        record = (
            self.ctx.new_operation(self.name, "write", (reg, value))
            if self.record_ops
            else None
        )
        if single_writer:
            seq = self._write_seq.get(reg, 0) + 1
            self._write_seq[reg] = seq
            ts: Timestamp = (seq, self.pid)
        else:
            replies = yield from self._phase(("RQ", reg))
            max_seq = max(p[2][0] for p in replies.values())
            ts = (max_seq + 1, self.pid)
        yield from self._phase(("WQ", reg, ts, value))
        self.writes_done += 1
        if record is not None:
            self.ctx.complete_operation(record, "ok")
        return "ok"
