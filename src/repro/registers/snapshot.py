"""Atomic snapshot objects from registers (Afek et al. style).

The register-emulation results compose upwards: once Σ gives atomic
registers, the whole classical shared-memory toolbox follows.  The
*atomic snapshot* — update your own segment, scan all segments as if
instantaneously — is the canonical next rung, and the structure CHT-
style simulations classically lean on.

Construction (unbounded version of Afek–Attiya–Dolev–Gafni–Merritt–
Shavit):

* ``update(v)`` — embed a fresh scan in the write: write
  ``(seq+1, v, scan())`` to your segment;
* ``scan()`` — repeatedly *double-collect* all segments; if two
  successive collects are identical, that clean collect is the
  snapshot; otherwise, once some process is seen to move **twice**
  during our scan, its embedded scan was taken entirely within our
  interval and can be *borrowed*.

Linearizability argument: a clean double collect holds at a real
instant between the two collects; a borrowed scan recurses into an
embedded scan whose interval nests strictly inside ours.  Termination:
each retry marks at least one mover, and a second move by a marked
process ends the scan, so at most ``n`` retries.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from repro.registers.abd import RegisterBank
from repro.sim.process import Component

Segment = Tuple[int, Any, Optional[Tuple]]  # (seq, value, embedded scan)


class AtomicSnapshot(Component):
    """A single-writer-per-segment atomic snapshot over a register bank.

    Each process owns segment ``pid``; ``update`` and ``scan`` are
    tasklet generators::

        yield from snap.update(value)
        view = yield from snap.scan()      # tuple of per-process values
    """

    name = "snapshot"

    def __init__(self, label: Any = "snap", bank_name: str = "reg",
                 record_ops: bool = False):
        super().__init__()
        self.label = label
        self.bank_name = bank_name
        self.record_ops = record_ops
        self._seq = 0
        self.scans_done = 0
        self.borrowed_scans = 0

    def _bank(self) -> RegisterBank:
        return self._host.component(self.bank_name)  # type: ignore[return-value]

    def _segment_reg(self, j: int) -> Any:
        return (self.label, "seg", j)

    def _collect(self) -> Generator:
        bank = self._bank()
        collect: List[Optional[Segment]] = []
        for j in range(self.n):
            cell = yield from bank.read(self._segment_reg(j))
            collect.append(cell)
        return collect

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def scan(self) -> Generator:
        """Tasklet: an atomic view of all segments' values."""
        record = (
            self.ctx.new_operation(self.name, "scan", (self.label,))
            if self.record_ops
            else None
        )
        moved: set[int] = set()
        previous = yield from self._collect()
        while True:
            current = yield from self._collect()
            if current == previous:
                view = tuple(
                    None if cell is None else cell[1] for cell in current
                )
                break
            for j in range(self.n):
                if current[j] != previous[j]:
                    if j in moved:
                        # j moved twice inside our interval: its latest
                        # write embeds a scan nested within ours.
                        assert current[j] is not None
                        self.borrowed_scans += 1
                        view = current[j][2]
                        if record is not None:
                            self.ctx.complete_operation(record, view)
                        self.scans_done += 1
                        return view
                    moved.add(j)
            previous = current
        if record is not None:
            self.ctx.complete_operation(record, view)
        self.scans_done += 1
        return view

    def update(self, value: Any) -> Generator:
        """Tasklet: publish ``value`` in this process's segment."""
        record = (
            self.ctx.new_operation(self.name, "update", (self.label, value))
            if self.record_ops
            else None
        )
        embedded = yield from self.scan()
        self._seq += 1
        yield from self._bank().write(
            self._segment_reg(self.pid),
            (self._seq, value, embedded),
            single_writer=True,
        )
        if record is not None:
            self.ctx.complete_operation(record, "ok")
        return "ok"
