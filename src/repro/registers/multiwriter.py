"""The classical SWMR→MWMR register transformation [16, 23].

Theorem 1's proof sketch implements a one-reader one-writer register
from Σ and then appeals to "the classical results [16, 23]" for
multi-reader multi-writer registers.  This module reproduces that
classical layer: a multi-writer register built from ``n`` single-writer
registers (one per process, here emulated by a
:class:`~repro.registers.abd.RegisterBank` in single-writer mode).

Construction (unbounded-timestamp variant):

* ``write(v)`` by ``p_i`` — read all ``n`` base registers, compute a
  timestamp greater than every timestamp seen, write
  ``(ts, i, v)`` into p_i's own base register;
* ``read()`` — read all base registers, return the value with the
  lexicographically largest ``(ts, writer)`` pair.

Atomicity of the composite follows from atomicity of the base
registers; the ``(ts, writer)`` pair breaks ties between concurrent
writers deterministically.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from repro.registers.abd import RegisterBank
from repro.sim.process import Component


class MultiWriterRegister(Component):
    """A MWMR register named ``label`` built over SWMR base registers.

    The base registers live in a sibling :class:`RegisterBank`
    (component ``bank_name``) under names ``(label, "base", j)``, each
    written only by process ``j``.
    """

    name = "mwreg"

    def __init__(
        self,
        label: Any = "mw",
        bank_name: str = "reg",
        initial: Any = None,
        record_ops: bool = False,
    ):
        super().__init__()
        self.label = label
        self.bank_name = bank_name
        self.initial = initial
        self.record_ops = record_ops

    def _bank(self) -> RegisterBank:
        return self._host.component(self.bank_name)  # type: ignore[return-value]

    def _base(self, j: int) -> Any:
        return (self.label, "base", j)

    # ------------------------------------------------------------------
    # Operations (tasklet generators)
    # ------------------------------------------------------------------
    def read(self) -> Generator:
        """Tasklet: ``value = yield from mw.read()``."""
        record = (
            self.ctx.new_operation(self.name, "read", (self.label,))
            if self.record_ops
            else None
        )
        best: Optional[Tuple[Tuple[int, int], Any]] = None
        bank = self._bank()
        for j in range(self.n):
            cell = yield from bank.read(self._base(j))
            if cell is None:
                continue
            ts, writer, value = cell
            if best is None or (ts, writer) > best[0]:
                best = ((ts, writer), value)
        value = self.initial if best is None else best[1]
        if record is not None:
            self.ctx.complete_operation(record, value)
        return value

    def write(self, value: Any) -> Generator:
        """Tasklet: ``yield from mw.write(v)``."""
        record = (
            self.ctx.new_operation(self.name, "write", (self.label, value))
            if self.record_ops
            else None
        )
        bank = self._bank()
        max_ts = 0
        for j in range(self.n):
            cell = yield from bank.read(self._base(j))
            if cell is not None:
                max_ts = max(max_ts, cell[0])
        yield from bank.write(
            self._base(self.pid), (max_ts + 1, self.pid, value), single_writer=True
        )
        if record is not None:
            self.ctx.complete_operation(record, "ok")
        return "ok"
