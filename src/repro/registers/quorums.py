"""Quorum strategies for the ABD register emulation.

The ABD algorithm [1] completes each phase after hearing from "enough"
processes.  Classically "enough" is a static majority; the paper's
Theorem 1 replaces majorities with the dynamic quorums of Σ: a phase
completes once the responder set contains *some* currently-output Σ
quorum.  Atomicity needs exactly two things from the strategy, both
direct consequences of Σ's specification:

* any two completed phases heard from intersecting sets (Σ
  Intersection — perpetual, across processes and times);
* phases at correct processes eventually complete (Σ Completeness —
  eventually quorums contain only correct, hence responsive,
  processes).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, FrozenSet, Iterable, Optional, Set

from repro.consensus.paxos import sigma_of


class QuorumStrategy(ABC):
    """Decides when a phase's responder set is sufficient."""

    @abstractmethod
    def satisfied(self, responders: Set[int], detector_value: Any, n: int) -> bool:
        """Whether ``responders`` covers a quorum right now.

        ``detector_value`` is the hosting process's current failure
        detector output (ignored by static strategies).
        """

    #: Whether this strategy requires a failure detector to be wired.
    needs_detector: bool = False


class MajorityQuorums(QuorumStrategy):
    """Static majorities — the classical ABD assumption.

    Correct only in majority-correct environments: with ``n//2 + 1``
    crashes, phases block forever (liveness is lost, never safety),
    which is exactly the behaviour experiment E1 demonstrates.
    """

    def satisfied(self, responders: Set[int], detector_value: Any, n: int) -> bool:
        return len(responders) >= n // 2 + 1


class SigmaQuorums(QuorumStrategy):
    """Dynamic quorums from Σ (Theorem 1's sufficiency direction).

    ``extract`` pulls the Σ component out of the detector value —
    identity for a plain Σ oracle, second component for an (Ω, Σ)
    product (the default handles both).
    """

    needs_detector = True

    def __init__(
        self,
        extract: Callable[[Any], Optional[FrozenSet[int]]] = sigma_of,
    ):
        self.extract = extract

    def satisfied(self, responders: Set[int], detector_value: Any, n: int) -> bool:
        quorum = self.extract(detector_value)
        return quorum is not None and quorum <= responders


class FixedQuorums(QuorumStrategy):
    """An explicit quorum family — any responder superset of a member
    suffices.  Used by tests to force pathological (non-intersecting)
    quorum systems and watch atomicity break, demonstrating that
    Intersection is load-bearing."""

    def __init__(self, quorums: Iterable[Iterable[int]]):
        self.quorums = [frozenset(q) for q in quorums]
        if not self.quorums:
            raise ValueError("need at least one quorum")

    def satisfied(self, responders: Set[int], detector_value: Any, n: int) -> bool:
        return any(q <= responders for q in self.quorums)
