"""Figure 1: extracting Σ from any register implementation.

This is the necessity half of Theorem 1: given *any* algorithm that
implements atomic registers (here: a :class:`~repro.registers.abd.RegisterBank`
over any quorum strategy, possibly using any failure detector — or none
at all in a majority-correct environment), the transformation emulates
the output of Σ.

Transcription of Figure 1, per process ``p_i``:

* ``P_i(0) = Π``; ``E_i`` accumulates the participant sets of p_i's
  completed writes on its own register ``Reg_i``.
* Forever: increment ``k``; write ``(k, E_i)`` into ``Reg_i`` with
  participant tracking open (yielding ``P_i(k)``); set
  ``F_i := P_i(k-1)``; read every ``Reg_j``; for each participant set
  ``X`` in the value read, probe all of ``X`` and wait for at least one
  reply, adding the replier to ``F_i``; finally publish
  ``Σ-output_i := F_i``.

Why it satisfies Σ:

* **Completeness** — eventually all faulty processes have crashed, so
  the participants of new writes (and the probe repliers) are correct;
  Σ-output at a correct process is then built only from correct pids.
* **Intersection** — every process writes (establishing its new
  participant set) *before* reading all registers; the write-before-
  read pattern on atomic registers forces any two published quorums to
  share a participant (the detailed argument is in [7]).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set

from repro.registers.abd import RegisterBank
from repro.registers.participants import ParticipantTracker
from repro.sim.process import Component
from repro.sim.tasklets import WaitUntil


def initial_registers(n: int) -> Dict[Any, Any]:
    """Initial values for Reg_0..Reg_{n-1}: k=0 and E = {Π}.

    Figure 1 line 1-2: ``P_i(0) := Π``, ``E_i := {P_i(0)}`` — the
    registers' initial content reflects that before any write.
    """
    everyone = frozenset(range(n))
    return {("Reg", j): (0, (everyone,)) for j in range(n)}


class SigmaExtraction(Component):
    """The Figure 1 transformation algorithm, one instance per process.

    Parameters
    ----------
    bank_name / tracker_name:
        Component names of the register implementation and the
        participant-tracking middleware.
    annotation_key:
        Where to record the Σ-output history (for the spec checker).
    max_rounds:
        Stop after this many write/read rounds (0 = run to horizon).
    """

    name = "xsigma"

    def __init__(
        self,
        bank_name: str = "reg",
        tracker_name: str = "ptrack",
        annotation_key: str = "sigma-extraction",
        max_rounds: int = 0,
    ):
        super().__init__()
        self.bank_name = bank_name
        self.tracker_name = tracker_name
        self.annotation_key = annotation_key
        self.max_rounds = max_rounds
        self._sigma_output: FrozenSet[int] = frozenset()
        self._probe_acks: Dict[int, Set[int]] = {}
        self._next_probe = 0
        self.rounds_completed = 0
        self._last_recorded: Optional[FrozenSet[int]] = None

    # ------------------------------------------------------------------
    def output(self) -> FrozenSet[int]:
        """The current Σ-output_i."""
        return self._sigma_output

    def on_start(self) -> None:
        self._sigma_output = frozenset(range(self.n))  # line 5: trust all
        self.spawn(self._task1(), name=f"xsigma@{self.pid}")

    def on_step(self) -> None:
        if self._sigma_output == self._last_recorded:
            return
        history = self.ctx.annotation_history(self.annotation_key)
        history.record(self.pid, self.now, self._sigma_output)
        self._last_recorded = self._sigma_output

    # ------------------------------------------------------------------
    # Task 1 (lines 6-17)
    # ------------------------------------------------------------------
    def _task1(self):
        bank: RegisterBank = self._host.component(self.bank_name)  # type: ignore[assignment]
        tracker: ParticipantTracker = self._host.component(self.tracker_name)  # type: ignore[assignment]
        everyone = frozenset(range(self.n))
        ei: List[FrozenSet[int]] = [everyone]  # E_i = {P_i(0)}
        p_prev: FrozenSet[int] = everyone  # P_i(k-1), initially P_i(0)
        k = 0
        while self.max_rounds == 0 or k < self.max_rounds:
            k += 1
            key = tracker.open_write(k)
            yield from bank.write(
                ("Reg", self.pid), (k, tuple(ei)), single_writer=True
            )
            p_k = tracker.close_write(key)
            ei = ei + [p_k]
            fi: Set[int] = set(p_prev)  # line 10: F_i := P_i(k-1)
            for j in range(self.n):
                _, lj = yield from bank.read(("Reg", j))
                for x in lj:
                    replier = yield from self._probe(x)
                    fi.add(replier)
            self._sigma_output = frozenset(fi)  # line 17
            p_prev = p_k
            self.rounds_completed += 1

    def _probe(self, targets: FrozenSet[int]):
        """Lines 14-16: ask everyone in ``targets``, wait for one reply."""
        probe_id = self._next_probe
        self._next_probe += 1
        self._probe_acks[probe_id] = set()
        for q in sorted(targets):
            self.send(q, ("probe", probe_id))
        acks = self._probe_acks[probe_id]
        yield WaitUntil(lambda: acks and (True, min(acks)))
        replier = min(acks)
        del self._probe_acks[probe_id]
        return replier

    # ------------------------------------------------------------------
    # Task 2 (line 18)
    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: Any, meta: Dict[str, Any]) -> None:
        kind = payload[0]
        if kind == "probe":
            self.send(sender, ("probe-ack", payload[1]))
        elif kind == "probe-ack":
            bucket = self._probe_acks.get(payload[1])
            if bucket is not None:
                bucket.add(sender)
        else:
            raise ValueError(f"unknown extraction message {payload!r}")
