"""Reliable broadcast — the diffusion substrate of the classics.

Chandra–Toueg's consensus algorithm [4] decides via *reliable
broadcast*: if any process (correct or not) delivers a message, every
correct process delivers it.  The crash-model implementation is the
classical echo scheme: on first receipt, relay to everyone, then
deliver.  A sender that crashes mid-broadcast may reach only some
processes, but each of those relays to all before delivering, and
relays from correct processes always complete.

:class:`ReliableBroadcastCore` is a nestable protocol core; hosts
register a delivery callback and may broadcast any number of tagged
messages.
"""

from __future__ import annotations

from typing import Any, Callable, List, Set, Tuple

from repro.protocols.base import ProtocolCore

MessageId = Tuple[int, int]  # (origin pid, origin sequence)


class ReliableBroadcastCore(ProtocolCore):
    """Echo-based reliable broadcast for crash failures."""

    def __init__(self) -> None:
        super().__init__()
        self._next_seq = 0
        self._delivered_ids: Set[MessageId] = set()
        self._listeners: List[Callable[[int, Any], None]] = []
        #: Delivered (origin, payload) pairs in delivery order.
        self.delivered: List[Tuple[int, Any]] = []

    def on_deliver(self, listener: Callable[[int, Any], None]) -> None:
        """Register a callback invoked as ``listener(origin, payload)``."""
        self._listeners.append(listener)

    def rbroadcast(self, payload: Any) -> None:
        """Reliably broadcast ``payload`` (delivered to self too)."""
        self._next_seq += 1
        self.broadcast(("RB", (self.pid, self._next_seq), payload))

    def on_message(self, sender: int, payload: Any) -> None:
        kind, msg_id, body = payload
        if kind != "RB":
            raise ValueError(f"unknown broadcast message {payload!r}")
        if msg_id in self._delivered_ids:
            return
        self._delivered_ids.add(msg_id)
        # Relay before delivering: once anyone delivers, its relay to
        # every process is already in flight.
        self.broadcast(("RB", msg_id, body))
        self.delivered.append((msg_id[0], body))
        for listener in self._listeners:
            listener(msg_id[0], body)
