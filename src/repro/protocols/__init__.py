"""Host-agnostic protocol cores.

The paper's reductions *nest* algorithms: NBAC runs a QC algorithm as a
subroutine (Figure 4), QC runs a consensus algorithm (Figure 2), and the
Figure 3 extraction *simulates* whole runs of a QC algorithm inside a
single real process.  To make that literal, protocol logic here is
written as :class:`~repro.protocols.base.ProtocolCore` objects that only
talk to an abstract :class:`~repro.protocols.base.ProtocolContext`
(send/broadcast, failure detector value, tasklet spawn).  The same core
object therefore runs:

* inside a real simulated process
  (:class:`~repro.protocols.base.CoreComponent` adapter),
* as a nested sub-protocol of another core
  (:class:`~repro.protocols.base.SubContext` adapter), or
* inside the CHT virtual runtime of Figure 3
  (:class:`repro.qc.cht.simulation.VirtualRuntime`).
"""

from repro.protocols.base import (
    ProtocolContext,
    ProtocolCore,
    CoreComponent,
    SubContext,
    NOT_DECIDED,
)

__all__ = [
    "ProtocolContext",
    "ProtocolCore",
    "CoreComponent",
    "SubContext",
    "NOT_DECIDED",
]
