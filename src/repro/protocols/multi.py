"""Generic multi-instance protocol hosting.

Several reductions consume an agreement protocol as a repeatable
service: SMR decides a slot per command, the binary→multivalued
transformation runs one binary instance per candidate round, and the
NBAC→FS extraction runs NBAC instances "repeatedly (forever)".
:class:`MultiInstanceCore` hosts an unbounded, lazily-created family of
child cores addressed by instance key; peers' messages for an unknown
instance transparently create a passive instance to receive them.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.protocols.base import NOT_DECIDED, ProtocolCore


class MultiInstanceCore(ProtocolCore):
    """An unbounded family of protocol-core instances.

    Parameters
    ----------
    instance_factory:
        ``instance_factory(tag)`` builds one (unattached) child core.
        Instances must be meaningful when created *passively* — i.e.
        with no local input yet — because a peer's first message may
        arrive before the local user invokes the instance.
    """

    def __init__(self, instance_factory: Callable[[str], ProtocolCore]):
        super().__init__()
        self._instance_factory = instance_factory

    def start(self) -> None:
        pass  # instances are created on demand

    def instance(self, key: Any) -> ProtocolCore:
        """The instance for ``key``, created (and started) on first use."""
        tag = f"i{key}"
        if tag not in self._children:
            self.add_child(tag, self._instance_factory(tag))
        return self._children[tag]

    def decision_of(self, key: Any) -> Any:
        tag = f"i{key}"
        child = self._children.get(tag)
        return child.decision if child is not None else NOT_DECIDED

    def on_message(self, sender: int, payload: Any) -> None:
        if not (isinstance(payload, tuple) and len(payload) == 2):
            raise ValueError(f"malformed multi-instance payload {payload!r}")
        tag, inner = payload
        if not (isinstance(tag, str) and tag.startswith("i")):
            raise ValueError(f"unknown multi-instance tag {tag!r}")
        if tag not in self._children:
            self.add_child(tag, self._instance_factory(tag))
        self._children[tag].on_message(sender, inner)
