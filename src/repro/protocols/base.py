"""Protocol cores and their execution contexts.

A :class:`ProtocolCore` is an algorithm in the paper's sense: a
transition automaton plus tasklets, talking to the outside world only
through a :class:`ProtocolContext`.  Three context implementations
exist:

* :class:`ComponentContext` — a real simulated process (wrapped by
  :class:`CoreComponent`);
* :class:`SubContext` — a parent core hosting a child core, with
  payloads wrapped in a routing tag (how Figure 4's NBAC hosts a QC
  instance which hosts a consensus instance);
* ``VirtualContext`` in :mod:`repro.qc.cht.simulation` — a simulated
  process inside the Figure 3 extraction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Generator, List

from repro.sim.process import Component
from repro.sim.tasklets import WaitUntil


class _NotDecided:
    _instance = None

    def __new__(cls) -> "_NotDecided":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<not decided>"


NOT_DECIDED = _NotDecided()


class ProtocolContext(ABC):
    """Everything a protocol core may do to the outside world."""

    pid: int
    n: int

    @abstractmethod
    def send(self, dest: int, payload: Any) -> None: ...

    @abstractmethod
    def broadcast(self, payload: Any) -> None: ...

    @abstractmethod
    def detector(self) -> Any:
        """The current failure detector value of this process's module."""

    @abstractmethod
    def spawn(self, gen: Generator, name: str = "") -> None: ...


class ProtocolCore(ABC):
    """A nestable, host-agnostic algorithm.

    Lifecycle: construct → :meth:`attach` (context injection) →
    :meth:`start` (once, at the process's first step) →
    :meth:`on_message` for each received payload.  Cores that terminate
    with an irrevocable outcome call :meth:`decide`.
    """

    def __init__(self) -> None:
        self.ctx: ProtocolContext = None  # type: ignore[assignment]
        self.decision: Any = NOT_DECIDED
        self._decide_listeners: List[Callable[[Any], None]] = []
        self._children: Dict[str, "ProtocolCore"] = {}

    # -- lifecycle ---------------------------------------------------------
    def attach(self, ctx: ProtocolContext) -> None:
        self.ctx = ctx

    def start(self) -> None:
        """Called once before any message is delivered to this core."""

    @abstractmethod
    def on_message(self, sender: int, payload: Any) -> None: ...

    # -- decisions -----------------------------------------------------------
    @property
    def decided(self) -> bool:
        return self.decision is not NOT_DECIDED

    def decide(self, value: Any) -> None:
        """Record this core's irrevocable decision (idempotent-hostile:
        deciding twice is a bug and raises)."""
        if self.decided:
            if self.decision == value:
                return
            raise RuntimeError(
                f"{type(self).__name__} at {self.ctx.pid} decided twice: "
                f"{self.decision!r} then {value!r}"
            )
        self.decision = value
        for listener in self._decide_listeners:
            listener(value)

    def on_decide(self, listener: Callable[[Any], None]) -> None:
        self._decide_listeners.append(listener)
        if self.decided:
            listener(self.decision)

    def wait_decided(self) -> WaitUntil:
        """Tasklet wait for this core's decision.

        The decision value itself is sent back into the waiting
        generator; a falsy decision value (0, Abort-like sentinels) is
        wrapped so the wait still fires.
        """
        return WaitUntil(
            lambda: (True, self.decision) if self.decided else False
        )

    # -- nesting -----------------------------------------------------------
    def add_child(self, tag: str, child: "ProtocolCore") -> "ProtocolCore":
        """Host ``child`` under routing tag ``tag`` and start it.

        Must be called from :meth:`start` or later (the context must be
        attached).  Incoming payloads of the form ``(tag, inner)`` must
        be forwarded via :meth:`route_to_children`.
        """
        if tag in self._children:
            raise ValueError(f"duplicate child tag {tag!r}")
        child.attach(SubContext(self.ctx, tag))
        self._children[tag] = child
        child.start()
        return child

    def child(self, tag: str) -> "ProtocolCore":
        return self._children[tag]

    def route_to_children(self, sender: int, payload: Any) -> bool:
        """Dispatch ``(tag, inner)`` payloads to hosted children.

        Returns True when the payload was consumed by a child.
        """
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] in self._children
        ):
            self._children[payload[0]].on_message(sender, payload[1])
            return True
        return False

    # -- conveniences --------------------------------------------------------
    @property
    def pid(self) -> int:
        return self.ctx.pid

    @property
    def n(self) -> int:
        return self.ctx.n

    def send(self, dest: int, payload: Any) -> None:
        self.ctx.send(dest, payload)

    def broadcast(self, payload: Any) -> None:
        self.ctx.broadcast(payload)

    def detector(self) -> Any:
        return self.ctx.detector()

    def spawn(self, gen: Generator, name: str = "") -> None:
        self.ctx.spawn(gen, name)


class SubContext(ProtocolContext):
    """Context a parent core gives to a hosted child: same process, same
    detector, payloads wrapped as ``(tag, inner)``."""

    def __init__(self, parent: ProtocolContext, tag: str):
        self.parent = parent
        self.tag = tag
        self.pid = parent.pid
        self.n = parent.n

    def send(self, dest: int, payload: Any) -> None:
        self.parent.send(dest, (self.tag, payload))

    def broadcast(self, payload: Any) -> None:
        self.parent.broadcast((self.tag, payload))

    def detector(self) -> Any:
        return self.parent.detector()

    def spawn(self, gen: Generator, name: str = "") -> None:
        self.parent.spawn(gen, name or self.tag)


class ComponentContext(ProtocolContext):
    """Adapter: a real :class:`~repro.sim.process.Component` as context."""

    def __init__(self, component: Component):
        self.component = component
        self.pid = component.pid
        self.n = component.n

    def send(self, dest: int, payload: Any) -> None:
        self.component.send(dest, payload)

    def broadcast(self, payload: Any) -> None:
        self.component.broadcast(payload)

    def detector(self) -> Any:
        return self.component.detector()

    def spawn(self, gen: Generator, name: str = "") -> None:
        self.component.spawn(gen, name)


class CoreComponent(Component):
    """Hosts a root :class:`ProtocolCore` inside a real process.

    The core's decision is recorded in the run trace under this
    component's name, which is what the problem-level property checkers
    consume.
    """

    name = "core"

    def __init__(self, core: ProtocolCore):
        super().__init__()
        self.core = core

    def on_start(self) -> None:
        self.core.attach(ComponentContext(self))
        self.core.on_decide(lambda value: self.decide(value))
        self.core.start()

    def on_message(self, sender: int, payload: Any, meta: Dict[str, Any]) -> None:
        self.core.on_message(sender, payload)

    def output(self) -> Any:
        """Delegate to the core's emulated-detector output (cores that
        extract detectors — Figures 1 and 3, FS-from-NBAC — expose one)."""
        return self.core.output()  # type: ignore[attr-defined]
