"""Ω from heartbeats with adaptive timeouts.

Output: the smallest process id not currently suspected (the process
itself is never suspected by itself).  Under partial synchrony —
which the simulator's fair schedulers and bounded-in-distribution
delays provide on long runs — adaptive timeouts eventually stop
falsely suspecting correct processes, while crashed processes stay
suspected forever, so all correct processes converge to the same
smallest correct id.

This grounds the paper's composition practically: in a
majority-correct, eventually-well-behaved system, both halves of
(Ω, Σ) are implementable ex nihilo (this module and
:mod:`repro.ex_nihilo.sigma_majority`), and the consensus algorithm of
Corollary 2 runs with no oracle at all — experiment E9.
"""

from __future__ import annotations

from repro.ex_nihilo.heartbeats import HeartbeatMonitor


class OmegaFromHeartbeats(HeartbeatMonitor):
    """The eventual-leader election over heartbeats."""

    name = "omega-impl"

    def output(self) -> int:
        """The smallest unsuspected process id."""
        for q in range(self.n):
            if q == self.pid or q not in self._suspected:
                return q
        return self.pid  # unreachable: self is never suspected
