"""Composing implemented detectors into product modules.

The (Ω, Σ) consensus algorithm consumes one detector value per step.
When both components are *implemented* (heartbeat Ω, join-quorum Σ)
rather than sampled from an oracle, something has to assemble their
outputs into the product value — that is :class:`ComposedDetector`: a
component whose ``output()`` is the tuple of its sources' outputs.

With it, the classical result is recovered with no oracle anywhere in
the system: under a correct majority and benign timing,

    heartbeats → Ω,  join-quorums → Σ,  (Ω, Σ) → consensus

runs end to end on messages alone (test
``tests/ex_nihilo/test_full_stack.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

from repro.sim.process import Component


class ComposedDetector(Component):
    """``output()`` = tuple of sibling components' ``output()``s."""

    name = "composed-detector"

    def __init__(self, sources: Sequence[str]):
        super().__init__()
        if not sources:
            raise ValueError("need at least one source component")
        self.sources = list(sources)

    def output(self) -> Tuple[Any, ...]:
        values = tuple(
            self._host.component(name).output()  # type: ignore[attr-defined]
            for name in self.sources
        )
        return values if len(values) > 1 else values[0]

    def on_message(self, sender: int, payload: Any, meta: Dict[str, Any]) -> None:
        raise RuntimeError("the composed detector exchanges no messages")
