"""Ex-nihilo failure detector implementations.

The weakest-detector results are sharpened by what can be built *with
no detector at all* under extra assumptions:

* :mod:`repro.ex_nihilo.sigma_majority` — the paper's §1 observation:
  in majority-correct environments Σ is free ("each process
  periodically sends join-quorum messages, and takes as its present
  quorum any majority of processes that respond") — which is why
  (Ω, Σ) degenerates to the classical Ω result there;
* :mod:`repro.ex_nihilo.omega_heartbeat` — Ω from heartbeats with
  adaptive timeouts, the classic partial-synchrony construction;
* :mod:`repro.ex_nihilo.fs_heartbeat` — an FS *attempt* from heartbeats
  with a fixed timeout: its perpetual Accuracy only holds under timing
  assumptions, and the experiment suite shows delay spikes breaking it
  — evidence for why FS is irreducible in the asynchronous model;
* :mod:`repro.ex_nihilo.perfect_synchronous` — likewise for P.
"""

from repro.ex_nihilo.sigma_majority import SigmaFromMajority
from repro.ex_nihilo.omega_heartbeat import OmegaFromHeartbeats
from repro.ex_nihilo.fs_heartbeat import FSFromHeartbeats
from repro.ex_nihilo.perfect_synchronous import PerfectFromTimeouts

__all__ = [
    "SigmaFromMajority",
    "OmegaFromHeartbeats",
    "FSFromHeartbeats",
    "PerfectFromTimeouts",
]
