"""Σ for free under a correct majority (§1 of the paper).

"In such environments, we can easily implement Σ ex nihilo as follows:
each process periodically sends 'join-quorum' messages, and takes as
its present quorum any majority of processes that respond to that
message.  Thus, to implement registers in environments with a majority
of correct processes we 'need' something that we can get for free!"

* **Intersection** — every emitted quorum is a majority of Π, and any
  two majorities intersect, at all times, across all processes.
* **Completeness** — a crashed process stops responding, so once all
  faulty processes have crashed, every completed join round's majority
  consists of processes alive at response time; in a majority-correct
  environment rounds keep completing and eventually every responder is
  correct.

Outside majority-correct environments the implementation does not
*violate* Σ — it simply stops updating (no majority responds), and its
last output may retain faulty processes forever, failing Completeness.
Experiment E8 shows exactly that failure mode.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Set

from repro.sim.process import Component
from repro.sim.tasklets import WaitSteps, WaitUntil


class SigmaFromMajority(Component):
    """The join-quorum implementation of Σ.

    Parameters
    ----------
    period:
        Local steps between join rounds.
    """

    name = "sigma-impl"

    def __init__(self, period: int = 6):
        super().__init__()
        self.period = period
        self._output: FrozenSet[int] = frozenset()
        self._round = 0
        self._responders: Dict[int, Set[int]] = {}
        self.rounds_completed = 0

    def output(self) -> FrozenSet[int]:
        """The current quorum (initially all of Π)."""
        return self._output

    def on_start(self) -> None:
        self._output = frozenset(range(self.n))
        self.spawn(self._join_loop(), name=f"sigma-join@{self.pid}")

    def on_message(self, sender: int, payload: Any, meta: Dict[str, Any]) -> None:
        kind = payload[0]
        if kind == "join":
            self.send(sender, ("join-ack", payload[1]))
        elif kind == "join-ack":
            bucket = self._responders.get(payload[1])
            if bucket is not None:
                bucket.add(sender)
        else:
            raise ValueError(f"unknown join message {payload!r}")

    def _join_loop(self):
        majority = self.n // 2 + 1
        while True:
            self._round += 1
            rnd = self._round
            self._responders[rnd] = set()
            self.broadcast(("join", rnd))
            responders = self._responders[rnd]
            collected = yield WaitUntil(
                lambda: len(responders) >= majority and (True, frozenset(responders))
            )
            self._output = collected[1]
            self.rounds_completed += 1
            del self._responders[rnd]
            yield WaitSteps(self.period)
