"""An FS *attempt* from heartbeats — and why it cannot be perfect.

FS's Accuracy is *perpetual*: red may never appear before a real
failure.  A timeout-based implementation turns red on the first
suspicion, so a single delay spike longer than the timeout forges a red
with no failure — no finite timeout is safe in an asynchronous system.
That irreducibility is precisely why NBAC's weakest detector (Ψ, FS)
keeps FS as an explicit oracle component.

The implementation is still useful in both directions:

* under benign timing (uniform short delays) and a conservative
  timeout, it behaves as FS — red appears only after a crash, and
  every correct process eventually turns red (a crashed process's
  heartbeats stop);
* under :class:`~repro.sim.network.SpikeDelay` the experiment suite
  measures accuracy-violation rates as the timeout shrinks (E9).

Note the output is *sticky*: once red, forever red (FS completeness
requires permanence, and the repeated-NBAC emulation of
:mod:`repro.nbac.to_fs` has the same one-way behaviour).
"""

from __future__ import annotations

from repro.core.detector import GREEN, RED
from repro.ex_nihilo.heartbeats import HeartbeatMonitor


class FSFromHeartbeats(HeartbeatMonitor):
    """The failure-signal attempt: red on first suspicion, forever."""

    name = "fs-impl"

    def __init__(self, period: int = 4, initial_timeout: int = 120):
        # Non-adaptive: FS never un-signals, so doubling is pointless.
        super().__init__(
            period=period, initial_timeout=initial_timeout, adaptive=False
        )
        self._output = GREEN
        #: Local step index at which red was first output (experiments).
        self.red_at_tick = None

    def output(self) -> str:
        return self._output

    def on_suspect(self, peer: int) -> None:
        if self._output == GREEN:
            self._output = RED
            self.red_at_tick = self._ticks
