"""Shared heartbeat/suspicion machinery for timing-based detectors.

Every process broadcasts a heartbeat every ``period`` local steps and
monitors how many of its *own* steps have elapsed since each peer was
last heard from.  A peer is suspected when that gap exceeds a per-peer
timeout; hearing from a suspected peer unsuspects it and — in adaptive
mode — doubles its timeout (the classic partial-synchrony trick: after
finitely many false suspicions the timeout exceeds the true skew).

In a *fully* asynchronous system no timeout is safe, which is exactly
why FS and P are irreducible oracles; the experiments use these
implementations both ways — demonstrating stabilisation under benign
timing and accuracy violations under delay spikes.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Set

from repro.sim.process import Component


class HeartbeatMonitor(Component):
    """Base component: heartbeats out, suspicion bookkeeping in.

    Parameters
    ----------
    period:
        Local steps between heartbeat broadcasts.
    initial_timeout:
        Initial per-peer timeout, in local steps.
    adaptive:
        Whether to double a peer's timeout on a false suspicion.
    """

    name = "hb"

    def __init__(
        self,
        period: int = 4,
        initial_timeout: int = 60,
        adaptive: bool = True,
    ):
        super().__init__()
        self.period = period
        self.initial_timeout = initial_timeout
        self.adaptive = adaptive
        self._since_heard: Dict[int, int] = {}
        self._timeout: Dict[int, int] = {}
        self._suspected: Set[int] = set()
        self._ticks = 0
        #: Count of unsuspect events (false suspicions), for experiments.
        self.false_suspicions = 0

    # -- hooks for subclasses -------------------------------------------
    def on_suspect(self, peer: int) -> None:
        """Called when ``peer`` becomes suspected."""

    def on_unsuspect(self, peer: int) -> None:
        """Called when a suspected ``peer`` is heard from again."""

    @property
    def suspected(self) -> FrozenSet[int]:
        return frozenset(self._suspected)

    # -- machinery ---------------------------------------------------------
    def on_start(self) -> None:
        for q in range(self.n):
            if q != self.pid:
                self._since_heard[q] = 0
                self._timeout[q] = self.initial_timeout

    def on_message(self, sender: int, payload: Any, meta: Dict[str, Any]) -> None:
        if payload != "hb":
            raise ValueError(f"unknown heartbeat message {payload!r}")
        self._since_heard[sender] = 0
        if sender in self._suspected:
            self._suspected.discard(sender)
            self.false_suspicions += 1
            if self.adaptive:
                self._timeout[sender] *= 2
            self.on_unsuspect(sender)

    def on_step(self) -> None:
        self._ticks += 1
        if self._ticks % self.period == 0:
            self.broadcast("hb", include_self=False)
        for q in list(self._since_heard):
            self._since_heard[q] += 1
            if (
                q not in self._suspected
                and self._since_heard[q] > self._timeout[q]
            ):
                self._suspected.add(q)
                self.on_suspect(q)
