"""A perfect-detector attempt from timeouts.

P's strong accuracy — never suspect a process before it crashes — is
perpetual, so like FS it cannot be implemented in a truly asynchronous
system: any fixed timeout can be outwaited by a slow scheduler or a
delay spike.  Under a *synchrony assumption* (delays bounded by a known
constant, which the simulator's :class:`~repro.sim.network.ConstantDelay`
or narrow :class:`~repro.sim.network.UniformDelay` provide), a
sufficiently conservative timeout yields P in practice.

The experiment suite (E9) uses this implementation in both regimes:
measuring zero accuracy violations under the synchrony assumption, and
counting forged suspicions as delays break the assumption — the
executable version of "P is strictly stronger than anything
implementable ex nihilo".
"""

from __future__ import annotations

from typing import FrozenSet

from repro.ex_nihilo.heartbeats import HeartbeatMonitor


class PerfectFromTimeouts(HeartbeatMonitor):
    """P under a timing assumption: suspected = timed out, permanently.

    Unlike the adaptive Ω monitor, suspicions here are *sticky* (P's
    output is meant to be monotone: once crashed, forever suspected) and
    the timeout is fixed — adaptivity cannot help P, because a single
    pre-adaptation false suspicion already violates strong accuracy.
    """

    name = "p-impl"

    def __init__(self, period: int = 4, timeout: int = 150):
        super().__init__(period=period, initial_timeout=timeout, adaptive=False)
        self._ever_suspected: set[int] = set()

    def output(self) -> FrozenSet[int]:
        return frozenset(self._ever_suspected)

    def on_suspect(self, peer: int) -> None:
        self._ever_suspected.add(peer)
