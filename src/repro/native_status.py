"""``python -m repro.native_status`` — is the compiled core loaded?

Prints the :func:`repro._native.status` report as JSON and exits 0 when
the extension is available, 1 when the process is running on the
pure-Python fallbacks.  CI uses the exit code to fail builds where the
extension silently failed to compile; humans use the ``reason`` field
(``REPRO_NATIVE=0``, missing ``build_ext``, import error) to see why.
"""

from __future__ import annotations

import json
import sys

from repro import _native


def main() -> int:
    report = _native.status()
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["available"] else 1


if __name__ == "__main__":
    sys.exit(main())
