"""Hypothesis strategies for property-testing against the model.

Downstream users building algorithms on this library need the same
generators our own suite uses: random failure patterns, environments,
and fully-wired seeded runs.  Importing this module requires
``hypothesis`` (a test-time dependency; the core library itself has
none).

Example::

    from hypothesis import given
    from repro.testing import failure_patterns

    @given(pattern=failure_patterns(n=4))
    def test_my_algorithm_is_safe(pattern):
        ...
"""

from __future__ import annotations

from typing import Optional

from hypothesis import strategies as st

from repro.core.environment import (
    CrashFreeEnvironment,
    FCrashEnvironment,
    MajorityCorrectEnvironment,
)
from repro.core.failure_pattern import FailurePattern


@st.composite
def failure_patterns(
    draw,
    n: int = 4,
    max_crashes: Optional[int] = None,
    max_crash_time: int = 300,
):
    """Patterns over ``n`` processes with up to ``max_crashes`` crashes
    (default ``n - 1`` — always at least one correct process)."""
    limit = (n - 1) if max_crashes is None else min(max_crashes, n - 1)
    k = draw(st.integers(min_value=0, max_value=limit))
    victims = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    crash_times = {
        pid: draw(st.integers(min_value=0, max_value=max_crash_time))
        for pid in victims
    }
    return FailurePattern(n, crash_times)


@st.composite
def majority_correct_patterns(draw, n: int = 5, max_crash_time: int = 300):
    """Patterns keeping a strict majority of ``n`` processes correct."""
    return draw(
        failure_patterns(
            n=n, max_crashes=(n - 1) // 2, max_crash_time=max_crash_time
        )
    )


def environments(n: int = 4) -> st.SearchStrategy:
    """One of the standard environment families over ``n`` processes."""
    return st.sampled_from(
        [
            CrashFreeEnvironment(n),
            MajorityCorrectEnvironment(n),
            FCrashEnvironment(n, n - 1),
        ]
    )


def seeds() -> st.SearchStrategy[int]:
    """Root seeds for deterministic system runs."""
    return st.integers(min_value=0, max_value=2**32 - 1)


@st.composite
def binary_proposals(draw, n: int = 4):
    """A per-process dict of 0/1 proposals."""
    return {
        pid: draw(st.integers(min_value=0, max_value=1)) for pid in range(n)
    }
