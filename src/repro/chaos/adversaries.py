"""In-model delivery, delay and scheduling adversaries.

Each class here plugs into an existing simulator knob — the
:class:`~repro.sim.network.DeliveryPolicy`, the
:class:`~repro.sim.network.DelayModel` or the
:class:`~repro.sim.scheduler.Scheduler` — and stays inside the model's
latitude: links stay reliable (duplication adds deliveries, never
removes one), delays stay finite, and starvation windows close.  The
single exception, :class:`NewestFirstDelivery`, is honestly marked
``fair = False`` so property checkers drop the Termination claim.

The ``make_*`` functions at the bottom are the module-level factories
that :class:`~repro.runner.spec.RunSpec` cells reference through
:func:`repro.runner.call`: stateful adversaries must be built fresh in
the worker, not pickled mid-state.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.chaos.knobs import ChaosKnobs
from repro.sim.network import (
    DelayModel,
    DeliveryPolicy,
    Message,
    OldestFirstDelivery,
    UniformDelay,
)
from repro.sim.partition import TransientPartition
from repro.sim.scheduler import (
    RandomScheduler,
    Scheduler,
    WindowedStarvationScheduler,
)


class NewestFirstDelivery(DeliveryPolicy):
    """Always deliver the *youngest* ready message.

    Under sustained traffic an old message can be postponed forever, so
    this adversary is unfair: safety must survive it, Termination need
    not.  It maximally stresses stale-state handling (old ballots, old
    acks arriving after the world moved on — here they arrive *before*).
    """

    fair = False

    def choose(
        self, ready: List[Message], now: int, rng: random.Random
    ) -> Optional[Message]:
        return max(ready, key=lambda m: (m.send_time, m.msg_id))


class DuplicatingDelivery(DeliveryPolicy):
    """Re-deliver messages with bounded probability and depth.

    Wraps an inner policy for *selection*; on each actual delivery, with
    probability ``probability``, a copy is re-enqueued to become ready
    1..``max_delay`` ticks later.  ``max_depth`` bounds the generations
    a single send can spawn (the copy inherits a ``dup_depth`` meta
    counter), so the buffer cannot grow without bound.  Links stay
    reliable — duplication only ever *adds* deliveries — hence
    fairness is inherited from the inner policy.
    """

    def __init__(
        self,
        inner: Optional[DeliveryPolicy] = None,
        probability: float = 0.2,
        max_delay: int = 12,
        max_depth: int = 2,
    ):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.inner = inner or OldestFirstDelivery()
        self.fair = self.inner.fair
        # Selection is delegated wholesale, so the indexed network may
        # use its oldest-first fast path whenever the inner policy does;
        # duplicate_after fires on either path.
        self.oldest_first_selection = self.inner.oldest_first_selection
        self.probability = probability
        self.max_delay = max_delay
        self.max_depth = max_depth

    def choose(
        self, ready: List[Message], now: int, rng: random.Random
    ) -> Optional[Message]:
        return self.inner.choose(ready, now, rng)

    def duplicate_after(
        self, msg: Message, now: int, rng: random.Random
    ) -> Optional[int]:
        depth = msg.meta.get("dup_depth", 0)
        if depth >= self.max_depth or rng.random() >= self.probability:
            return None
        # The network copies msg.meta *after* this hook, so the bumped
        # counter lands on the duplicate, not just the delivered original.
        msg.meta["dup_depth"] = depth + 1
        return rng.randint(1, self.max_delay)


class BurstDelay(DelayModel):
    """Periodic congestion: every ``period`` sends, the first
    ``burst_len`` of them take ``extra`` additional ticks.

    Stateful (a send counter), so specs must construct it worker-side
    via :func:`make_delay` — never share one instance across runs.
    Delays stay finite, so the model's reliability is intact; what the
    burst buys the adversary is sudden large skew between "the quorum I
    heard from" and "the messages still in flight".
    """

    def __init__(
        self,
        period: int,
        burst_len: int,
        extra: int,
        lo: int = 1,
        hi: int = 8,
    ):
        if period < 1 or not 0 <= burst_len <= period:
            raise ValueError("need period >= 1 and 0 <= burst_len <= period")
        if extra < 0:
            raise ValueError("extra must be >= 0")
        self.period = period
        self.burst_len = burst_len
        self.extra = extra
        self.base = UniformDelay(lo, hi)
        self._sends = 0

    def sample(self, rng: random.Random, sender: int, dest: int) -> int:
        slot = self._sends % self.period
        self._sends += 1
        delay = self.base.sample(rng, sender, dest)
        if slot < self.burst_len:
            delay += self.extra
        return delay


# ----------------------------------------------------------------------
# Spec-side factories (referenced via repro.runner.call)
# ----------------------------------------------------------------------
def make_delivery(knobs: ChaosKnobs) -> DeliveryPolicy:
    """The delivery policy a knobs value asks for.

    An active transient-partition window takes over message *selection*
    (it is itself an ordering policy: oldest-first among passable
    messages); duplication then wraps whichever selector is in force.
    """
    base: DeliveryPolicy
    if knobs.partitioned:
        base = TransientPartition(
            [set(g) for g in knobs.partition_groups],
            start=knobs.partition_start,
            end=knobs.partition_end,
        )
    elif knobs.reorder:
        base = NewestFirstDelivery()
    else:
        base = OldestFirstDelivery()
    if knobs.dup_probability > 0:
        return DuplicatingDelivery(
            inner=base,
            probability=knobs.dup_probability,
            max_delay=knobs.dup_max_delay,
            max_depth=knobs.dup_max_depth,
        )
    return base


def make_delay(knobs: ChaosKnobs) -> DelayModel:
    """The delay model a knobs value asks for."""
    if knobs.burst_period > 0:
        return BurstDelay(
            period=knobs.burst_period,
            burst_len=knobs.burst_len,
            extra=knobs.burst_extra,
            lo=knobs.delay_lo,
            hi=knobs.delay_hi,
        )
    return UniformDelay(knobs.delay_lo, knobs.delay_hi)


def make_scheduler(knobs: ChaosKnobs) -> Scheduler:
    """The scheduler a knobs value asks for."""
    if knobs.starve_windows:
        return WindowedStarvationScheduler(knobs.starve_windows)
    return RandomScheduler()
