"""Worker-killer chaos injector for the dynamic explorer frontier.

The other chaos adversaries attack the *simulated* system; this one
attacks the checker itself.  :class:`WorkerKiller` SIGKILLs frontier
worker processes mid-shard — no ``atexit``, no ``finally``, no chance
to release a lease — which is exactly the crash model the paper's
failure detectors abstract (and the crash model
:mod:`repro.explore.frontierd`'s lease recovery must survive).  The
``frontier-chaos-smoke`` CI job and ``tests/explore/test_frontierd.py``
drive the frontier under this injector and assert the merged result is
still complete and byte-identical to the serial walk.

Only workers *currently holding a lease* are eligible: killing an idle
worker tests nothing (the coordinator respawns it and no state is in
flight), while killing a lease holder forces the whole recovery path —
heartbeat silence, lease expiry, requeue, and a retry by a different
process.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Iterable, List


class WorkerKiller:
    """SIGKILL lease-holding frontier workers at a Poisson-ish rate.

    ``rate`` is the expected number of kills per worker per second of
    leased work; each poll the per-worker kill probability over the
    elapsed ``dt`` is ``1 - exp(-rate * dt)``, so the schedule is
    insensitive to how often the coordinator polls.  Seeded, so a test
    failure's kill schedule is as reproducible as wall-clock timing
    allows.
    """

    def __init__(self, rate: float, seed: int = 0):
        self.rate = max(0.0, rate)
        self.rng = random.Random(seed)
        self.kills: List[str] = []

    def maybe_kill(
        self,
        processes: Dict[str, Any],
        leased: Iterable[str],
        dt: float,
    ) -> List[str]:
        """Roll the dice for every lease-holding live worker.

        ``processes`` maps worker name → process handle (anything with
        ``is_alive()`` and ``kill()``); ``leased`` names the workers
        currently holding leases.  Returns the names killed this poll.
        """
        if self.rate <= 0.0 or dt <= 0.0:
            return []
        probability = 1.0 - math.exp(-self.rate * dt)
        killed = []
        for name in leased:
            process = processes.get(name)
            if process is None or not process.is_alive():
                continue
            if self.rng.random() < probability:
                process.kill()
                killed.append(name)
        self.kills.extend(killed)
        return killed
