"""The chaos fuzz driver: generate cases, run campaigns, judge, shrink.

One *round* of fuzzing draws, per target, a random-but-replayable
:class:`~repro.chaos.knobs.ChaosKnobs` and an in-environment crash
schedule, pins them into a :class:`~repro.chaos.targets.FuzzCase`, and
ships every case through :class:`repro.runner.Campaign` (so fuzzing
gets the hardened pool, per-job timeouts and quarantine for free).
Verdicts come from the targets' property hooks; any *safety* violation
is shrunk (:mod:`repro.chaos.shrink`) and frozen as a replayable JSON
artifact (:mod:`repro.chaos.artifact`).  Liveness misses are reported
but non-fatal: a finite horizon under heavy-but-fair chaos is allowed
to run out of time, and unfair knobs void the Termination claim
entirely.

All randomness flows through the named RNG streams of
:class:`repro.sim.rng.RngStreams`, so a (seed, round, target) triple
always regenerates the identical case.

CLI::

    python -m repro.chaos.fuzz --rounds 5 --seed 0        # clean targets
    python -m repro.chaos.fuzz --targets submajority      # the mutant
    python -m repro.chaos.fuzz --smoke                    # CI budget
    python -m repro.chaos.fuzz --replay artifact.json     # re-run a witness
"""

from __future__ import annotations

import argparse
import random
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.artifact import load_artifact, replay, write_artifact
from repro.chaos.crashes import MODES, CrashScheduleFuzzer
from repro.chaos.knobs import ChaosKnobs
from repro.chaos.shrink import shrink_case
from repro.chaos.targets import (
    CLEAN_TARGETS,
    TARGETS,
    FuzzCase,
    build_spec,
    liveness_missed,
    violated_safety,
)
from repro.core.environment import FCrashEnvironment
from repro.runner import Campaign, JobFailure
from repro.sim.rng import RngStreams


def aggressive_knobs(rng: random.Random, n: int, horizon: int) -> ChaosKnobs:
    """The maximal in-spec profile: every fair dial at its limit.

    Detector churn on every step, a long singleton-or-split partition,
    heavy duplication — still a fair adversary (the partition heals),
    so correct algorithms owe safety *and* eventual decisions, while
    quorum-cheating mutants fall over quickly.  One in four generated
    cases draws this profile so it exercises the clean targets too.
    """
    # The window opens at (or moments after) t = 0: the decisive races
    # happen in the first few hundred ticks, and a partition that opens
    # later than the first decision never pressures anything.
    part_start = rng.randrange(32)
    if rng.random() < 0.5:
        groups: Tuple[Tuple[int, ...], ...] = tuple((p,) for p in range(n))
    else:
        split = rng.randint(1, n - 1)
        groups = (tuple(range(split)), tuple(range(split, n)))
    return ChaosKnobs(
        dup_probability=0.3,
        dup_max_delay=16,
        dup_max_depth=2,
        delay_hi=8,
        partition_start=part_start,
        partition_end=part_start + horizon // 2,
        partition_groups=groups,
        omega_churn_period=1,
        sigma_reshuffle_period=1,
        stabilization_span=horizon // 3,
    )


def generate_knobs(rng: random.Random, n: int, horizon: int) -> ChaosKnobs:
    """One random chaos configuration; every dial independently drawn."""
    if rng.random() < 0.25:
        return aggressive_knobs(rng, n, horizon)
    windows: List[Tuple[int, int, Tuple[int, ...]]] = []
    for _ in range(rng.choice((0, 0, 1, 2))):
        start = rng.randrange(max(1, horizon // 2))
        length = rng.randint(1, max(2, horizon // 10))
        pids = tuple(sorted(rng.sample(range(n), rng.randint(1, max(1, n - 1)))))
        windows.append((start, start + length, pids))
    burst = rng.random() < 0.3
    period = rng.randint(40, 400) if burst else 0
    partition = rng.random() < 0.3
    if partition:
        part_start = rng.randrange(max(1, horizon // 4))
        part_end = part_start + rng.randint(horizon // 20, horizon // 3)
        if rng.random() < 0.5:
            groups: Tuple[Tuple[int, ...], ...] = tuple(
                (p,) for p in range(n)
            )
        else:
            split = rng.randint(1, n - 1)
            groups = (tuple(range(split)), tuple(range(split, n)))
    else:
        part_start = part_end = 0
        groups = ()
    return ChaosKnobs(
        dup_probability=rng.choice((0.0, 0.0, 0.1, 0.3)),
        dup_max_delay=rng.randint(4, 24),
        dup_max_depth=rng.randint(1, 3),
        reorder=rng.random() < 0.2,
        burst_period=period,
        burst_len=rng.randint(1, period) if burst else 0,
        burst_extra=rng.randint(20, 200) if burst else 0,
        delay_lo=1,
        delay_hi=rng.choice((4, 8, 16)),
        starve_windows=tuple(windows),
        partition_start=part_start,
        partition_end=part_end,
        partition_groups=groups,
        omega_churn_period=rng.choice((1, 3, 7)),
        sigma_reshuffle_period=rng.choice((1, 5)),
        stabilization_span=rng.choice((0, 0, horizon // 4)),
    )


def generate_cases(
    targets: Sequence[str],
    rounds: int,
    seed: int,
    n: int,
    horizon: int,
) -> List[FuzzCase]:
    """The deterministic case list for one campaign."""
    streams = RngStreams(seed)
    cases: List[FuzzCase] = []
    for rnd in range(rounds):
        for target in targets:
            knob_rng = streams.get(f"chaos-knobs/{target}/{rnd}")
            crash_rng = streams.get(f"chaos-crashes/{target}/{rnd}")
            knobs = generate_knobs(knob_rng, n, horizon)
            fuzzer = CrashScheduleFuzzer(FCrashEnvironment(n, n - 1), horizon)
            pattern = fuzzer.sample(crash_rng, MODES[rnd % len(MODES)])
            cases.append(
                FuzzCase(
                    target=target,
                    n=n,
                    seed=seed * 1_000_003 + rnd,
                    horizon=horizon,
                    knobs=knobs,
                    crashes=tuple(sorted(pattern.crash_times.items())),
                )
            )
    return cases


@dataclass
class Violation:
    """One safety hit, before and after shrinking."""

    case: FuzzCase
    violated: List[str]
    shrunk: Optional[FuzzCase] = None
    shrink_stats: Dict[str, Any] = field(default_factory=dict)
    artifact_path: Optional[Path] = None


@dataclass
class FuzzReport:
    """Everything one fuzz campaign established."""

    cases: List[FuzzCase]
    violations: List[Violation]
    liveness_misses: List[FuzzCase]
    failures: List[JobFailure]
    incidents: List[Dict[str, Any]]
    cache_events: List[Dict[str, Any]]

    @property
    def safe(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            f"chaos fuzz: {len(self.cases)} runs, "
            f"{len(self.violations)} safety violation(s), "
            f"{len(self.liveness_misses)} liveness miss(es), "
            f"{len(self.failures)} job failure(s)"
        ]
        for v in self.violations:
            lines.append(f"  SAFETY {v.violated} in {v.case.describe()}")
            if v.shrunk is not None:
                lines.append(
                    f"    shrunk -> {v.shrunk.describe()} "
                    f"({v.shrink_stats.get('evals', '?')} evals)"
                )
            if v.artifact_path is not None:
                lines.append(f"    artifact: {v.artifact_path}")
        for case in self.liveness_misses:
            lines.append(f"  liveness miss (non-fatal): {case.describe()}")
        for f in self.failures:
            lines.append(f"  job failure ({f.kind}): {f.error_type}: {f.message}")
        for incident in self.incidents:
            lines.append(f"  runner incident: {incident}")
        for event in self.cache_events:
            lines.append(f"  cache event: {event}")
        return "\n".join(lines)


def run_fuzz(
    targets: Sequence[str] = CLEAN_TARGETS,
    rounds: int = 5,
    seed: int = 0,
    n: int = 4,
    horizon: int = 40_000,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    out_dir: Optional[Path] = None,
    shrink: bool = True,
    shrink_budget: int = 48,
    store: Any = None,
) -> FuzzReport:
    """One fuzz campaign; see the module docstring for the shape."""
    unknown = [t for t in targets if t not in TARGETS]
    if unknown:
        raise ValueError(f"unknown targets {unknown}; have {sorted(TARGETS)}")
    cases = generate_cases(targets, rounds, seed, n, horizon)
    campaign = Campaign(
        (build_spec(case) for case in cases), name="chaos-fuzz"
    )
    result = campaign.run(workers=jobs, cache=False, timeout=timeout)

    violations: List[Violation] = []
    liveness_misses: List[FuzzCase] = []
    failures: List[JobFailure] = []
    for case, summary in zip(cases, result.summaries):
        if isinstance(summary, JobFailure):
            failures.append(summary)
            continue
        violated = violated_safety(case, summary.metrics)
        if violated:
            violation = Violation(case=case, violated=violated)
            if shrink:
                violation.shrunk, violation.shrink_stats = shrink_case(
                    case, violated, budget=shrink_budget
                )
            if out_dir is not None:
                final = violation.shrunk or case
                final_summary = build_spec(final).execute()
                path = Path(out_dir) / (
                    f"chaos-{case.target}-seed{case.seed}.json"
                )
                document = write_artifact(
                    path,
                    final,
                    violated,
                    final_summary,
                    violation.shrink_stats,
                )
                violation.artifact_path = path
                if store is not None:
                    # Witness also lands in the campaign database, so
                    # `repro.store summarise` counts it alongside the
                    # explorer's.
                    store.record_witness(document)
            violations.append(violation)
        elif liveness_missed(case, summary.metrics):
            liveness_misses.append(case)
    return FuzzReport(
        cases=cases,
        violations=violations,
        liveness_misses=liveness_misses,
        failures=failures,
        incidents=result.incidents,
        cache_events=result.cache_events,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.fuzz",
        description="In-spec fault-injection fuzzing of the reproduction's "
        "algorithms, with counterexample shrinking.",
    )
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n", type=int, default=4)
    parser.add_argument("--horizon", type=int, default=40_000)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (0 = all cores; default serial)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-run wall-clock budget in seconds",
    )
    parser.add_argument(
        "--targets", default=",".join(CLEAN_TARGETS),
        help=f"comma-separated target names (have: {', '.join(sorted(TARGETS))})",
    )
    parser.add_argument(
        "--out", type=Path, default=Path(".chaos-artifacts"),
        help="directory for violation artifacts",
    )
    parser.add_argument("--no-shrink", action="store_true")
    parser.add_argument(
        "--store", type=Path, default=None,
        help="campaign database to file violation witnesses into "
        "(directory or .sqlite path; see docs/STORE.md)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fixed budget for CI (overrides rounds/horizon)",
    )
    parser.add_argument(
        "--replay", type=Path, default=None, metavar="ARTIFACT",
        help="replay a violation artifact instead of fuzzing",
    )
    args = parser.parse_args(argv)

    if args.replay is not None:
        document = load_artifact(args.replay)
        outcome = replay(document)
        print(
            f"replay {args.replay}: reproduced={outcome.reproduced} "
            f"deterministic={outcome.deterministic} "
            f"violated={outcome.violated_now}"
        )
        return 0 if outcome.ok else 1

    rounds, horizon = args.rounds, args.horizon
    if args.smoke:
        rounds, horizon = 2, 20_000
    store = None
    if args.store is not None:
        from repro.store import ResultStore

        store = ResultStore(args.store)
    report = run_fuzz(
        targets=tuple(t.strip() for t in args.targets.split(",") if t.strip()),
        rounds=rounds,
        seed=args.seed,
        n=args.n,
        horizon=horizon,
        jobs=args.jobs,
        timeout=args.timeout,
        out_dir=args.out,
        shrink=not args.no_shrink,
        store=store,
    )
    if store is not None:
        store.close()
    print(report.render())
    if not report.safe:
        print("SAFETY VIOLATIONS FOUND", file=sys.stderr)
        return 1
    if report.failures:
        print("runner failures (no safety verdicts for them)", file=sys.stderr)
        return 2
    print("no safety violations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
