"""``python -m repro.chaos`` — the fuzz CLI without the runpy warning
that ``python -m repro.chaos.fuzz`` triggers (the package __init__
imports :mod:`repro.chaos.fuzz` eagerly)."""

import sys

from repro.chaos.fuzz import main

if __name__ == "__main__":
    sys.exit(main())
