"""Crash-schedule fuzzing over an environment's allowed patterns.

The paper's results are quantified over *environments* — sets of
admissible failure patterns — so the crash fuzzer never invents a
pattern the environment forbids: every candidate is validated with
``environment.contains`` and rejected candidates fall back to the
environment's own sampler.  What the fuzzer adds over plain sampling is
*timing pressure*: crash times clustered at the start of the run (quorum
availability decides liveness), packed into a tight band (correlated
failure), or parked late (the algorithm finishes first — the control).
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.core.environment import Environment
from repro.core.failure_pattern import FailurePattern

#: Recognised crash-timing modes, in the order campaigns cycle them.
MODES: Tuple[str, ...] = ("none", "sampled", "early", "clustered", "late")


class CrashScheduleFuzzer:
    """Draws in-environment failure patterns with adversarial timing."""

    def __init__(self, environment: Environment, horizon: int):
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.environment = environment
        self.horizon = horizon

    def _retimed(
        self, base: FailurePattern, rng: random.Random, lo: int, hi: int
    ) -> FailurePattern:
        """``base`` with crash times resampled uniformly from [lo, hi]."""
        hi = max(lo + 1, hi)
        candidate = FailurePattern(
            base.n, {pid: rng.randrange(lo, hi) for pid in base.faulty}
        )
        # Timing constraints (e.g. OrderedCrashEnvironment) may reject
        # the retimed schedule; the environment's own draw is always in.
        if self.environment.contains(candidate):
            return candidate
        return base

    def sample(self, rng: random.Random, mode: str = "sampled") -> FailurePattern:
        if mode not in MODES:
            raise ValueError(f"unknown crash mode {mode!r}; have {MODES}")
        n = self.environment.n
        if mode == "none":
            crash_free = FailurePattern.crash_free(n)
            if self.environment.contains(crash_free):
                return crash_free
            return self.environment.sample(rng, self.horizon)

        base = self.environment.sample(rng, max(1, self.horizon // 3))
        if mode == "sampled" or not base.faulty:
            return base
        if mode == "early":
            return self._retimed(base, rng, 1, max(2, self.horizon // 50))
        if mode == "clustered":
            start = rng.randrange(max(1, self.horizon // 2))
            return self._retimed(base, rng, start, start + self.horizon // 100 + 2)
        # "late": after most of the observable window.
        return self._retimed(
            base, rng, self.horizon // 2, self.horizon // 2 + self.horizon // 8
        )
