"""Deliberately broken algorithms — the fuzz loop's positive controls.

A fuzzer that never fires might be strong or might be blind.  The
mutants here carry known, specific bugs that an in-spec adversary can
expose; the test suite asserts the chaos loop *finds* them, *shrinks*
the witness, and *replays* it deterministically.

:class:`SubMajorityConsensusCore` breaks the quorum intersection at the
heart of Paxos safety: it declares a phase complete after hearing from
``quorum_size`` processes, ignoring Σ.  With ``quorum_size = 1`` any
process that currently believes itself the Ω leader can run a whole
ballot against itself alone — two processes holding that belief at once
(routine before Ω stabilises, especially under churn) decide their own
proposals independently, violating Uniform Agreement.
"""

from __future__ import annotations

from typing import Any, Set

from repro.consensus.interface import consensus_component
from repro.consensus.paxos import OmegaSigmaConsensusCore


class SubMajorityConsensusCore(OmegaSigmaConsensusCore):
    """(Ω, Σ) consensus with Σ's quorums swapped for a fixed head-count.

    Everything else — ballots, promises, decide broadcast — is the
    parent's; only :meth:`_quorum_reached` is broken.  ``quorum_size``
    below ``n // 2 + 1`` voids the phase-1/phase-2 intersection
    guarantee that Agreement rests on.
    """

    def __init__(self, proposal: Any = None, quorum_size: int = 1, **kwargs: Any):
        if quorum_size < 1:
            raise ValueError("quorum_size must be >= 1")
        super().__init__(proposal, **kwargs)
        self.quorum_size = quorum_size

    def _quorum_reached(self, responders: Set[int]) -> bool:
        return len(responders) >= self.quorum_size


def submajority_factory(proposals_items, quorum_size: int = 1):
    """Component factory for the sub-majority mutant (spec-referenceable)."""
    proposals = dict(proposals_items)
    return consensus_component(
        lambda pid: SubMajorityConsensusCore(proposals[pid], quorum_size)
    )
