"""Deliberately broken algorithms — the fuzz loop's positive controls.

A fuzzer that never fires might be strong or might be blind.  The
mutants here carry known, specific bugs that an in-spec adversary can
expose; the test suite asserts the chaos loop *finds* them, *shrinks*
the witness, and *replays* it deterministically.

:class:`SubMajorityConsensusCore` breaks the quorum intersection at the
heart of Paxos safety: it declares a phase complete after hearing from
``quorum_size`` processes, ignoring Σ.  With ``quorum_size = 1`` any
process that currently believes itself the Ω leader can run a whole
ballot against itself alone — two processes holding that belief at once
(routine before Ω stabilises, especially under churn) decide their own
proposals independently, violating Uniform Agreement.

:class:`EagerQuitQCCore` breaks Figure 2's branch test: it treats *any*
non-⊥ Ψ value as the failure signal and quits.  On a crash-free run Ψ
switches to (Ω, Σ) and the mutant still returns Q — a Q decision with
no prior failure, which QC Validity forbids.

:class:`HastyCommitNBACCore` breaks Figure 4's vote-gathering: it
decides straight off its *own* vote, never waiting for the others.  A
single No voter elsewhere makes its Commit violate NBAC Validity (and
the No voter's Abort then breaks Uniform Agreement too).

:class:`RedCommitNBACCore` breaks Figure 4's *quit path* only: when FS
turns red before every vote arrived, it decides unilaterally off its
own vote instead of proposing 0 to QC.  A Yes voter whose FS reddens
while a No vote is still in flight decides Commit — NBAC Validity
(Commit requires all-Yes) breaks.  The bug is unreachable under
constant detector assignments: constant FS is green on every admissible
root (red forever would claim a failure at time 0), so the red branch
never runs and the mutant is behaviourally identical to the correct
core.  Only the explorer's detector-switch dimension — a scripted
green→red transition after a crash — drives the broken path.
"""

from __future__ import annotations

from typing import Any, Set

from repro.consensus.interface import consensus_component
from repro.consensus.paxos import OmegaSigmaConsensusCore
from repro.core.detector import BOTTOM
from repro.nbac.from_qc import NBACFromQCCore
from repro.nbac.spec import ABORT, COMMIT, YES
from repro.qc.psi_qc import PsiQCCore
from repro.qc.spec import Q
from repro.sim.tasklets import WaitUntil


class SubMajorityConsensusCore(OmegaSigmaConsensusCore):
    """(Ω, Σ) consensus with Σ's quorums swapped for a fixed head-count.

    Everything else — ballots, promises, decide broadcast — is the
    parent's; only :meth:`_quorum_reached` is broken.  ``quorum_size``
    below ``n // 2 + 1`` voids the phase-1/phase-2 intersection
    guarantee that Agreement rests on.
    """

    def __init__(self, proposal: Any = None, quorum_size: int = 1, **kwargs: Any):
        if quorum_size < 1:
            raise ValueError("quorum_size must be >= 1")
        super().__init__(proposal, **kwargs)
        self.quorum_size = quorum_size

    def _quorum_reached(self, responders: Set[int]) -> bool:
        return len(responders) >= self.quorum_size


def submajority_factory(proposals_items, quorum_size: int = 1):
    """Component factory for the sub-majority mutant (spec-referenceable)."""
    proposals = dict(proposals_items)
    return consensus_component(
        lambda pid: SubMajorityConsensusCore(proposals[pid], quorum_size)
    )


class EagerQuitQCCore(PsiQCCore):
    """Figure 2 with the branch test inverted into a blanket quit.

    The correct core returns Q only when Ψ behaves like FS — which Ψ
    may do only after a failure.  This mutant decides Q on the first
    non-⊥ sample regardless of its shape, so a crash-free run (where Ψ
    necessarily behaves like (Ω, Σ)) still quits: QC Validity's "Q
    implies a prior failure" clause breaks within a couple of steps.
    """

    def _run(self):
        yield WaitUntil(
            lambda: self.proposal is not None and self._psi() is not BOTTOM
        )
        self.branch_taken = "fs"
        self.decide(Q)


def eagerquit_factory(proposals_items):
    """Component factory for the eager-quit QC mutant."""
    proposals = dict(proposals_items)
    return consensus_component(lambda pid: EagerQuitQCCore(proposals[pid]))


class HastyCommitNBACCore(NBACFromQCCore):
    """Figure 4 without the wait: decide straight off the local vote.

    The correct core gathers every vote (or an FS red) and runs QC so
    that all processes reach the same outcome for the same reason.
    This mutant broadcasts its vote and immediately decides Commit on
    its own Yes — NBAC Validity (Commit requires *all* votes Yes)
    breaks as soon as any other process voted No.
    """

    def _run(self):
        yield WaitUntil(lambda: self.vote is not None)
        self.broadcast(("VOTE", self.vote))
        self.decide(COMMIT if self.vote == YES else ABORT)


def hastycommit_nbac_core(vote=None):
    """A (Ψ, FS)-wired hasty-commit core, mirroring ``psi_fs_nbac_core``."""
    return HastyCommitNBACCore(
        vote=vote,
        qc_factory=lambda: PsiQCCore(psi_extract=lambda d: d[0]),
        fs_extract=lambda d: d[1],
    )


def hastycommit_factory(votes_items):
    """Component factory for the hasty-commit NBAC mutant."""
    votes = dict(votes_items)
    return consensus_component(lambda pid: hastycommit_nbac_core(votes[pid]))


class RedCommitNBACCore(NBACFromQCCore):
    """Figure 4 with the FS-red path short-circuited around QC.

    The correct core reacts to red by proposing 0 to QC, so every
    process funnels through the same agreement protocol whichever way
    its wait ended.  This mutant treats red as licence to decide alone:
    missing votes plus a red FS yield an immediate Commit/Abort off the
    local vote.  With a No vote still undelivered, a Yes voter's Commit
    violates NBAC Validity.  The all-votes path is byte-for-byte the
    parent's, so without an FS transition the mutant is unfalsifiable.
    """

    def _run(self):
        # Lines 1-2 exactly as the parent.
        yield WaitUntil(lambda: self.vote is not None)
        self.broadcast(("VOTE", self.vote))
        yield WaitUntil(lambda: len(self._votes) == self.n or self._fs_red())
        if len(self._votes) < self.n:
            # THE BUG: red ended the wait, and instead of proposing 0
            # to QC we decide unilaterally off the local vote.
            self.decide(COMMIT if self.vote == YES else ABORT)
            return
        # All votes arrived: the correct lines 3-11.
        self.qc_proposal = 1 if all(
            v == YES for v in self._votes.values()
        ) else 0
        qc = self.child(self.QC_TAG)
        qc.propose(self.qc_proposal)  # type: ignore[attr-defined]
        _, decision = yield qc.wait_decided()
        self.decide(COMMIT if decision == 1 else ABORT)


def redcommit_nbac_core(vote=None):
    """A (Ψ, FS)-wired red-commit core, mirroring ``psi_fs_nbac_core``."""
    return RedCommitNBACCore(
        vote=vote,
        qc_factory=lambda: PsiQCCore(psi_extract=lambda d: d[0]),
        fs_extract=lambda d: d[1],
    )


def redcommit_factory(votes_items):
    """Component factory for the red-commit NBAC mutant."""
    votes = dict(votes_items)
    return consensus_component(lambda pid: redcommit_nbac_core(votes[pid]))
