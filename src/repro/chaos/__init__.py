"""Chaos harness: in-spec fault injection with shrinking counterexamples.

The paper's algorithms are proved correct against *any* admissible
adversary — any fair schedule, any finite delays, any crash pattern the
environment allows, any detector history the specification admits.
This package operationalises that quantifier: it generates adversaries
at the edges of the model's latitude and checks the implementations hold
up, run after seeded run.

Layers:

* :mod:`~repro.chaos.knobs` — :class:`ChaosKnobs`, the frozen,
  JSON-able record of every fault dial;
* :mod:`~repro.chaos.adversaries` — message duplication, newest-first
  reordering, burst delays, windowed scheduler starvation;
* :mod:`~repro.chaos.crashes` — in-environment crash-schedule fuzzing;
* :mod:`~repro.chaos.targets` — the algorithms under test and
  :class:`FuzzCase`, the pinned description of one chaos run;
* :mod:`~repro.chaos.mutants` — deliberately broken algorithms (the
  fuzzer's positive controls);
* :mod:`~repro.chaos.fuzz` — the campaign driver and CLI;
* :mod:`~repro.chaos.shrink` — greedy delta-debugging of violations;
* :mod:`~repro.chaos.artifact` — replayable JSON witnesses;
* :mod:`~repro.chaos.workers` — :class:`WorkerKiller`, the injector
  that SIGKILLs the *checker's own* frontier workers mid-shard.

See ``docs/CHAOS.md`` for the catalog and the artifact format.
"""

from repro.chaos.adversaries import (
    BurstDelay,
    DuplicatingDelivery,
    NewestFirstDelivery,
    make_delay,
    make_delivery,
    make_scheduler,
)
from repro.chaos.artifact import (
    ReplayResult,
    case_from_dict,
    case_to_dict,
    load_artifact,
    replay,
    write_artifact,
)
from repro.chaos.crashes import MODES, CrashScheduleFuzzer
from repro.chaos.fuzz import FuzzReport, Violation, generate_cases, run_fuzz
from repro.chaos.knobs import ChaosKnobs
from repro.chaos.mutants import (
    EagerQuitQCCore,
    HastyCommitNBACCore,
    SubMajorityConsensusCore,
    eagerquit_factory,
    hastycommit_factory,
    submajority_factory,
)
from repro.chaos.shrink import (
    greedy_shrink,
    run_case,
    shrink_case,
    still_violates,
)
from repro.chaos.targets import (
    CLEAN_TARGETS,
    MUTANT_TARGETS,
    TARGETS,
    FuzzCase,
    build_spec,
    liveness_missed,
    violated_safety,
)
from repro.chaos.workers import WorkerKiller

__all__ = [
    "BurstDelay",
    "DuplicatingDelivery",
    "NewestFirstDelivery",
    "make_delay",
    "make_delivery",
    "make_scheduler",
    "ReplayResult",
    "case_from_dict",
    "case_to_dict",
    "load_artifact",
    "replay",
    "write_artifact",
    "MODES",
    "CrashScheduleFuzzer",
    "FuzzReport",
    "Violation",
    "WorkerKiller",
    "generate_cases",
    "run_fuzz",
    "ChaosKnobs",
    "SubMajorityConsensusCore",
    "EagerQuitQCCore",
    "HastyCommitNBACCore",
    "submajority_factory",
    "eagerquit_factory",
    "hastycommit_factory",
    "run_case",
    "greedy_shrink",
    "shrink_case",
    "still_violates",
    "CLEAN_TARGETS",
    "MUTANT_TARGETS",
    "TARGETS",
    "FuzzCase",
    "build_spec",
    "liveness_missed",
    "violated_safety",
]
