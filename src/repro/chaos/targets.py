"""Fuzz targets: the paper's algorithms wired up for chaos campaigns.

A *target* names one algorithm stack (components + detector + stop +
property hook) and a :class:`FuzzCase` pins one concrete chaos run of
it: (target, n, seed, horizon, knobs, crash schedule).  Cases are the
currency of the whole harness — the fuzz driver generates them, the
shrinker edits them, artifacts serialise them — and :func:`build_spec`
turns any case into a :class:`~repro.runner.spec.RunSpec` whose
execution is deterministic in the case alone.

The clean targets cover the paper's headline algorithms: (Ω, Σ) Paxos
consensus (Corollary 4), Chandra-Toueg ◇S consensus [4], quittable
consensus from Ψ (Figure 2), NBAC from (Ψ, FS) (Corollary 10), and
Σ-quorum ABD registers (Theorem 1).  ``submajority`` is the deliberate
mutant from :mod:`repro.chaos.mutants` — excluded from
:data:`CLEAN_TARGETS` and expected to *fail*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Tuple

from repro.chaos.adversaries import make_delay, make_delivery, make_scheduler
from repro.chaos.knobs import ChaosKnobs
from repro.chaos.mutants import (
    eagerquit_factory,
    hastycommit_factory,
    redcommit_factory,
    submajority_factory,
)
from repro.consensus.chandra_toueg import ChandraTouegConsensusCore
from repro.consensus.interface import consensus_component
from repro.consensus.paxos import OmegaSigmaConsensusCore
from repro.core.detectors import (
    EventuallyStrongOracle,
    PsiOracle,
    SigmaOracle,
    omega_sigma_oracle,
)
from repro.core.failure_pattern import FailurePattern
from repro.experiments.hooks import agreement_summary
from repro.nbac import NO, YES, psi_fs_nbac_core, psi_fs_oracle
from repro.qc.psi_qc import PsiQCCore
from repro.registers.abd import RegisterBank
from repro.registers.linearizability import check_linearizable
from repro.registers.quorums import SigmaQuorums
from repro.registers.workload import RegisterWorkload, workload_quiescent
from repro.runner import call, run_spec
from repro.runner.spec import RunSpec
from repro.sim.system import decided


def _proposals(n: int, seed: int) -> Dict[int, str]:
    """Consensus proposals, derived from the seed like the NBAC votes:
    even seeds propose uniformly, odd seeds give pid 0 the lone
    distinct value.  The values themselves are pid-free strings —
    never ``"v{pid}"`` — so the explorer's pid-symmetry reduction can
    relabel states without chasing pids through payloads (odd seeds
    pin pid 0, exactly like the vote convention)."""
    proposals = {p: "v" for p in range(n)}
    if seed % 2 == 1:
        proposals[0] = "w"
    return proposals


def _proposal_items(n: int, seed: int) -> Tuple[Tuple[int, str], ...]:
    return tuple(sorted(_proposals(n, seed).items()))


def _votes(n: int, seed: int) -> Dict[int, str]:
    """NBAC votes, derived from the seed: mostly all-Yes, odd seeds
    carry one No so both outcomes stay exercised."""
    votes = {p: YES for p in range(n)}
    if seed % 2 == 1:
        votes[0] = NO
    return votes


def _span(knobs: ChaosKnobs):
    return knobs.stabilization_span or None


# -- component factories (module-level, spec-referenceable) ------------
def paxos_factory(proposals_items):
    proposals = dict(proposals_items)
    return consensus_component(
        lambda pid: OmegaSigmaConsensusCore(proposals[pid])
    )


def ct_factory(proposals_items):
    proposals = dict(proposals_items)
    return consensus_component(
        lambda pid: ChandraTouegConsensusCore(proposals[pid])
    )


def qc_factory(proposals_items):
    proposals = dict(proposals_items)
    return consensus_component(lambda pid: PsiQCCore(proposals[pid]))


def nbac_factory(votes_items):
    votes = dict(votes_items)
    return consensus_component(lambda pid: psi_fs_nbac_core(votes[pid]))


def _identity(d):
    return d


def register_bank_factory():
    return lambda pid: RegisterBank(SigmaQuorums(_identity), record_ops=True)


def register_workload_factory(seed):
    return lambda pid: RegisterWorkload(
        registers=("x",), ops_per_process=3, seed=seed
    )


def register_summary():
    """Hook maker: register safety is linearizability, liveness is the
    workload draining before the horizon."""

    def hook(system, trace) -> Dict[str, Any]:
        live = trace.stop_reason == "stop-condition"
        lin = check_linearizable(trace.operations).ok
        return {
            "ok": live and lin,
            "termination": live,
            "linearizability": lin,
            "completed": len(trace.completed_operations("reg")),
            "total": len(trace.operations),
        }

    return hook


# -- target table ------------------------------------------------------
def _always_live(pattern: FailurePattern, n: int) -> bool:
    return True


def _majority_live(pattern: FailurePattern, n: int) -> bool:
    return len(pattern.faulty) <= (n - 1) // 2


@dataclass(frozen=True)
class Target:
    """One algorithm stack the fuzzer knows how to run and judge.

    ``build(n, seed, horizon, knobs)`` returns the spec kwargs specific
    to the algorithm (detector, components, stop, summarize);
    ``safety_clauses`` names the metric keys that constitute safety;
    ``live(pattern, n)`` says whether Termination is even promised for
    that crash schedule (CT ◇S legitimately blocks past a minority).
    """

    name: str
    build: Callable[[int, int, int, ChaosKnobs], Dict[str, Any]]
    safety_clauses: Tuple[str, ...] = ("agreement", "validity")
    live: Callable[[FailurePattern, int], bool] = _always_live


def _build_paxos(n, seed, horizon, knobs):
    items = _proposal_items(n, seed)
    return dict(
        detector=omega_sigma_oracle(
            churn_period=knobs.omega_churn_period,
            reshuffle_period=knobs.sigma_reshuffle_period,
            stabilization_span=_span(knobs),
        ),
        components=[("consensus", call(paxos_factory, items))],
        stop=call(decided, "consensus"),
        summarize=call(agreement_summary, "consensus", "consensus", items),
    )


def _build_ct(n, seed, horizon, knobs):
    items = _proposal_items(n, seed)
    return dict(
        detector=EventuallyStrongOracle(),
        components=[("consensus", call(ct_factory, items))],
        stop=call(decided, "consensus"),
        summarize=call(agreement_summary, "consensus", "consensus", items),
    )


def _build_qc(n, seed, horizon, knobs):
    items = _proposal_items(n, seed)
    return dict(
        detector=PsiOracle(),
        components=[("qc", call(qc_factory, items))],
        stop=call(decided, "qc"),
        summarize=call(agreement_summary, "qc", "qc", items),
    )


def _build_nbac(n, seed, horizon, knobs):
    items = tuple(sorted(_votes(n, seed).items()))
    return dict(
        detector=psi_fs_oracle(),
        components=[("nbac", call(nbac_factory, items))],
        stop=call(decided, "nbac"),
        summarize=call(agreement_summary, "nbac", "nbac", items),
    )


def _build_register(n, seed, horizon, knobs):
    return dict(
        detector=SigmaOracle(
            reshuffle_period=knobs.sigma_reshuffle_period,
            stabilization_span=_span(knobs),
        ),
        components=[
            ("reg", call(register_bank_factory)),
            ("workload", call(register_workload_factory, seed)),
        ],
        stop=call(workload_quiescent),
        summarize=call(register_summary),
    )


def _build_submajority(n, seed, horizon, knobs):
    items = _proposal_items(n, seed)
    return dict(
        detector=omega_sigma_oracle(
            churn_period=knobs.omega_churn_period,
            reshuffle_period=knobs.sigma_reshuffle_period,
            stabilization_span=_span(knobs),
        ),
        components=[("consensus", call(submajority_factory, items, 1))],
        stop=call(decided, "consensus"),
        summarize=call(agreement_summary, "consensus", "consensus", items),
    )


def _build_eagerquit(n, seed, horizon, knobs):
    items = _proposal_items(n, seed)
    return dict(
        detector=PsiOracle(),
        components=[("qc", call(eagerquit_factory, items))],
        stop=call(decided, "qc"),
        summarize=call(agreement_summary, "qc", "qc", items),
    )


def _build_hastycommit(n, seed, horizon, knobs):
    items = tuple(sorted(_votes(n, seed).items()))
    return dict(
        detector=psi_fs_oracle(),
        components=[("nbac", call(hastycommit_factory, items))],
        stop=call(decided, "nbac"),
        summarize=call(agreement_summary, "nbac", "nbac", items),
    )


def _build_redcommit(n, seed, horizon, knobs):
    items = tuple(sorted(_votes(n, seed).items()))
    return dict(
        detector=psi_fs_oracle(),
        components=[("nbac", call(redcommit_factory, items))],
        stop=call(decided, "nbac"),
        summarize=call(agreement_summary, "nbac", "nbac", items),
    )


TARGETS: Dict[str, Target] = {
    t.name: t
    for t in (
        Target("paxos", _build_paxos),
        Target("ct", _build_ct, live=_majority_live),
        Target("qc", _build_qc),
        Target("nbac", _build_nbac),
        Target(
            "register",
            _build_register,
            safety_clauses=("linearizability",),
        ),
        Target("submajority", _build_submajority),
        Target("eagerquit", _build_eagerquit),
        Target("hastycommit", _build_hastycommit),
        Target("redcommit", _build_redcommit),
    )
}

#: The correct algorithms: zero safety violations expected, ever.
CLEAN_TARGETS: Tuple[str, ...] = ("paxos", "ct", "qc", "nbac", "register")

#: The seeded bugs of :mod:`repro.chaos.mutants`: every one must be
#: detectable — the chaos fuzzer and the explorer both assert it.
#: ``redcommit`` is the exception that proves the detector-switch
#: dimension: its bug hides behind an FS green→red transition, which
#: constant-assignment exploration (and the oracle-driven fuzzer only
#: rarely) lines up — the explorer asserts it *with* switches and
#: asserts clean exhaustion *without* them.
MUTANT_TARGETS: Tuple[str, ...] = (
    "submajority",
    "eagerquit",
    "hastycommit",
    "redcommit",
)


# -- cases -------------------------------------------------------------
@dataclass(frozen=True)
class FuzzCase:
    """One fully-pinned chaos run; everything the spec needs and nothing
    the spec derives.  ``crashes`` is a sorted (pid, time) tuple so the
    case is hashable and canonicalises stably."""

    target: str
    n: int
    seed: int
    horizon: int
    knobs: ChaosKnobs = field(default_factory=ChaosKnobs)
    crashes: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise ValueError(
                f"unknown target {self.target!r}; have {sorted(TARGETS)}"
            )

    def with_(self, **changes: Any) -> "FuzzCase":
        return replace(self, **changes)

    @property
    def pattern(self) -> FailurePattern:
        return FailurePattern(self.n, dict(self.crashes))

    @property
    def fair(self) -> bool:
        return self.knobs.fair

    def describe(self) -> str:
        return (
            f"{self.target}(n={self.n}, seed={self.seed}, "
            f"horizon={self.horizon}, crashes={dict(self.crashes)})"
        )


def build_spec(case: FuzzCase) -> RunSpec:
    """The deterministic RunSpec for one case."""
    target = TARGETS[case.target]
    parts = target.build(case.n, case.seed, case.horizon, case.knobs)
    return run_spec(
        n=case.n,
        seed=case.seed,
        horizon=case.horizon,
        pattern=case.pattern,
        scheduler=call(make_scheduler, case.knobs),
        delivery_policy=call(make_delivery, case.knobs),
        delay_model=call(make_delay, case.knobs),
        tags={"target": case.target, "fair": case.fair},
        **parts,
    )


def violated_safety(case: FuzzCase, metrics: Dict[str, Any]) -> List[str]:
    """The safety clauses this run's metrics show broken (usually [])."""
    target = TARGETS[case.target]
    return [c for c in target.safety_clauses if not metrics.get(c, True)]


def liveness_missed(case: FuzzCase, metrics: Dict[str, Any]) -> bool:
    """True when Termination was promised (fair adversary, live-able
    crash schedule) but the run did not decide within the horizon."""
    target = TARGETS[case.target]
    return (
        case.fair
        and target.live(case.pattern, case.n)
        and not metrics.get("termination", True)
    )
