"""Repro artifacts: a safety violation, frozen as replayable JSON.

When the fuzz loop catches a safety violation it writes one of these:
the shrunk :class:`~repro.chaos.targets.FuzzCase`, the clauses it
breaks, and the summary's stable digest.  The file is self-contained —
no pickles, no object references — so it survives refactors that would
invalidate the run cache, and a teammate (or CI) replays it with::

    python -m repro.chaos.fuzz --replay artifact.json

Replay rebuilds the spec from the case, executes it in-process, and
checks two things: the recorded clauses still break (the bug is still
there) and the summary digest matches (the run is still byte-for-byte
deterministic).  A digest mismatch with the violation intact means the
simulation semantics drifted — worth knowing, reported separately.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence

from repro.chaos.knobs import ChaosKnobs
from repro.chaos.targets import FuzzCase, violated_safety

FORMAT = "repro-chaos-artifact/1"

#: The explorer freezes its violations in a sibling format
#: (:mod:`repro.explore.artifact`); the loader and :func:`replay`
#: accept both so one replay suite covers fuzzer and explorer
#: witnesses alike.
EXPLORE_FORMAT = "repro-explore-artifact/1"
_KNOWN_FORMATS = frozenset({FORMAT, EXPLORE_FORMAT})


def parse_format(value: Any) -> tuple:
    """``(family, version)`` out of a ``family/N`` format string.

    Returns ``(None, None)`` for anything that is not shaped like an
    artifact header at all — the caller distinguishes "not ours" from
    "ours, but a version this code does not read".
    """
    if not isinstance(value, str) or "/" not in value:
        return None, None
    family, _, version = value.rpartition("/")
    if not family:
        return None, None
    try:
        return family, int(version)
    except ValueError:
        return None, None


def check_format(
    path: Path,
    document: Dict[str, Any],
    known: frozenset,
    noun: str = "repro artifact",
) -> None:
    """Refuse anything but a known format, with the right diagnosis.

    A recognised family at an unsupported version gets a version error
    (the file is real but written by other code — don't guess at its
    fields); everything else is simply not an artifact.
    """
    value = document.get("format")
    if value in known:
        return
    family, version = parse_format(value)
    supported = {parse_format(f)[0]: parse_format(f)[1] for f in known}
    if family in supported:
        raise ValueError(
            f"{path}: {family} version {version} is not supported; this "
            f"code reads version {supported[family]}.  Re-generate the "
            f"artifact with the current tree (or replay it with the tree "
            f"that wrote it)."
        )
    raise ValueError(
        f"{path} is not a{'n' if noun[0] in 'aeiou' else ''} {noun} "
        f"(format {value!r}, want one of {sorted(known)})"
    )


def case_to_dict(case: FuzzCase) -> Dict[str, Any]:
    return {
        "target": case.target,
        "n": case.n,
        "seed": case.seed,
        "horizon": case.horizon,
        "knobs": case.knobs.to_dict(),
        "crashes": [[pid, t] for pid, t in case.crashes],
    }


def case_from_dict(data: Dict[str, Any]) -> FuzzCase:
    return FuzzCase(
        target=data["target"],
        n=int(data["n"]),
        seed=int(data["seed"]),
        horizon=int(data["horizon"]),
        knobs=ChaosKnobs.from_dict(data["knobs"]),
        crashes=tuple(
            (int(pid), int(t)) for pid, t in sorted(data["crashes"])
        ),
    )


def write_artifact(
    path: Path,
    case: FuzzCase,
    violated: Sequence[str],
    summary: Any,
    shrink_stats: Dict[str, Any] | None = None,
) -> Dict[str, Any]:
    """Serialise a violation witness; returns the written document."""
    document = {
        "format": FORMAT,
        "case": case_to_dict(case),
        "violated": sorted(violated),
        "expected": {
            "stable_digest": summary.stable_digest(),
            "outcomes": summary.metrics.get("outcomes", []),
        },
        "shrink": shrink_stats or {},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def load_artifact(path: Path) -> Dict[str, Any]:
    """Load any repro violation artifact (chaos or explore format)."""
    document = json.loads(Path(path).read_text())
    check_format(Path(path), document, _KNOWN_FORMATS)
    return document


@dataclass(frozen=True)
class ReplayResult:
    """What replaying an artifact established."""

    reproduced: bool  # the recorded clauses still break
    deterministic: bool  # the summary digest matches the recording
    violated_now: List[str]
    digest: str

    @property
    def ok(self) -> bool:
        return self.reproduced and self.deterministic


def replay(document: Dict[str, Any]) -> ReplayResult:
    """Re-execute an artifact's case and compare against the recording.

    Dispatches on the document's ``format``: chaos artifacts replay the
    seeded fuzz case, explore artifacts replay the recorded choice
    trace (lazy import — the explorer depends on this module, not the
    other way around).
    """
    if document.get("format") == EXPLORE_FORMAT:
        from repro.explore.artifact import replay as replay_explore

        return replay_explore(document)

    from repro.chaos.shrink import run_case

    case = case_from_dict(document["case"])
    summary = run_case(case)
    violated_now = sorted(violated_safety(case, summary.metrics))
    digest = summary.stable_digest()
    return ReplayResult(
        reproduced=set(document["violated"]) <= set(violated_now),
        deterministic=digest == document["expected"]["stable_digest"],
        violated_now=violated_now,
        digest=digest,
    )
