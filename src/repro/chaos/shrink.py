"""Counterexample shrinking — ddmin in spirit, case-shaped in practice.

A raw fuzz hit arrives wrapped in everything the campaign happened to
throw at it: a long horizon, a pile of crashes, four adversaries at
once.  The shrinker strips it to the witness a human can read.  The
state space is a :class:`~repro.chaos.targets.FuzzCase`, and a
candidate edit is *accepted* when the edited case still exhibits at
least the original violated clauses (checked by re-executing the spec
in-process — runs are deterministic, so one execution is an oracle).

Edits are ordered by how much reading they save: halve the horizon,
drop crashes (one at a time, then all), zero fault knobs one family at
a time, finally probe small seeds.  The loop restarts from the first
edit after every acceptance and stops at a fixpoint or when the
evaluation budget runs out — classic greedy delta debugging, linear in
practice because each family is monotone.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Sequence,
    Tuple,
)

from repro.chaos.knobs import ChaosKnobs
from repro.chaos.targets import FuzzCase, build_spec, violated_safety

#: Never shrink the horizon below this — the algorithms need *some* time
#: to reach the states that disagree.
MIN_HORIZON = 1_000


def run_case(case: FuzzCase):
    """Execute one case in-process; returns its RunSummary."""
    return build_spec(case).execute()


def still_violates(case: FuzzCase, required: Sequence[str]) -> bool:
    """Does ``case`` still break (at least) every clause in ``required``?"""
    summary = run_case(case)
    return set(required) <= set(violated_safety(case, summary.metrics))


def _candidates(case: FuzzCase) -> Iterator[Tuple[str, FuzzCase]]:
    """Strictly-reducing edits of ``case``, most valuable first."""
    # 1. Horizon halving — the biggest readability win.
    if case.horizon // 2 >= MIN_HORIZON:
        yield "halve-horizon", case.with_(horizon=case.horizon // 2)

    # 2. Crash schedule: all gone, then one victim at a time.
    if case.crashes:
        yield "drop-all-crashes", case.with_(crashes=())
        for i in range(len(case.crashes)):
            reduced = case.crashes[:i] + case.crashes[i + 1 :]
            yield f"drop-crash-{case.crashes[i][0]}", case.with_(crashes=reduced)

    # 3. Fault knobs, one family at a time (each edit is idempotent:
    #    already-default families produce no candidate).
    k = case.knobs
    defaults = ChaosKnobs()
    if k.dup_probability > 0:
        yield "dup-off", case.with_(
            knobs=k.with_(
                dup_probability=0.0,
                dup_max_delay=defaults.dup_max_delay,
                dup_max_depth=defaults.dup_max_depth,
            )
        )
    if k.reorder:
        yield "reorder-off", case.with_(knobs=k.with_(reorder=False))
    if k.burst_period > 0:
        yield "burst-off", case.with_(
            knobs=k.with_(burst_period=0, burst_len=0, burst_extra=0)
        )
    if k.starve_windows:
        yield "starve-off", case.with_(knobs=k.with_(starve_windows=()))
        for i in range(len(k.starve_windows)):
            reduced = k.starve_windows[:i] + k.starve_windows[i + 1 :]
            yield f"drop-window-{i}", case.with_(
                knobs=k.with_(starve_windows=reduced)
            )
    if k.partitioned:
        yield "partition-off", case.with_(
            knobs=k.with_(
                partition_start=0, partition_end=0, partition_groups=()
            )
        )
        # Narrow the window from the right before giving up on it.
        width = k.partition_end - k.partition_start
        if width >= 2:
            yield "partition-narrow", case.with_(
                knobs=k.with_(partition_end=k.partition_start + width // 2)
            )
    if (k.delay_lo, k.delay_hi) != (defaults.delay_lo, defaults.delay_hi):
        yield "delay-default", case.with_(
            knobs=k.with_(delay_lo=defaults.delay_lo, delay_hi=defaults.delay_hi)
        )
    if k.omega_churn_period != defaults.omega_churn_period:
        yield "churn-default", case.with_(
            knobs=k.with_(omega_churn_period=defaults.omega_churn_period)
        )
    if k.sigma_reshuffle_period != defaults.sigma_reshuffle_period:
        yield "reshuffle-default", case.with_(
            knobs=k.with_(sigma_reshuffle_period=defaults.sigma_reshuffle_period)
        )
    if k.stabilization_span != 0:
        yield "span-default", case.with_(knobs=k.with_(stabilization_span=0))

    # 4. Seed probes — only downward, so the loop cannot oscillate.
    for probe in range(min(4, case.seed)):
        yield f"seed-{probe}", case.with_(seed=probe)


def greedy_shrink(
    initial: Any,
    candidates: Callable[[Any], Iterable[Tuple[str, Any]]],
    accept: Callable[[Any], bool],
    budget: int,
) -> Tuple[Any, Dict[str, object]]:
    """The greedy delta-debug fixpoint loop, state-shape agnostic.

    ``candidates(current)`` yields labeled strictly-reducing edits, most
    valuable first; ``accept(candidate)`` re-checks the property being
    preserved (usually by re-executing a deterministic run).  After
    every acceptance the loop restarts from the first edit; it stops at
    a fixpoint or when ``budget`` evaluations are spent.  Shared by the
    chaos :func:`shrink_case` and the explorer's choice-trace shrinker
    (:func:`repro.explore.shrink.shrink_violation`).
    """
    current = initial
    evals = 0
    accepted: List[str] = []
    progress = True
    while progress and evals < budget:
        progress = False
        for label, candidate in candidates(current):
            if candidate == current:
                continue
            evals += 1
            if accept(candidate):
                current = candidate
                accepted.append(label)
                progress = True
                break
            if evals >= budget:
                break
    return current, {"evals": evals, "accepted": accepted}


def shrink_case(
    case: FuzzCase,
    violated: Sequence[str],
    budget: int = 48,
) -> Tuple[FuzzCase, Dict[str, object]]:
    """Greedy fixpoint shrink of ``case`` preserving ``violated``.

    Returns the shrunk case and a stats dict (evaluations spent, edits
    accepted, in order).  The input case is assumed to violate
    ``violated`` already (it is never re-checked, saving one eval).
    """
    return greedy_shrink(
        case,
        _candidates,
        lambda candidate: still_violates(candidate, violated),
        budget,
    )
