"""The fault-injection configuration of one chaos run.

A :class:`ChaosKnobs` value is the complete, JSON-serialisable record of
every adversary the harness turned on for a run.  It is deliberately a
frozen dataclass of primitives: specs embed it (so it fingerprints into
the cache key), the shrinker edits it field by field, and repro
artifacts round-trip it through JSON.

Every knob stays **inside the model**: duplicated messages are re-sent
copies of messages the sender really sent, bursts are finite delays,
starvation windows close, and the detector periods only speed up noise
the detector specifications already allow.  The one out-of-spec switch
is ``reorder`` (newest-first delivery can starve a message forever),
which forfeits Termination claims but never safety — the fuzz driver
checks liveness only when :attr:`ChaosKnobs.fair` holds.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Tuple

#: A starvation window: (start, end, pids) with ``end`` exclusive.
Window = Tuple[int, int, Tuple[int, ...]]


@dataclass(frozen=True)
class ChaosKnobs:
    """Every fault-injection dial, with 'off' defaults.

    ``dup_probability`` re-delivers each delivered message with that
    probability after 1..``dup_max_delay`` extra ticks, up to
    ``dup_max_depth`` generations per original.  ``reorder`` switches
    delivery to newest-first (unfair).  ``burst_period``/``burst_len``/
    ``burst_extra`` make the delay model add ``burst_extra`` ticks to
    every message sent during the first ``burst_len`` of each
    ``burst_period`` sends.  ``starve_windows`` are bounded scheduler
    blackouts.  The detector periods/span drive the in-spec oracle
    perturbation (``0`` span means the oracle default).
    """

    dup_probability: float = 0.0
    dup_max_delay: int = 12
    dup_max_depth: int = 2
    reorder: bool = False
    burst_period: int = 0
    burst_len: int = 0
    burst_extra: int = 0
    delay_lo: int = 1
    delay_hi: int = 8
    starve_windows: Tuple[Window, ...] = ()
    partition_start: int = 0
    partition_end: int = 0
    partition_groups: Tuple[Tuple[int, ...], ...] = ()
    omega_churn_period: int = 7
    sigma_reshuffle_period: int = 5
    stabilization_span: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.dup_probability <= 1.0:
            raise ValueError("dup_probability must be in [0, 1]")
        if self.dup_probability > 0 and self.dup_max_delay < 1:
            raise ValueError("dup_max_delay must be >= 1")
        if not 1 <= self.delay_lo <= self.delay_hi:
            raise ValueError(
                f"need 1 <= delay_lo <= delay_hi, got "
                f"[{self.delay_lo}, {self.delay_hi}]"
            )
        if self.burst_period < 0 or self.burst_len > max(self.burst_period, 0):
            raise ValueError("need 0 <= burst_len <= burst_period")
        for start, end, pids in self.starve_windows:
            if start > end:
                raise ValueError(f"window [{start}, {end}) is inverted")
        if self.partition_start > self.partition_end:
            raise ValueError(
                f"partition window [{self.partition_start}, "
                f"{self.partition_end}) is inverted"
            )
        seen = set()
        for group in self.partition_groups:
            if seen & set(group):
                raise ValueError("partition groups must be disjoint")
            seen |= set(group)
        if self.omega_churn_period < 1 or self.sigma_reshuffle_period < 1:
            raise ValueError("detector periods must be >= 1")
        if self.stabilization_span < 0:
            raise ValueError("stabilization_span must be >= 0")

    @property
    def partitioned(self) -> bool:
        """Whether the transient-partition window is actually active."""
        return (
            self.partition_end > self.partition_start
            and bool(self.partition_groups)
        )

    @property
    def fair(self) -> bool:
        """Whether every enabled adversary preserves fairness.

        Transient partitions heal, bursts end, starvation windows close
        and duplication only adds deliveries — all fair.  Newest-first
        reordering is the one unfair dial (and it is shadowed by an
        active partition window, whose policy takes over delivery, but
        we stay conservative and drop the Termination claim anyway).
        """
        return not self.reorder

    def with_(self, **changes: Any) -> "ChaosKnobs":
        return replace(self, **changes)

    # -- JSON round-trip -----------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        d["starve_windows"] = [
            [start, end, list(pids)] for start, end, pids in self.starve_windows
        ]
        d["partition_groups"] = [list(g) for g in self.partition_groups]
        return d

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosKnobs":
        data = dict(data)
        windows = tuple(
            (int(start), int(end), tuple(int(p) for p in pids))
            for start, end, pids in data.pop("starve_windows", ())
        )
        groups = tuple(
            tuple(int(p) for p in group)
            for group in data.pop("partition_groups", ())
        )
        return cls(starve_windows=windows, partition_groups=groups, **data)
