"""Optional compiled hot core (see docs/PERF.md, "Native core").

``repro._native._core`` is a hand-written CPython extension holding
byte-exact ports of the two hottest pure-Python loops:

* ``Encoder`` — the fingerprint byte-encoder from
  :mod:`repro.explore.state` (``--fingerprint-mode native``);
* ``NetworkCore`` — the indexed per-destination message buffers from
  :mod:`repro.sim.network` (the ``native`` engine / ``NativeNetwork``).

The extension is strictly optional: when it is not built (no compiler,
no ``build_ext`` run) or is disabled via ``REPRO_NATIVE=0``, every
caller silently degrades to the pure-Python paths, which stay in the
tree as the differential-test references.  :func:`available` /
:func:`reason` report which way this process went, and
``python -m repro.native_status`` prints it.
"""

from __future__ import annotations

import os
from typing import Any, Optional

__all__ = [
    "available",
    "reason",
    "encoder_class",
    "network_core_class",
    "status",
]

_DISABLED = os.environ.get("REPRO_NATIVE", "").strip() == "0"

_core: Any = None
_reason: Optional[str] = None
_bound = False

if _DISABLED:
    _reason = "disabled via REPRO_NATIVE=0"
else:
    try:
        # importlib, not `from . import _core`: the module-level
        # `_core` variable above would shadow the submodule.
        import importlib

        _core = importlib.import_module("repro._native._core")
    except ImportError as exc:
        _reason = f"compiled extension not importable ({exc})"


def _bind() -> bool:
    """Register the sentinel classes with the extension, once.

    Binding is deferred past import time so ``repro._native`` can be
    imported from anywhere (including ``repro.sim.network`` itself)
    without a circular import: the sim/explore modules are only pulled
    in when a caller first asks for a native class.
    """
    global _bound, _reason
    if _bound or _core is None:
        return _bound
    try:
        from random import Random

        from repro.explore.state import _MAX_DEPTH, _SKIP_ATTRS
        from repro.sim.network import Message, Network, ReferenceNetwork
        from repro.sim.tasklets import WaitSteps, WaitUntil
        from repro.sim.trace import RunTrace

        _core.bind(
            WaitSteps,
            WaitUntil,
            Message,
            Random,
            Network,
            ReferenceNetwork,
            RunTrace,
            _SKIP_ATTRS,
            _MAX_DEPTH,
        )
    except Exception as exc:  # pragma: no cover - defensive
        _reason = f"binding sentinel classes failed ({exc})"
        return False
    _bound = True
    return True


def available() -> bool:
    """Whether the compiled core is loaded and usable in this process."""
    return _core is not None and _bind()


def reason() -> Optional[str]:
    """Why the compiled core is unavailable (None when it is loaded)."""
    if available():
        return None
    return _reason or "unknown"


def encoder_class() -> Optional[type]:
    """The compiled ``Encoder`` type, or None when unavailable."""
    if not available():
        return None
    return _core.Encoder


def network_core_class() -> Optional[type]:
    """The compiled ``NetworkCore`` type, or None when unavailable."""
    if not available():
        return None
    return _core.NetworkCore


def status() -> dict:
    """A report dict for ``python -m repro.native_status`` and benches."""
    ok = available()
    return {
        "available": ok,
        "reason": None if ok else reason(),
        "version": getattr(_core, "VERSION", None) if ok else None,
        "extension": getattr(_core, "__file__", None) if _core else None,
        "disabled_by_env": _DISABLED,
    }
