/* repro._native._core — compiled hot core for the explorer and simulator.
 *
 * Two engines live here, both exact ports of pure-Python references
 * that stay in the tree as differential-test oracles:
 *
 *   Encoder     — byte-identical port of repro.explore.state._Encoder.
 *                 The byte grammar IS the dedup key, so every branch
 *                 below mirrors the Python encoder case by case and in
 *                 the same order; the equivalence suites compare the
 *                 two byte-for-byte over real searches.
 *   NetworkCore — the indexed per-destination buffer from
 *                 repro.sim.network.Network (future min-heap, ready
 *                 pool in ascending msg_id order, lazy-deleted
 *                 oldest-first heap), including the exact perf-counter
 *                 accounting the golden determinism suite pins.
 *
 * The module is import-safe without the rest of the package; the
 * Python side calls bind() once with the sentinel classes (WaitSteps,
 * Message, ...) before the first encode.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* SHA-256 (for the Random-state branch; must match hashlib exactly). */
/* ------------------------------------------------------------------ */

typedef struct {
    uint32_t state[8];
    uint64_t length;
    uint8_t buffer[64];
    size_t buffered;
} Sha256;

static const uint32_t SHA256_K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

#define ROR(x, n) (((x) >> (n)) | ((x) << (32 - (n))))

static void
sha256_init(Sha256 *s)
{
    static const uint32_t iv[8] = {
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
    };
    memcpy(s->state, iv, sizeof iv);
    s->length = 0;
    s->buffered = 0;
}

static void
sha256_block(Sha256 *s, const uint8_t *p)
{
    uint32_t w[64], a, b, c, d, e, f, g, h;
    int i;
    for (i = 0; i < 16; i++) {
        w[i] = ((uint32_t)p[4 * i] << 24) | ((uint32_t)p[4 * i + 1] << 16)
             | ((uint32_t)p[4 * i + 2] << 8) | (uint32_t)p[4 * i + 3];
    }
    for (i = 16; i < 64; i++) {
        uint32_t s0 = ROR(w[i - 15], 7) ^ ROR(w[i - 15], 18) ^ (w[i - 15] >> 3);
        uint32_t s1 = ROR(w[i - 2], 17) ^ ROR(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    a = s->state[0]; b = s->state[1]; c = s->state[2]; d = s->state[3];
    e = s->state[4]; f = s->state[5]; g = s->state[6]; h = s->state[7];
    for (i = 0; i < 64; i++) {
        uint32_t S1 = ROR(e, 6) ^ ROR(e, 11) ^ ROR(e, 25);
        uint32_t ch = (e & f) ^ (~e & g);
        uint32_t t1 = h + S1 + ch + SHA256_K[i] + w[i];
        uint32_t S0 = ROR(a, 2) ^ ROR(a, 13) ^ ROR(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = S0 + maj;
        h = g; g = f; f = e; e = d + t1;
        d = c; c = b; b = a; a = t1 + t2;
    }
    s->state[0] += a; s->state[1] += b; s->state[2] += c; s->state[3] += d;
    s->state[4] += e; s->state[5] += f; s->state[6] += g; s->state[7] += h;
}

static void
sha256_update(Sha256 *s, const uint8_t *data, size_t len)
{
    s->length += (uint64_t)len * 8;
    while (len) {
        if (s->buffered == 0 && len >= 64) {
            sha256_block(s, data);
            data += 64;
            len -= 64;
            continue;
        }
        size_t take = 64 - s->buffered;
        if (take > len)
            take = len;
        memcpy(s->buffer + s->buffered, data, take);
        s->buffered += take;
        data += take;
        len -= take;
        if (s->buffered == 64) {
            sha256_block(s, s->buffer);
            s->buffered = 0;
        }
    }
}

static void
sha256_final(Sha256 *s, uint8_t out[32])
{
    uint64_t bits = s->length;
    uint8_t pad = 0x80;
    uint8_t zero = 0;
    sha256_update(s, &pad, 1);
    s->length -= 8;  /* padding is not message length */
    while (s->buffered != 56) {
        sha256_update(s, &zero, 1);
        s->length -= 8;
    }
    uint8_t lenbuf[8];
    int i;
    for (i = 0; i < 8; i++)
        lenbuf[i] = (uint8_t)(bits >> (56 - 8 * i));
    sha256_update(s, lenbuf, 8);
    for (i = 0; i < 8; i++) {
        out[4 * i] = (uint8_t)(s->state[i] >> 24);
        out[4 * i + 1] = (uint8_t)(s->state[i] >> 16);
        out[4 * i + 2] = (uint8_t)(s->state[i] >> 8);
        out[4 * i + 3] = (uint8_t)(s->state[i]);
    }
}

/* ------------------------------------------------------------------ */
/* Growable byte buffer.                                              */
/* ------------------------------------------------------------------ */

typedef struct {
    char *p;
    Py_ssize_t len;
    Py_ssize_t cap;
} Buf;

static int
buf_init(Buf *b)
{
    b->cap = 64;
    b->len = 0;
    b->p = PyMem_Malloc((size_t)b->cap);
    return b->p == NULL ? -1 : 0;
}

static void
buf_free(Buf *b)
{
    PyMem_Free(b->p);
    b->p = NULL;
    b->len = b->cap = 0;
}

static int
buf_reserve(Buf *b, Py_ssize_t extra)
{
    if (b->len + extra <= b->cap)
        return 0;
    Py_ssize_t cap = b->cap;
    while (b->len + extra > cap)
        cap += cap;
    char *np = PyMem_Realloc(b->p, (size_t)cap);
    if (np == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    b->p = np;
    b->cap = cap;
    return 0;
}

static int
buf_put(Buf *b, const char *s, Py_ssize_t n)
{
    if (buf_reserve(b, n) < 0)
        return -1;
    memcpy(b->p + b->len, s, (size_t)n);
    b->len += n;
    return 0;
}

static int
buf_putc(Buf *b, char c)
{
    if (buf_reserve(b, 1) < 0)
        return -1;
    b->p[b->len++] = c;
    return 0;
}

/* Python bytes comparison: lexicographic, shorter-is-smaller on ties. */
static int
buf_cmp(const void *pa, const void *pb)
{
    const Buf *a = (const Buf *)pa;
    const Buf *b = (const Buf *)pb;
    Py_ssize_t m = a->len < b->len ? a->len : b->len;
    if (m > 0) {
        int c = memcmp(a->p, b->p, (size_t)m);
        if (c)
            return c;
    }
    return (a->len > b->len) - (a->len < b->len);
}

/* A growable list of child buffers, for sorted containers. */
typedef struct {
    Buf *items;
    Py_ssize_t len;
    Py_ssize_t cap;
} BufList;

static void
buflist_init(BufList *bl)
{
    bl->items = NULL;
    bl->len = bl->cap = 0;
}

static Buf *
buflist_push(BufList *bl)
{
    if (bl->len == bl->cap) {
        Py_ssize_t cap = bl->cap ? bl->cap * 2 : 8;
        Buf *ni = PyMem_Realloc(bl->items, (size_t)cap * sizeof(Buf));
        if (ni == NULL) {
            PyErr_NoMemory();
            return NULL;
        }
        bl->items = ni;
        bl->cap = cap;
    }
    Buf *b = &bl->items[bl->len];
    if (buf_init(b) < 0) {
        PyErr_NoMemory();
        return NULL;
    }
    bl->len++;
    return b;
}

static void
buflist_free(BufList *bl)
{
    Py_ssize_t i;
    for (i = 0; i < bl->len; i++)
        buf_free(&bl->items[i]);
    PyMem_Free(bl->items);
    bl->items = NULL;
    bl->len = bl->cap = 0;
}

static int
buflist_sort_join(BufList *bl, Buf *out)
{
    Py_ssize_t i;
    if (bl->len > 1)
        qsort(bl->items, (size_t)bl->len, sizeof(Buf), buf_cmp);
    for (i = 0; i < bl->len; i++) {
        if (buf_put(out, bl->items[i].p, bl->items[i].len) < 0)
            return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Module state: sentinel classes bound from Python, interned names.  */
/* ------------------------------------------------------------------ */

static PyObject *g_WaitSteps, *g_WaitUntil, *g_Message, *g_Random;
static PyObject *g_netref;      /* (Network, ReferenceNetwork, RunTrace) */
static PyObject *g_skip_attrs;  /* frozenset of plumbing attribute names */
static long g_max_depth = 40;
static int g_bound = 0;

#define MAX_STACK 64  /* > g_max_depth + 1; checked at bind time */

static PyObject *s_remaining, *s_predicate, *s_sender, *s_dest,
    *s_component, *s_payload, *s_getstate, *s_gi_frame, *s_gi_code,
    *s_co_qualname, *s_f_lasti, *s_f_locals, *s_gi_yieldfrom,
    *s_closure, *s_module, *s_qualname, *s_code, *s_co_firstlineno,
    *s_cell_contents, *s_func, *s_self_attr, *s_self_name, *s_dict,
    *s_slots, *s_items, *s_name;
static PyObject *s_heap_pushes, *s_heap_pops, *s_ready_promotions,
    *s_messages_scanned, *s_fast_path_picks;

static int
intern_all(void)
{
#define INTERN(var, text)                                   \
    do {                                                    \
        var = PyUnicode_InternFromString(text);             \
        if (var == NULL)                                    \
            return -1;                                      \
    } while (0)
    INTERN(s_remaining, "remaining");
    INTERN(s_predicate, "predicate");
    INTERN(s_sender, "sender");
    INTERN(s_dest, "dest");
    INTERN(s_component, "component");
    INTERN(s_payload, "payload");
    INTERN(s_getstate, "getstate");
    INTERN(s_gi_frame, "gi_frame");
    INTERN(s_gi_code, "gi_code");
    INTERN(s_co_qualname, "co_qualname");
    INTERN(s_f_lasti, "f_lasti");
    INTERN(s_f_locals, "f_locals");
    INTERN(s_gi_yieldfrom, "gi_yieldfrom");
    INTERN(s_closure, "__closure__");
    INTERN(s_module, "__module__");
    INTERN(s_qualname, "__qualname__");
    INTERN(s_code, "__code__");
    INTERN(s_co_firstlineno, "co_firstlineno");
    INTERN(s_cell_contents, "cell_contents");
    INTERN(s_func, "__func__");
    INTERN(s_self_attr, "__self__");
    INTERN(s_self_name, "self");
    INTERN(s_dict, "__dict__");
    INTERN(s_slots, "__slots__");
    INTERN(s_items, "items");
    INTERN(s_name, "__name__");
    INTERN(s_heap_pushes, "heap_pushes");
    INTERN(s_heap_pops, "heap_pops");
    INTERN(s_ready_promotions, "ready_promotions");
    INTERN(s_messages_scanned, "messages_scanned");
    INTERN(s_fast_path_picks, "fast_path_picks");
#undef INTERN
    return 0;
}

static int
require_bound(void)
{
    if (!g_bound) {
        PyErr_SetString(PyExc_RuntimeError,
                        "repro._native._core.bind() has not been called");
        return -1;
    }
    return 0;
}

/* getattr(obj, name) with AttributeError -> NULL-without-error,
 * mirroring getattr(obj, name, None) distinguished via *missing. */
static PyObject *
getattr_opt(PyObject *obj, PyObject *name, int *missing)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    *missing = 0;
    if (v == NULL) {
        if (PyErr_ExceptionMatches(PyExc_AttributeError)) {
            PyErr_Clear();
            *missing = 1;
        }
    }
    return v;
}

/* ------------------------------------------------------------------ */
/* Encoder — byte-identical port of repro.explore.state._Encoder.     */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    Py_ssize_t n;
    uint64_t ambig_mask;   /* ints in [0, n) seen at untagged positions */
    int opaque;
    long long nodes;       /* value-tree nodes visited (fp-work metric) */
    long long calls;       /* top-level enc() invocations */
    long long bytes_out;   /* bytes produced by top-level enc() calls */
} EncoderObject;

static int enc_value(EncoderObject *self, PyObject *v, int depth,
                     PyObject **stack, Buf *out);

/* Emit prefix + decimal(int-like) + suffix, e.g. b"i%d;" % value. */
static int
emit_int_token(Buf *out, const char *prefix, PyObject *num,
               const char *suffix)
{
    int overflow = 0;
    long long x;
    PyObject *owned = NULL;
    if (buf_put(out, prefix, (Py_ssize_t)strlen(prefix)) < 0)
        return -1;
    if (!PyLong_Check(num)) {
        owned = PyNumber_Index(num);
        if (owned == NULL)
            return -1;
        num = owned;
    }
    x = PyLong_AsLongLongAndOverflow(num, &overflow);
    if (!overflow) {
        if (x == -1 && PyErr_Occurred()) {
            Py_XDECREF(owned);
            return -1;
        }
        char tmp[32];
        int len = snprintf(tmp, sizeof tmp, "%lld", x);
        if (buf_put(out, tmp, len) < 0) {
            Py_XDECREF(owned);
            return -1;
        }
    }
    else {
        /* Arbitrary precision: decimal digits via the int formatter
         * (never the object's __str__, matching b"%d" semantics). */
        PyObject *dec = PyNumber_ToBase(num, 10);
        if (dec == NULL) {
            Py_XDECREF(owned);
            return -1;
        }
        Py_ssize_t dlen;
        const char *dptr = PyUnicode_AsUTF8AndSize(dec, &dlen);
        if (dptr == NULL || buf_put(out, dptr, dlen) < 0) {
            Py_DECREF(dec);
            Py_XDECREF(owned);
            return -1;
        }
        Py_DECREF(dec);
    }
    Py_XDECREF(owned);
    return buf_put(out, suffix, (Py_ssize_t)strlen(suffix));
}

/* Emit marker + type(value).__name__ + ";" (the ?/c/r branches). */
static int
emit_typename(Buf *out, char marker, PyObject *v)
{
    PyObject *name = PyObject_GetAttr((PyObject *)Py_TYPE(v), s_name);
    if (name == NULL)
        return -1;
    Py_ssize_t nlen;
    const char *nptr = PyUnicode_AsUTF8AndSize(name, &nlen);
    if (nptr == NULL) {
        Py_DECREF(name);
        return -1;
    }
    int rc = buf_putc(out, marker);
    if (rc == 0)
        rc = buf_put(out, nptr, nlen);
    if (rc == 0)
        rc = buf_putc(out, ';');
    Py_DECREF(name);
    return rc;
}

/* enc(getattr(owner, name)) */
static int
enc_attr(EncoderObject *self, PyObject *owner, PyObject *name, int depth,
         PyObject **stack, Buf *out)
{
    PyObject *v = PyObject_GetAttr(owner, name);
    if (v == NULL)
        return -1;
    int rc = enc_value(self, v, depth, stack, out);
    Py_DECREF(v);
    return rc;
}

/* Sorted-items tail shared by dict / generic-object / generator
 * locals: each item is enc(k) + enc(v) in its own buffer, the buffers
 * sorted bytewise and joined.  skip: NULL, a frozenset of keys to
 * drop, or s_self_name to drop the literal key "self". */
static int
enc_sorted_items(EncoderObject *self, PyObject *mapping, PyObject *skip,
                 int depth, PyObject **stack, Buf *out)
{
    BufList bl;
    buflist_init(&bl);
    int rc = -1;

    if (PyDict_CheckExact(mapping)) {
        PyObject *k, *v;
        Py_ssize_t pos = 0;
        while (PyDict_Next(mapping, &pos, &k, &v)) {
            if (skip == g_skip_attrs) {
                int c = PySet_Contains(g_skip_attrs, k);
                if (c < 0)
                    goto done;
                if (c)
                    continue;
            }
            else if (skip == s_self_name) {
                int c = PyObject_RichCompareBool(k, s_self_name, Py_EQ);
                if (c < 0)
                    goto done;
                if (c)
                    continue;
            }
            Buf *item = buflist_push(&bl);
            if (item == NULL)
                goto done;
            /* PyDict_Next borrows; guard against mutation during enc */
            Py_INCREF(k);
            Py_INCREF(v);
            int erc = enc_value(self, k, depth, stack, item);
            if (erc == 0)
                erc = enc_value(self, v, depth, stack, item);
            Py_DECREF(k);
            Py_DECREF(v);
            if (erc < 0)
                goto done;
        }
    }
    else {
        PyObject *items = PyObject_CallMethodNoArgs(mapping, s_items);
        if (items == NULL)
            goto done;
        PyObject *it = PyObject_GetIter(items);
        Py_DECREF(items);
        if (it == NULL)
            goto done;
        PyObject *pair;
        while ((pair = PyIter_Next(it)) != NULL) {
            PyObject *fast = PySequence_Fast(
                pair, "cannot unpack mapping item");
            Py_DECREF(pair);
            if (fast == NULL) {
                Py_DECREF(it);
                goto done;
            }
            if (PySequence_Fast_GET_SIZE(fast) != 2) {
                PyErr_SetString(PyExc_ValueError,
                                "mapping item is not a pair");
                Py_DECREF(fast);
                Py_DECREF(it);
                goto done;
            }
            PyObject *k = PySequence_Fast_GET_ITEM(fast, 0);
            PyObject *v = PySequence_Fast_GET_ITEM(fast, 1);
            int skip_it = 0;
            if (skip == g_skip_attrs) {
                skip_it = PySet_Contains(g_skip_attrs, k);
            }
            else if (skip == s_self_name) {
                skip_it = PyObject_RichCompareBool(k, s_self_name, Py_EQ);
            }
            if (skip_it < 0) {
                Py_DECREF(fast);
                Py_DECREF(it);
                goto done;
            }
            if (!skip_it) {
                Buf *item = buflist_push(&bl);
                int erc = item == NULL ? -1
                    : enc_value(self, k, depth, stack, item);
                if (erc == 0)
                    erc = enc_value(self, v, depth, stack, item);
                if (erc < 0) {
                    Py_DECREF(fast);
                    Py_DECREF(it);
                    goto done;
                }
            }
            Py_DECREF(fast);
        }
        Py_DECREF(it);
        if (PyErr_Occurred())
            goto done;
    }
    rc = buflist_sort_join(&bl, out);
done:
    buflist_free(&bl);
    return rc;
}

/* The encoder core.  Branches, and their ORDER, mirror
 * _Encoder.enc exactly: the grammar is the dedup key. */
static int
enc_value(EncoderObject *self, PyObject *v, int depth, PyObject **stack,
          Buf *out)
{
    self->nodes++;
    if (v == Py_None)
        return buf_put(out, "N;", 2);
    if (v == Py_True)  /* bool before int: True == 1 but is never a pid */
        return buf_put(out, "T;", 2);
    if (v == Py_False)
        return buf_put(out, "F;", 2);
    if (PyLong_Check(v)) {
        int overflow = 0;
        long long x = PyLong_AsLongLongAndOverflow(v, &overflow);
        if (!overflow && x == -1 && PyErr_Occurred())
            return -1;
        if (!overflow && x >= 0 && x < (long long)self->n)
            self->ambig_mask |= (uint64_t)1 << x;
        return emit_int_token(out, "i", v, ";");
    }
    if (PyFloat_Check(v)) {
        PyObject *r = PyObject_Repr(v);
        if (r == NULL)
            return -1;
        Py_ssize_t rlen;
        const char *rptr = PyUnicode_AsUTF8AndSize(r, &rlen);
        int rc = rptr == NULL ? -1 : buf_putc(out, 'f');
        if (rc == 0)
            rc = buf_put(out, rptr, rlen);
        if (rc == 0)
            rc = buf_putc(out, ';');
        Py_DECREF(r);
        return rc;
    }
    if (PyUnicode_Check(v)) {
        PyObject *raw = PyUnicode_AsEncodedString(
            v, "utf-8", "backslashreplace");
        if (raw == NULL)
            return -1;
        char head[32];
        int hlen = snprintf(head, sizeof head, "s%zd:",
                            PyBytes_GET_SIZE(raw));
        int rc = buf_put(out, head, hlen);
        if (rc == 0)
            rc = buf_put(out, PyBytes_AS_STRING(raw),
                         PyBytes_GET_SIZE(raw));
        Py_DECREF(raw);
        return rc;
    }
    if (PyBytes_Check(v)) {
        char head[32];
        int hlen = snprintf(head, sizeof head, "b%zd:",
                            PyBytes_GET_SIZE(v));
        if (buf_put(out, head, hlen) < 0)
            return -1;
        return buf_put(out, PyBytes_AS_STRING(v), PyBytes_GET_SIZE(v));
    }
    if (depth > g_max_depth) {
        self->opaque = 1;
        return emit_typename(out, '?', v);
    }
    for (int i = 0; i < depth; i++) {
        if (stack[i] == v)
            return emit_typename(out, 'c', v);
    }
    stack[depth] = v;
    depth += 1;

    if (PyTuple_Check(v) || PyList_Check(v)) {
        int is_tuple = PyTuple_Check(v);
        if (buf_putc(out, is_tuple ? '(' : '[') < 0)
            return -1;
        if (is_tuple ? PyTuple_CheckExact(v) : PyList_CheckExact(v)) {
            Py_ssize_t size =
                is_tuple ? PyTuple_GET_SIZE(v) : PyList_GET_SIZE(v);
            for (Py_ssize_t i = 0; i < size; i++) {
                PyObject *item = is_tuple ? PyTuple_GET_ITEM(v, i)
                                          : PyList_GET_ITEM(v, i);
                Py_INCREF(item);
                int rc = enc_value(self, item, depth, stack, out);
                Py_DECREF(item);
                if (rc < 0)
                    return -1;
            }
        }
        else {  /* subclass: honor its iteration protocol */
            PyObject *it = PyObject_GetIter(v);
            if (it == NULL)
                return -1;
            PyObject *item;
            while ((item = PyIter_Next(it)) != NULL) {
                int rc = enc_value(self, item, depth, stack, out);
                Py_DECREF(item);
                if (rc < 0) {
                    Py_DECREF(it);
                    return -1;
                }
            }
            Py_DECREF(it);
            if (PyErr_Occurred())
                return -1;
        }
        return buf_putc(out, is_tuple ? ')' : ']');
    }
    if (PyAnySet_Check(v)) {
        if (buf_putc(out, '{') < 0)
            return -1;
        BufList bl;
        buflist_init(&bl);
        PyObject *it = PyObject_GetIter(v);
        if (it == NULL) {
            buflist_free(&bl);
            return -1;
        }
        PyObject *item;
        int failed = 0;
        while ((item = PyIter_Next(it)) != NULL) {
            Buf *child = buflist_push(&bl);
            int rc = child == NULL ? -1
                : enc_value(self, item, depth, stack, child);
            Py_DECREF(item);
            if (rc < 0) {
                failed = 1;
                break;
            }
        }
        Py_DECREF(it);
        if (!failed && PyErr_Occurred())
            failed = 1;
        if (!failed && buflist_sort_join(&bl, out) < 0)
            failed = 1;
        buflist_free(&bl);
        if (failed)
            return -1;
        return buf_putc(out, '}');
    }
    if (PyDict_Check(v)) {
        if (buf_putc(out, '<') < 0)
            return -1;
        if (enc_sorted_items(self, v, NULL, depth, stack, out) < 0)
            return -1;
        return buf_putc(out, '>');
    }

    int isi;
    if ((isi = PyObject_IsInstance(v, g_WaitSteps)) < 0)
        return -1;
    if (isi) {
        PyObject *rem = PyObject_GetAttr(v, s_remaining);
        if (rem == NULL)
            return -1;
        int rc = emit_int_token(out, "W", rem, ";");
        Py_DECREF(rem);
        return rc;  /* a duration, never a pid */
    }
    if ((isi = PyObject_IsInstance(v, g_WaitUntil)) < 0)
        return -1;
    if (isi) {
        if (buf_putc(out, 'U') < 0)
            return -1;
        return enc_attr(self, v, s_predicate, depth, stack, out);
    }
    if ((isi = PyObject_IsInstance(v, g_Message)) < 0)
        return -1;
    if (isi) {
        /* Untagged position: sender/dest are pid-valued, so they go
         * through the plain int branch and feed the accumulator. */
        if (buf_putc(out, 'M') < 0)
            return -1;
        if (enc_attr(self, v, s_sender, depth, stack, out) < 0)
            return -1;
        if (enc_attr(self, v, s_dest, depth, stack, out) < 0)
            return -1;
        if (enc_attr(self, v, s_component, depth, stack, out) < 0)
            return -1;
        return enc_attr(self, v, s_payload, depth, stack, out);
    }
    if ((isi = PyObject_IsInstance(v, g_Random)) < 0)
        return -1;
    if (isi) {
        PyObject *state = PyObject_CallMethodNoArgs(v, s_getstate);
        if (state == NULL)
            return -1;
        PyObject *r = PyObject_Repr(state);
        Py_DECREF(state);
        if (r == NULL)
            return -1;
        Py_ssize_t rlen;
        const char *rptr = PyUnicode_AsUTF8AndSize(r, &rlen);
        if (rptr == NULL) {
            Py_DECREF(r);
            return -1;
        }
        Sha256 sha;
        uint8_t digest[32];
        sha256_init(&sha);
        sha256_update(&sha, (const uint8_t *)rptr, (size_t)rlen);
        sha256_final(&sha, digest);
        Py_DECREF(r);
        if (buf_putc(out, 'R') < 0)
            return -1;
        return buf_put(out, (const char *)digest, 32);
    }
    if (PyGen_Check(v)) {
        PyObject *frame = PyObject_GetAttr(v, s_gi_frame);
        if (frame == NULL)
            return -1;
        PyObject *code = PyObject_GetAttr(v, s_gi_code);
        if (code == NULL) {
            Py_DECREF(frame);
            return -1;
        }
        PyObject *qualname = PyObject_GetAttr(code, s_co_qualname);
        Py_DECREF(code);
        if (qualname == NULL) {
            Py_DECREF(frame);
            return -1;
        }
        int rc;
        if (frame == Py_None) {
            rc = buf_put(out, "gX", 2);
            if (rc == 0)
                rc = enc_value(self, qualname, depth, stack, out);
            Py_DECREF(frame);
            Py_DECREF(qualname);
            return rc;
        }
        rc = buf_putc(out, 'g');
        if (rc == 0)
            rc = enc_value(self, qualname, depth, stack, out);
        Py_DECREF(qualname);
        if (rc < 0) {
            Py_DECREF(frame);
            return -1;
        }
        PyObject *lasti = PyObject_GetAttr(frame, s_f_lasti);
        if (lasti == NULL) {
            Py_DECREF(frame);
            return -1;
        }
        rc = emit_int_token(out, "@", lasti, ";");
        Py_DECREF(lasti);
        if (rc < 0) {
            Py_DECREF(frame);
            return -1;
        }
        PyObject *locals = PyObject_GetAttr(frame, s_f_locals);
        Py_DECREF(frame);
        if (locals == NULL)
            return -1;
        /* "self" is covered by the owning component's walk */
        rc = enc_sorted_items(self, locals, s_self_name, depth, stack, out);
        Py_DECREF(locals);
        if (rc < 0)
            return -1;
        if (buf_putc(out, '/') < 0)
            return -1;
        return enc_attr(self, v, s_gi_yieldfrom, depth, stack, out);
    }
    if (PyFunction_Check(v)) {
        if (buf_putc(out, 'L') < 0)
            return -1;
        if (enc_attr(self, v, s_module, depth, stack, out) < 0)
            return -1;
        if (enc_attr(self, v, s_qualname, depth, stack, out) < 0)
            return -1;
        PyObject *code = PyObject_GetAttr(v, s_code);
        if (code == NULL)
            return -1;
        PyObject *lineno = PyObject_GetAttr(code, s_co_firstlineno);
        Py_DECREF(code);
        if (lineno == NULL)
            return -1;
        int rc = emit_int_token(out, "#", lineno, ";");  /* never a pid */
        Py_DECREF(lineno);
        if (rc < 0)
            return -1;
        if (buf_putc(out, '(') < 0)
            return -1;
        PyObject *closure = PyObject_GetAttr(v, s_closure);
        if (closure == NULL)
            return -1;
        if (closure != Py_None) {
            Py_ssize_t ncells = PyTuple_GET_SIZE(closure);
            for (Py_ssize_t i = 0; i < ncells; i++) {
                PyObject *cell = PyTuple_GET_ITEM(closure, i);
                if (enc_attr(self, cell, s_cell_contents, depth, stack,
                             out) < 0) {
                    Py_DECREF(closure);
                    return -1;
                }
            }
        }
        Py_DECREF(closure);
        return buf_putc(out, ')');
    }
    if (PyMethod_Check(v)) {
        if (buf_putc(out, 'm') < 0)
            return -1;
        PyObject *func = PyObject_GetAttr(v, s_func);
        if (func == NULL)
            return -1;
        int rc = enc_attr(self, func, s_qualname, depth, stack, out);
        Py_DECREF(func);
        if (rc < 0)
            return -1;
        return enc_attr(self, v, s_self_attr, depth, stack, out);
    }
    if ((isi = PyObject_IsInstance(v, g_netref)) < 0)
        return -1;
    if (isi)  /* backrefs that slipped past the skip list */
        return emit_typename(out, 'r', v);

    int missing;
    PyObject *state = getattr_opt(v, s_dict, &missing);
    if (state == NULL && !missing)
        return -1;
    if (state == NULL) {
        PyObject *slots =
            getattr_opt((PyObject *)Py_TYPE(v), s_slots, &missing);
        if (slots == NULL && !missing)
            return -1;
        if (slots != NULL) {
            /* {name: getattr(v, name) for name in slots if hasattr} —
             * built as a real dict so duplicate slot names collapse
             * exactly as in the Python comprehension. */
            state = PyDict_New();
            if (state == NULL) {
                Py_DECREF(slots);
                return -1;
            }
            PyObject *it = PyObject_GetIter(slots);
            Py_DECREF(slots);
            if (it == NULL) {
                Py_DECREF(state);
                return -1;
            }
            PyObject *nm;
            while ((nm = PyIter_Next(it)) != NULL) {
                int miss;
                PyObject *val = getattr_opt(v, nm, &miss);
                if (val == NULL && !miss) {
                    Py_DECREF(nm);
                    Py_DECREF(it);
                    Py_DECREF(state);
                    return -1;
                }
                if (val != NULL) {
                    int src = PyDict_SetItem(state, nm, val);
                    Py_DECREF(val);
                    if (src < 0) {
                        Py_DECREF(nm);
                        Py_DECREF(it);
                        Py_DECREF(state);
                        return -1;
                    }
                }
                Py_DECREF(nm);
            }
            Py_DECREF(it);
            if (PyErr_Occurred()) {
                Py_DECREF(state);
                return -1;
            }
        }
    }
    if (state != NULL) {
        int rc = buf_putc(out, 'o');
        if (rc == 0)
            rc = enc_attr(self, (PyObject *)Py_TYPE(v), s_module, depth,
                          stack, out);
        if (rc == 0)
            rc = enc_attr(self, (PyObject *)Py_TYPE(v), s_qualname, depth,
                          stack, out);
        if (rc == 0)
            rc = buf_putc(out, '<');
        if (rc == 0)
            rc = enc_sorted_items(self, state, g_skip_attrs, depth, stack,
                                  out);
        if (rc == 0)
            rc = buf_putc(out, '>');
        Py_DECREF(state);
        return rc;
    }
    self->opaque = 1;
    return emit_typename(out, '?', v);
}

/* -- Encoder: Python-visible type ---------------------------------- */

static PyObject *
Encoder_new(PyTypeObject *type, PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"n", NULL};
    Py_ssize_t n;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "n", kwlist, &n))
        return NULL;
    if (n < 0 || n > 64) {
        PyErr_SetString(PyExc_ValueError,
                        "native encoder supports 0 <= n <= 64");
        return NULL;
    }
    EncoderObject *self = (EncoderObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->n = n;
    self->ambig_mask = 0;
    self->opaque = 0;
    self->nodes = 0;
    self->calls = 0;
    self->bytes_out = 0;
    return (PyObject *)self;
}

static PyObject *
Encoder_enc(EncoderObject *self, PyObject *v)
{
    if (require_bound() < 0)
        return NULL;
    PyObject *stack[MAX_STACK];
    Buf out;
    if (buf_init(&out) < 0)
        return PyErr_NoMemory();
    if (enc_value(self, v, 0, stack, &out) < 0) {
        buf_free(&out);
        return NULL;
    }
    self->calls++;
    self->bytes_out += out.len;
    PyObject *res = PyBytes_FromStringAndSize(out.p, out.len);
    buf_free(&out);
    return res;
}

/* -- single-crossing unit builders ----------------------------------
 * FingerprintEngine caches per-host/buffer/decision/operation units,
 * each encoded with isolated ambiguity/opacity accumulators (its
 * ``_unit`` protocol).  Done from Python that costs a closure call
 * plus four accumulator attribute round-trips per unit; these methods
 * run the whole save/encode/package/restore cycle in ONE C call and
 * return ``(bytes, ambig_mask:int, opaque:bool)``. */

typedef struct {
    uint64_t saved_mask;
    int saved_opaque;
    Buf out;
} UnitCtx;

static int
unit_enter(EncoderObject *self, UnitCtx *ctx)
{
    if (require_bound() < 0)
        return -1;
    if (buf_init(&ctx->out) < 0) {
        PyErr_NoMemory();
        return -1;
    }
    ctx->saved_mask = self->ambig_mask;
    ctx->saved_opaque = self->opaque;
    self->ambig_mask = 0;
    self->opaque = 0;
    return 0;
}

static PyObject *
unit_exit(EncoderObject *self, UnitCtx *ctx, int rc, long long roots)
{
    PyObject *result = NULL;
    if (rc == 0) {
        PyObject *data = PyBytes_FromStringAndSize(ctx->out.p, ctx->out.len);
        PyObject *mask =
            data ? PyLong_FromUnsignedLongLong(self->ambig_mask) : NULL;
        if (data != NULL && mask != NULL &&
            (result = PyTuple_New(3)) != NULL) {
            PyTuple_SET_ITEM(result, 0, data);
            PyTuple_SET_ITEM(result, 1, mask);
            PyTuple_SET_ITEM(result, 2, PyBool_FromLong(self->opaque));
            data = mask = NULL; /* refs stolen by the tuple */
            self->calls += roots;
            self->bytes_out += ctx->out.len;
        }
        Py_XDECREF(data);
        Py_XDECREF(mask);
    }
    buf_free(&ctx->out);
    self->ambig_mask = ctx->saved_mask;
    self->opaque = ctx->saved_opaque;
    return result;
}

static PyObject *
Encoder_enc_pair(EncoderObject *self, PyObject *args)
{
    PyObject *a, *b;
    if (!PyArg_ParseTuple(args, "OO:enc_pair", &a, &b))
        return NULL;
    UnitCtx ctx;
    if (unit_enter(self, &ctx) < 0)
        return NULL;
    PyObject *stack[MAX_STACK];
    int rc = enc_value(self, a, 0, stack, &ctx.out);
    if (rc == 0)
        rc = enc_value(self, b, 0, stack, &ctx.out);
    return unit_exit(self, &ctx, rc, 2);
}

static PyObject *
Encoder_enc_decision(EncoderObject *self, PyObject *args)
{
    PyObject *component, *value;
    int postcrash;
    if (!PyArg_ParseTuple(args, "OOp:enc_decision", &component, &value,
                          &postcrash))
        return NULL;
    UnitCtx ctx;
    if (unit_enter(self, &ctx) < 0)
        return NULL;
    PyObject *stack[MAX_STACK];
    int rc = enc_value(self, component, 0, stack, &ctx.out);
    if (rc == 0)
        rc = enc_value(self, value, 0, stack, &ctx.out);
    if (rc == 0)
        rc = buf_put(&ctx.out, postcrash ? "T;" : "F;", 2);
    return unit_exit(self, &ctx, rc, 2);
}

static PyObject *
Encoder_enc_operation(EncoderObject *self, PyObject *args)
{
    PyObject *component, *kind, *opargs, *invoke, *response, *opresult;
    if (!PyArg_ParseTuple(args, "OOOOOO:enc_operation", &component, &kind,
                          &opargs, &invoke, &response, &opresult))
        return NULL;
    UnitCtx ctx;
    if (unit_enter(self, &ctx) < 0)
        return NULL;
    PyObject *stack[MAX_STACK];
    int rc = enc_value(self, component, 0, stack, &ctx.out);
    if (rc == 0)
        rc = enc_value(self, kind, 0, stack, &ctx.out);
    if (rc == 0)
        rc = enc_value(self, opargs, 0, stack, &ctx.out);
    if (rc == 0)
        rc = emit_int_token(&ctx.out, "@", invoke, ";");
    if (rc == 0) {
        if (response == Py_None)
            rc = buf_put(&ctx.out, "N;", 2);
        else
            rc = emit_int_token(&ctx.out, "@", response, ";");
    }
    if (rc == 0)
        rc = enc_value(self, opresult, 0, stack, &ctx.out);
    return unit_exit(self, &ctx, rc, 4);
}

static PyObject *
Encoder_enc_host(EncoderObject *self, PyObject *args)
{
    int started;
    PyObject *items, *tasks;
    if (!PyArg_ParseTuple(args, "pOO:enc_host", &started, &items, &tasks))
        return NULL;
    UnitCtx ctx;
    if (unit_enter(self, &ctx) < 0)
        return NULL;
    PyObject *stack[MAX_STACK];
    long long roots = 0;
    PyObject *fast_items = NULL, *fast_tasks = NULL;
    int rc = buf_putc(&ctx.out, 'H');
    if (rc == 0)
        rc = buf_put(&ctx.out, started ? "T;" : "F;", 2);
    if (rc == 0) {
        fast_items = PySequence_Fast(items, "enc_host items must be a sequence");
        if (fast_items == NULL)
            rc = -1;
    }
    if (rc == 0) {
        Py_ssize_t count = PySequence_Fast_GET_SIZE(fast_items);
        for (Py_ssize_t i = 0; rc == 0 && i < count; i++) {
            PyObject *pair = PySequence_Fast_GET_ITEM(fast_items, i);
            if (!PyTuple_Check(pair) || PyTuple_GET_SIZE(pair) != 2) {
                PyErr_SetString(PyExc_TypeError,
                                "enc_host items must be (name, component)");
                rc = -1;
                break;
            }
            rc = enc_value(self, PyTuple_GET_ITEM(pair, 0), 0, stack,
                           &ctx.out);
            if (rc == 0)
                rc = enc_value(self, PyTuple_GET_ITEM(pair, 1), 0, stack,
                               &ctx.out);
            roots += 2;
        }
    }
    if (rc == 0)
        rc = buf_putc(&ctx.out, '|');
    if (rc == 0) {
        fast_tasks = PySequence_Fast(tasks, "enc_host tasks must be a sequence");
        if (fast_tasks == NULL)
            rc = -1;
    }
    if (rc == 0) {
        Py_ssize_t count = PySequence_Fast_GET_SIZE(fast_tasks);
        for (Py_ssize_t i = 0; rc == 0 && i < count; i++) {
            PyObject *triple = PySequence_Fast_GET_ITEM(fast_tasks, i);
            if (!PyTuple_Check(triple) || PyTuple_GET_SIZE(triple) != 3) {
                PyErr_SetString(PyExc_TypeError,
                                "enc_host tasks must be (started, wait, gen)");
                rc = -1;
                break;
            }
            int task_started = PyObject_IsTrue(PyTuple_GET_ITEM(triple, 0));
            if (task_started < 0) {
                rc = -1;
                break;
            }
            rc = buf_putc(&ctx.out, 't');
            if (rc == 0)
                rc = buf_put(&ctx.out, task_started ? "T;" : "F;", 2);
            if (rc == 0)
                rc = enc_value(self, PyTuple_GET_ITEM(triple, 1), 0, stack,
                               &ctx.out);
            if (rc == 0)
                rc = enc_value(self, PyTuple_GET_ITEM(triple, 2), 0, stack,
                               &ctx.out);
            roots += 2;
        }
    }
    Py_XDECREF(fast_items);
    Py_XDECREF(fast_tasks);
    return unit_exit(self, &ctx, rc, roots);
}

static PyObject *
Encoder_get_n(EncoderObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->n);
}

static PyObject *
Encoder_get_mask(EncoderObject *self, void *closure)
{
    return PyLong_FromUnsignedLongLong(self->ambig_mask);
}

static int
Encoder_set_mask(EncoderObject *self, PyObject *value, void *closure)
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete ambig_mask");
        return -1;
    }
    unsigned long long mask = PyLong_AsUnsignedLongLong(value);
    if (mask == (unsigned long long)-1 && PyErr_Occurred())
        return -1;
    self->ambig_mask = mask;
    return 0;
}

static PyObject *
Encoder_get_nodes(EncoderObject *self, void *closure)
{
    return PyLong_FromLongLong(self->nodes);
}

static PyObject *
Encoder_get_calls(EncoderObject *self, void *closure)
{
    return PyLong_FromLongLong(self->calls);
}

static PyObject *
Encoder_get_bytes(EncoderObject *self, void *closure)
{
    return PyLong_FromLongLong(self->bytes_out);
}

static PyObject *
Encoder_get_ambig(EncoderObject *self, void *closure)
{
    PyObject *result = PySet_New(NULL);
    if (result == NULL)
        return NULL;
    uint64_t mask = self->ambig_mask;
    for (int bit = 0; mask; bit++, mask >>= 1) {
        if (mask & 1) {
            PyObject *num = PyLong_FromLong(bit);
            if (num == NULL || PySet_Add(result, num) < 0) {
                Py_XDECREF(num);
                Py_DECREF(result);
                return NULL;
            }
            Py_DECREF(num);
        }
    }
    return result;
}

static int
Encoder_set_ambig(EncoderObject *self, PyObject *value, void *closure)
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete ambig");
        return -1;
    }
    uint64_t mask = 0;
    PyObject *it = PyObject_GetIter(value);
    if (it == NULL)
        return -1;
    PyObject *item;
    while ((item = PyIter_Next(it)) != NULL) {
        long long x = PyLong_AsLongLong(item);
        Py_DECREF(item);
        if (x == -1 && PyErr_Occurred()) {
            Py_DECREF(it);
            return -1;
        }
        if (x < 0 || x >= 64) {
            PyErr_SetString(PyExc_ValueError,
                            "ambig members must be in [0, 64)");
            Py_DECREF(it);
            return -1;
        }
        mask |= (uint64_t)1 << x;
    }
    Py_DECREF(it);
    if (PyErr_Occurred())
        return -1;
    self->ambig_mask = mask;
    return 0;
}

static PyObject *
Encoder_get_opaque(EncoderObject *self, void *closure)
{
    return PyBool_FromLong(self->opaque);
}

static int
Encoder_set_opaque(EncoderObject *self, PyObject *value, void *closure)
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete opaque");
        return -1;
    }
    int truth = PyObject_IsTrue(value);
    if (truth < 0)
        return -1;
    self->opaque = truth;
    return 0;
}

static PyMethodDef Encoder_methods[] = {
    {"enc", (PyCFunction)Encoder_enc, METH_O,
     "Canonical self-delimiting byte encoding of a Python value."},
    {"enc_pair", (PyCFunction)Encoder_enc_pair, METH_VARARGS,
     "Encode two values as one isolated unit -> (bytes, mask, opaque)."},
    {"enc_decision", (PyCFunction)Encoder_enc_decision, METH_VARARGS,
     "Encode (component, value, postcrash) -> (bytes, mask, opaque)."},
    {"enc_operation", (PyCFunction)Encoder_enc_operation, METH_VARARGS,
     "Encode (component, kind, args, invoke, response, result) as one "
     "unit -> (bytes, mask, opaque)."},
    {"enc_host", (PyCFunction)Encoder_enc_host, METH_VARARGS,
     "Encode (started, [(name, component)], [(started, wait, gen)]) as "
     "one host unit -> (bytes, mask, opaque)."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Encoder_getset[] = {
    {"n", (getter)Encoder_get_n, NULL, NULL, NULL},
    {"nodes", (getter)Encoder_get_nodes, NULL,
     "Value-tree nodes encoded so far (the fp-work metric).", NULL},
    {"calls", (getter)Encoder_get_calls, NULL,
     "Top-level enc() invocations (explore_native_calls).", NULL},
    {"bytes_encoded", (getter)Encoder_get_bytes, NULL,
     "Total bytes produced by enc() (native_encode_bytes).", NULL},
    {"ambig", (getter)Encoder_get_ambig, (setter)Encoder_set_ambig,
     "Ints in [0, n) seen at untagged positions (as a set).", NULL},
    {"ambig_mask", (getter)Encoder_get_mask, (setter)Encoder_set_mask,
     "The ambiguity accumulator as a raw bit mask (bit p = pid p).",
     NULL},
    {"opaque", (getter)Encoder_get_opaque, (setter)Encoder_set_opaque,
     "Whether an unencodable value was reached.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject EncoderType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._core.Encoder",
    .tp_basicsize = sizeof(EncoderObject),
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Compiled port of repro.explore.state._Encoder.",
    .tp_new = Encoder_new,
    .tp_methods = Encoder_methods,
    .tp_getset = Encoder_getset,
};

/* ------------------------------------------------------------------ */
/* NetworkCore — the indexed per-destination buffer store.            */
/* ------------------------------------------------------------------ */

typedef struct {
    long long ready_at;
    long long msg_id;
    long long send_time;
    PyObject *msg;
} FEntry;

typedef struct {
    long long send_time;
    long long msg_id;
} OEntry;

typedef struct {
    FEntry *fut;            /* min-heap on (ready_at, msg_id) */
    Py_ssize_t fut_len, fut_cap;
    long long *rid;         /* ready pool: ids ascending, ... */
    PyObject **rmsg;        /* ...parallel owned message refs */
    Py_ssize_t rdy_len, rdy_cap;
    OEntry *old;            /* lazy-deleted min-heap on (send_time, id) */
    Py_ssize_t old_len, old_cap;
} DBuf;

typedef struct {
    PyObject_HEAD
    Py_ssize_t n;
    DBuf *bufs;
    PyObject *perf;         /* the owning network's PerfCounters */
} CoreObject;

static int
bump(PyObject *perf, PyObject *name, long long delta)
{
    if (delta == 0 || perf == Py_None)
        return 0;
    PyObject *cur = PyObject_GetAttr(perf, name);
    if (cur == NULL)
        return -1;
    PyObject *dv = PyLong_FromLongLong(delta);
    if (dv == NULL) {
        Py_DECREF(cur);
        return -1;
    }
    PyObject *nv = PyNumber_Add(cur, dv);
    Py_DECREF(cur);
    Py_DECREF(dv);
    if (nv == NULL)
        return -1;
    int rc = PyObject_SetAttr(perf, name, nv);
    Py_DECREF(nv);
    return rc;
}

#define FUT_LT(a, b)                                       \
    ((a).ready_at < (b).ready_at                           \
     || ((a).ready_at == (b).ready_at && (a).msg_id < (b).msg_id))
#define OLD_LT(a, b)                                       \
    ((a).send_time < (b).send_time                         \
     || ((a).send_time == (b).send_time && (a).msg_id < (b).msg_id))

static int
fut_push(DBuf *d, FEntry e)
{
    if (d->fut_len == d->fut_cap) {
        Py_ssize_t cap = d->fut_cap ? d->fut_cap * 2 : 8;
        FEntry *nf = PyMem_Realloc(d->fut, (size_t)cap * sizeof(FEntry));
        if (nf == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        d->fut = nf;
        d->fut_cap = cap;
    }
    Py_ssize_t i = d->fut_len++;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) / 2;
        if (!FUT_LT(e, d->fut[parent]))
            break;
        d->fut[i] = d->fut[parent];
        i = parent;
    }
    d->fut[i] = e;
    return 0;
}

static FEntry
fut_pop(DBuf *d)
{
    FEntry top = d->fut[0];
    FEntry last = d->fut[--d->fut_len];
    Py_ssize_t i = 0, len = d->fut_len;
    for (;;) {
        Py_ssize_t child = 2 * i + 1;
        if (child >= len)
            break;
        if (child + 1 < len && FUT_LT(d->fut[child + 1], d->fut[child]))
            child += 1;
        if (!FUT_LT(d->fut[child], last))
            break;
        d->fut[i] = d->fut[child];
        i = child;
    }
    if (len > 0)
        d->fut[i] = last;
    return top;
}

static int
old_push(DBuf *d, OEntry e)
{
    if (d->old_len == d->old_cap) {
        Py_ssize_t cap = d->old_cap ? d->old_cap * 2 : 8;
        OEntry *no = PyMem_Realloc(d->old, (size_t)cap * sizeof(OEntry));
        if (no == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        d->old = no;
        d->old_cap = cap;
    }
    Py_ssize_t i = d->old_len++;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) / 2;
        if (!OLD_LT(e, d->old[parent]))
            break;
        d->old[i] = d->old[parent];
        i = parent;
    }
    d->old[i] = e;
    return 0;
}

static void
old_pop(DBuf *d)
{
    OEntry last = d->old[--d->old_len];
    Py_ssize_t i = 0, len = d->old_len;
    for (;;) {
        Py_ssize_t child = 2 * i + 1;
        if (child >= len)
            break;
        if (child + 1 < len && OLD_LT(d->old[child + 1], d->old[child]))
            child += 1;
        if (!OLD_LT(d->old[child], last))
            break;
        d->old[i] = d->old[child];
        i = child;
    }
    if (len > 0)
        d->old[i] = last;
}

/* Index of msg_id in the ready pool, or the insertion point
 * (found flag distinguishes). */
static Py_ssize_t
rdy_search(DBuf *d, long long msg_id, int *found)
{
    Py_ssize_t lo = 0, hi = d->rdy_len;
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) / 2;
        if (d->rid[mid] < msg_id)
            lo = mid + 1;
        else
            hi = mid;
    }
    *found = lo < d->rdy_len && d->rid[lo] == msg_id;
    return lo;
}

static int
rdy_insert(DBuf *d, long long msg_id, PyObject *msg)
{
    if (d->rdy_len == d->rdy_cap) {
        Py_ssize_t cap = d->rdy_cap ? d->rdy_cap * 2 : 8;
        long long *ni = PyMem_Realloc(d->rid, (size_t)cap * sizeof(long long));
        if (ni == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        d->rid = ni;
        PyObject **nm = PyMem_Realloc(d->rmsg, (size_t)cap * sizeof(PyObject *));
        if (nm == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        d->rmsg = nm;
        d->rdy_cap = cap;
    }
    int found;
    Py_ssize_t at = rdy_search(d, msg_id, &found);
    memmove(d->rid + at + 1, d->rid + at,
            (size_t)(d->rdy_len - at) * sizeof(long long));
    memmove(d->rmsg + at + 1, d->rmsg + at,
            (size_t)(d->rdy_len - at) * sizeof(PyObject *));
    d->rid[at] = msg_id;
    d->rmsg[at] = msg;  /* takes ownership */
    d->rdy_len++;
    return 0;
}

/* Remove index at from the ready pool; returns the owned message. */
static PyObject *
rdy_take(DBuf *d, Py_ssize_t at)
{
    PyObject *msg = d->rmsg[at];
    memmove(d->rid + at, d->rid + at + 1,
            (size_t)(d->rdy_len - at - 1) * sizeof(long long));
    memmove(d->rmsg + at, d->rmsg + at + 1,
            (size_t)(d->rdy_len - at - 1) * sizeof(PyObject *));
    d->rdy_len--;
    return msg;
}

/* Move every future entry with ready_at <= now into the ready pool.
 * Counter accounting matches Network._promote exactly. */
static int
core_promote(CoreObject *self, DBuf *d, long long now)
{
    if (d->fut_len == 0 || d->fut[0].ready_at > now)
        return 0;
    long long moved = 0;
    while (d->fut_len > 0 && d->fut[0].ready_at <= now) {
        FEntry e = fut_pop(d);
        if (rdy_insert(d, e.msg_id, e.msg) < 0) {
            Py_DECREF(e.msg);
            return -1;
        }
        OEntry o = {e.send_time, e.msg_id};
        if (old_push(d, o) < 0)
            return -1;
        moved++;
    }
    if (bump(self->perf, s_heap_pops, moved) < 0
        || bump(self->perf, s_heap_pushes, moved) < 0
        || bump(self->perf, s_ready_promotions, moved) < 0)
        return -1;
    return 0;
}

static int
core_check_dest(CoreObject *self, Py_ssize_t dest)
{
    if (dest < 0 || dest >= self->n) {
        PyErr_Format(PyExc_IndexError, "destination %zd out of range", dest);
        return -1;
    }
    return 0;
}

static PyObject *
Core_new(PyTypeObject *type, PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"n", "perf", NULL};
    Py_ssize_t n;
    PyObject *perf;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "nO", kwlist, &n, &perf))
        return NULL;
    if (n < 0) {
        PyErr_SetString(PyExc_ValueError, "n must be >= 0");
        return NULL;
    }
    CoreObject *self = (CoreObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->n = n;
    self->bufs = PyMem_Calloc((size_t)(n ? n : 1), sizeof(DBuf));
    if (self->bufs == NULL) {
        Py_DECREF(self);
        return PyErr_NoMemory();
    }
    Py_INCREF(perf);
    self->perf = perf;
    return (PyObject *)self;
}

static void
Core_dealloc(CoreObject *self)
{
    if (self->bufs != NULL) {
        for (Py_ssize_t dest = 0; dest < self->n; dest++) {
            DBuf *d = &self->bufs[dest];
            for (Py_ssize_t i = 0; i < d->fut_len; i++)
                Py_DECREF(d->fut[i].msg);
            for (Py_ssize_t i = 0; i < d->rdy_len; i++)
                Py_DECREF(d->rmsg[i]);
            PyMem_Free(d->fut);
            PyMem_Free(d->rid);
            PyMem_Free(d->rmsg);
            PyMem_Free(d->old);
        }
        PyMem_Free(self->bufs);
    }
    Py_XDECREF(self->perf);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
Core_push(CoreObject *self, PyObject *args)
{
    Py_ssize_t dest;
    long long ready_at, msg_id, send_time;
    PyObject *msg;
    if (!PyArg_ParseTuple(args, "nLLLO", &dest, &ready_at, &msg_id,
                          &send_time, &msg))
        return NULL;
    if (core_check_dest(self, dest) < 0)
        return NULL;
    FEntry e = {ready_at, msg_id, send_time, msg};
    Py_INCREF(msg);
    if (fut_push(&self->bufs[dest], e) < 0) {
        Py_DECREF(msg);
        return NULL;
    }
    if (bump(self->perf, s_heap_pushes, 1) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* The oldest-first fast path of Network.pick_for: promote, then pop
 * (send_time, msg_id) heap entries until one is live in the ready
 * pool.  Perf accounting mirrors the Python loop per iteration. */
static PyObject *
Core_pick_oldest(CoreObject *self, PyObject *args)
{
    Py_ssize_t dest;
    long long now;
    if (!PyArg_ParseTuple(args, "nL", &dest, &now))
        return NULL;
    if (core_check_dest(self, dest) < 0)
        return NULL;
    DBuf *d = &self->bufs[dest];
    if (core_promote(self, d, now) < 0)
        return NULL;
    if (d->rdy_len == 0)
        Py_RETURN_NONE;
    long long pops = 0;
    while (d->old_len > 0) {
        long long msg_id = d->old[0].msg_id;
        int found;
        Py_ssize_t at = rdy_search(d, msg_id, &found);
        old_pop(d);
        pops++;
        if (found) {
            if (bump(self->perf, s_heap_pops, pops) < 0
                || bump(self->perf, s_fast_path_picks, 1) < 0
                || bump(self->perf, s_messages_scanned, 1) < 0)
                return NULL;
            return rdy_take(d, at);  /* ownership to caller */
        }
        /* stale: delivered via the generic path */
    }
    /* Unreachable while the promote/remove invariant holds: every
     * ready msg_id has a live oldest-heap entry. */
    bump(self->perf, s_heap_pops, pops);
    PyErr_SetString(PyExc_SystemError,
                    "oldest-first heap desynced from ready pool");
    return NULL;
}

/* ready_for / the generic pick path: promote, count a full scan, and
 * return the ready pool in ascending msg_id order. */
static PyObject *
Core_ready_list(CoreObject *self, PyObject *args)
{
    Py_ssize_t dest;
    long long now;
    if (!PyArg_ParseTuple(args, "nL", &dest, &now))
        return NULL;
    if (core_check_dest(self, dest) < 0)
        return NULL;
    DBuf *d = &self->bufs[dest];
    if (core_promote(self, d, now) < 0)
        return NULL;
    if (bump(self->perf, s_messages_scanned, (long long)d->rdy_len) < 0)
        return NULL;
    PyObject *result = PyList_New(d->rdy_len);
    if (result == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < d->rdy_len; i++) {
        Py_INCREF(d->rmsg[i]);
        PyList_SET_ITEM(result, i, d->rmsg[i]);
    }
    return result;
}

static PyObject *
Core_remove(CoreObject *self, PyObject *args)
{
    Py_ssize_t dest;
    long long msg_id;
    if (!PyArg_ParseTuple(args, "nL", &dest, &msg_id))
        return NULL;
    if (core_check_dest(self, dest) < 0)
        return NULL;
    DBuf *d = &self->bufs[dest];
    int found;
    Py_ssize_t at = rdy_search(d, msg_id, &found);
    if (!found) {
        PyErr_Format(PyExc_KeyError, "%lld", msg_id);
        return NULL;
    }
    PyObject *msg = rdy_take(d, at);
    Py_DECREF(msg);
    Py_RETURN_NONE;
}

static PyObject *
Core_pending_count(CoreObject *self, PyObject *args)
{
    PyObject *dest_obj = Py_None;
    if (!PyArg_ParseTuple(args, "|O", &dest_obj))
        return NULL;
    long long total = 0;
    if (dest_obj == Py_None) {
        for (Py_ssize_t dest = 0; dest < self->n; dest++) {
            DBuf *d = &self->bufs[dest];
            total += d->fut_len + d->rdy_len;
        }
    }
    else {
        Py_ssize_t dest = PyNumber_AsSsize_t(dest_obj, PyExc_IndexError);
        if (dest == -1 && PyErr_Occurred())
            return NULL;
        if (core_check_dest(self, dest) < 0)
            return NULL;
        DBuf *d = &self->bufs[dest];
        total = d->fut_len + d->rdy_len;
    }
    return PyLong_FromLongLong(total);
}

static PyObject *
Core_next_ready_time(CoreObject *self, PyObject *args)
{
    PyObject *dests;
    long long now;
    if (!PyArg_ParseTuple(args, "OL", &dests, &now))
        return NULL;
    PyObject *it = PyObject_GetIter(dests);
    if (it == NULL)
        return NULL;
    long long best = 0;
    int have_best = 0;
    PyObject *item;
    while ((item = PyIter_Next(it)) != NULL) {
        Py_ssize_t dest = PyNumber_AsSsize_t(item, PyExc_IndexError);
        Py_DECREF(item);
        if (dest == -1 && PyErr_Occurred()) {
            Py_DECREF(it);
            return NULL;
        }
        if (core_check_dest(self, dest) < 0) {
            Py_DECREF(it);
            return NULL;
        }
        DBuf *d = &self->bufs[dest];
        if (d->rdy_len > 0) {
            Py_DECREF(it);
            return PyLong_FromLongLong(now);
        }
        if (d->fut_len > 0) {
            long long top = d->fut[0].ready_at;
            if (top <= now) {  /* deliverable, just not yet promoted */
                Py_DECREF(it);
                return PyLong_FromLongLong(now);
            }
            if (!have_best || top < best) {
                best = top;
                have_best = 1;
            }
        }
    }
    Py_DECREF(it);
    if (PyErr_Occurred())
        return NULL;
    if (!have_best)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(best);
}

/* Every in-flight message for dest: future entries (heap-array order)
 * then ready messages ascending — the multiset the fingerprint walks. */
static PyObject *
Core_in_flight(CoreObject *self, PyObject *args)
{
    Py_ssize_t dest;
    if (!PyArg_ParseTuple(args, "n", &dest))
        return NULL;
    if (core_check_dest(self, dest) < 0)
        return NULL;
    DBuf *d = &self->bufs[dest];
    PyObject *result = PyList_New(d->fut_len + d->rdy_len);
    if (result == NULL)
        return NULL;
    Py_ssize_t at = 0;
    for (Py_ssize_t i = 0; i < d->fut_len; i++, at++) {
        Py_INCREF(d->fut[i].msg);
        PyList_SET_ITEM(result, at, d->fut[i].msg);
    }
    for (Py_ssize_t i = 0; i < d->rdy_len; i++, at++) {
        Py_INCREF(d->rmsg[i]);
        PyList_SET_ITEM(result, at, d->rmsg[i]);
    }
    return result;
}

static PyMethodDef Core_methods[] = {
    {"push", (PyCFunction)Core_push, METH_VARARGS,
     "push(dest, ready_at, msg_id, send_time, msg) — enqueue."},
    {"pick_oldest", (PyCFunction)Core_pick_oldest, METH_VARARGS,
     "pick_oldest(dest, now) — oldest-first fast-path pick or None."},
    {"ready_list", (PyCFunction)Core_ready_list, METH_VARARGS,
     "ready_list(dest, now) — ready messages, ascending msg_id."},
    {"remove", (PyCFunction)Core_remove, METH_VARARGS,
     "remove(dest, msg_id) — drop one message from the ready pool."},
    {"pending_count", (PyCFunction)Core_pending_count, METH_VARARGS,
     "pending_count([dest]) — buffered message count."},
    {"next_ready_time", (PyCFunction)Core_next_ready_time, METH_VARARGS,
     "next_ready_time(dests, now) — earliest deliverable time or None."},
    {"in_flight", (PyCFunction)Core_in_flight, METH_VARARGS,
     "in_flight(dest) — every buffered message for dest."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject CoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._core.NetworkCore",
    .tp_basicsize = sizeof(CoreObject),
    .tp_dealloc = (destructor)Core_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Compiled indexed per-destination message buffers.",
    .tp_new = Core_new,
    .tp_methods = Core_methods,
};

/* ------------------------------------------------------------------ */
/* Module                                                             */
/* ------------------------------------------------------------------ */

static PyObject *
core_bind(PyObject *module, PyObject *args)
{
    PyObject *wait_steps, *wait_until, *message, *rnd, *network,
        *reference, *run_trace, *skip_attrs;
    long max_depth;
    if (!PyArg_ParseTuple(args, "OOOOOOOOl", &wait_steps, &wait_until,
                          &message, &rnd, &network, &reference,
                          &run_trace, &skip_attrs, &max_depth))
        return NULL;
    if (max_depth < 0 || max_depth > MAX_STACK - 2) {
        PyErr_Format(PyExc_ValueError,
                     "max_depth must be in [0, %d]", MAX_STACK - 2);
        return NULL;
    }
    PyObject *netref = PyTuple_Pack(3, network, reference, run_trace);
    if (netref == NULL)
        return NULL;
    Py_INCREF(wait_steps);
    Py_XSETREF(g_WaitSteps, wait_steps);
    Py_INCREF(wait_until);
    Py_XSETREF(g_WaitUntil, wait_until);
    Py_INCREF(message);
    Py_XSETREF(g_Message, message);
    Py_INCREF(rnd);
    Py_XSETREF(g_Random, rnd);
    Py_XSETREF(g_netref, netref);
    Py_INCREF(skip_attrs);
    Py_XSETREF(g_skip_attrs, skip_attrs);
    g_max_depth = max_depth;
    g_bound = 1;
    Py_RETURN_NONE;
}

static PyMethodDef module_methods[] = {
    {"bind", core_bind, METH_VARARGS,
     "bind(WaitSteps, WaitUntil, Message, Random, Network, "
     "ReferenceNetwork, RunTrace, skip_attrs, max_depth) — register "
     "the sentinel classes the encoder dispatches on."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef core_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._native._core",
    .m_doc = "Compiled hot core: fingerprint encoder + network buffers.",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__core(void)
{
    if (intern_all() < 0)
        return NULL;
    PyObject *m = PyModule_Create(&core_module);
    if (m == NULL)
        return NULL;
    if (PyType_Ready(&EncoderType) < 0 || PyType_Ready(&CoreType) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&EncoderType);
    if (PyModule_AddObject(m, "Encoder", (PyObject *)&EncoderType) < 0) {
        Py_DECREF(&EncoderType);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&CoreType);
    if (PyModule_AddObject(m, "NetworkCore", (PyObject *)&CoreType) < 0) {
        Py_DECREF(&CoreType);
        Py_DECREF(m);
        return NULL;
    }
    if (PyModule_AddIntConstant(m, "VERSION", 1) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
