"""Analysis: problem-level property verdicts and run statistics.

* :mod:`repro.analysis.properties` — transcriptions of the problem
  specifications (consensus §4.1, QC §5, NBAC §7.1) into checkers over
  run traces;
* :mod:`repro.analysis.stats` — cost metrics (messages, steps,
  latency) and small experiment-table helpers.
"""

from repro.analysis.properties import (
    ProblemVerdict,
    check_consensus,
    check_qc,
    check_nbac,
)
from repro.analysis.stats import run_metrics, aggregate

__all__ = [
    "ProblemVerdict",
    "check_consensus",
    "check_qc",
    "check_nbac",
    "run_metrics",
    "aggregate",
]
