"""Run validity: the conditions Section 2 imposes on ⟨F, H, I, S, T⟩.

"A number of straightforward conditions are imposed on the components
of runs ... processes don't take steps after crashing, ... correct
processes take infinitely many steps and messages are not lost."  The
simulator is *supposed* to enforce these by construction; this checker
re-derives them from a recorded trace, so the enforcement itself is
under test (and any future scheduler/network extension that breaks the
model gets caught by the validity suite rather than by a mysterious
algorithm failure).

Finitisations: "infinitely many steps" becomes a minimum step share for
every correct process under a fair scheduler; "messages are not lost"
becomes a bound on how long a fair run may leave the oldest pending
message undelivered (both skipped when the run used an unfair
adversary on purpose).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.sim.trace import RunTrace


@dataclass
class RunValidityVerdict:
    ok: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def check_run_validity(
    trace: RunTrace,
    fair: bool = True,
    min_step_share: float = 0.2,
) -> RunValidityVerdict:
    """Check the model's run conditions on a recorded trace.

    ``fair`` asserts the liveness-flavoured clauses too (step shares);
    pass False for runs driven by deliberately unfair adversaries.
    ``min_step_share`` is the finitised "infinitely many steps": every
    correct process must take at least this fraction of its fair share
    (``steps / n``) of the steps.
    """
    violations: List[str] = []
    pattern = trace.pattern

    # (1) Times strictly increase along the schedule.
    last_time = 0
    for step in trace.steps:
        if step.time <= last_time:
            violations.append(
                f"non-increasing step time {step.time} after {last_time}"
            )
            break
        last_time = step.time

    # (2) No process steps at or after its crash time.
    for step in trace.steps:
        if pattern.crashed(step.pid, step.time):
            violations.append(
                f"crashed process {step.pid} took a step at t={step.time} "
                f"(crashed at {pattern.crash_time(step.pid)})"
            )
            break

    # (3) Causality: every received message was sent strictly earlier.
    for step in trace.steps:
        if step.message is not None and step.message.send_time >= step.time:
            violations.append(
                f"message received at t={step.time} was sent at "
                f"t={step.message.send_time}"
            )
            break

    # (4) Conservation: deliveries never exceed sends.
    if trace.messages_delivered > trace.messages_sent:
        violations.append(
            f"delivered {trace.messages_delivered} > sent "
            f"{trace.messages_sent}"
        )

    if fair and trace.steps:
        # (5) Every correct process keeps taking steps.  Only sensible
        # over the window where it was schedulable alongside everyone.
        total = len(trace.steps)
        fair_share = total / pattern.n
        for pid in pattern.correct:
            taken = trace.step_count(pid)
            if taken < fair_share * min_step_share:
                violations.append(
                    f"correct process {pid} took only {taken} of "
                    f"{total} steps (fair share ~{fair_share:.0f})"
                )

    return RunValidityVerdict(ok=not violations, violations=violations)
