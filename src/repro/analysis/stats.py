"""Run statistics and experiment-table helpers.

The paper reports no performance numbers (it is a theory paper), so the
benchmark harness reports the costs that *are* meaningful for the
reproduced algorithms: messages sent/delivered, steps taken, and
decision latency in simulated steps.  :func:`aggregate` turns repeated
seeded runs into the min/mean/max rows the EXPERIMENTS.md tables use.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence

from repro.sim.trace import RunTrace


def run_metrics(trace: RunTrace, component: str) -> Dict[str, Any]:
    """Cost metrics of one run, keyed for table assembly."""
    return {
        "n": trace.pattern.n,
        "faulty": len(trace.pattern.faulty),
        "steps": len(trace.steps),
        "messages_sent": trace.messages_sent,
        "messages_delivered": trace.messages_delivered,
        "decision_latency": trace.decision_latency(component),
        "stop_reason": trace.stop_reason,
    }


def aggregate(rows: Sequence[Mapping[str, Any]], keys: Iterable[str]) -> Dict[str, Dict[str, float]]:
    """min/mean/max per numeric key over a set of run-metric rows.

    Rows with a ``None`` value for a key (e.g. no decision latency when
    a run legitimately lost liveness) are excluded from that key's
    aggregate; the count of included rows is reported alongside.
    """
    out: Dict[str, Dict[str, float]] = {}
    for key in keys:
        values: List[float] = [
            float(row[key]) for row in rows if row.get(key) is not None
        ]
        if not values:
            out[key] = {"count": 0}
            continue
        out[key] = {
            "count": len(values),
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
        }
    return out


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """A fixed-width text table (benchmark harness output)."""
    widths = [len(h) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [_cell(v) for v in row]
        rendered_rows.append(rendered)
        widths = [max(w, len(c)) for w, c in zip(widths, rendered)]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for rendered in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(rendered, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
