"""Problem-level property checkers.

Transcribes the specifications of consensus (§4.1), quittable consensus
(§5) and non-blocking atomic commit (§7.1) into predicates over
recorded run traces.  Each checker returns a :class:`ProblemVerdict`
splitting the verdict into the specification's named clauses, so a test
failure says *which* property broke, not just "wrong".

Termination is finitised as usual: on a bounded run it means "every
correct process decided within the horizon".  A run whose scheduler or
delivery policy is intentionally unfair (``fair = False``) loses its
claim to Termination but never to the safety clauses — the adversarial
test suite leans on that distinction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

from repro.qc.spec import Q
from repro.sim.trace import RunTrace


@dataclass
class ProblemVerdict:
    """Per-clause verdict for one agreement problem on one run."""

    ok: bool
    termination: bool
    agreement: bool
    validity: bool
    violations: List[str] = field(default_factory=list)
    decisions: Dict[int, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok


def _gather(trace: RunTrace, component: str) -> Dict[int, Any]:
    return {
        d.pid: d.value for d in trace.decisions if d.component == component
    }


def _decision_times(trace: RunTrace, component: str) -> Dict[int, int]:
    return {d.pid: d.time for d in trace.decisions if d.component == component}


def _check_termination(
    trace: RunTrace, decisions: Mapping[int, Any], violations: List[str]
) -> bool:
    missing = sorted(trace.pattern.correct - set(decisions))
    if missing:
        violations.append(
            f"Termination violated: correct processes {missing} never decided "
            f"(horizon {trace.horizon}, stop: {trace.stop_reason})"
        )
        return False
    return True


def _check_agreement(decisions: Mapping[int, Any], violations: List[str]) -> bool:
    values = {repr(v) for v in decisions.values()}
    if len(values) > 1:
        violations.append(
            f"Uniform Agreement violated: decisions {dict(decisions)}"
        )
        return False
    return True


# ----------------------------------------------------------------------
# Consensus (§4.1)
# ----------------------------------------------------------------------
def check_consensus(
    trace: RunTrace,
    proposals: Mapping[int, Any],
    component: str = "consensus",
) -> ProblemVerdict:
    """Termination + Uniform Agreement + Validity (decided value was
    proposed by some process)."""
    violations: List[str] = []
    decisions = _gather(trace, component)

    termination = _check_termination(trace, decisions, violations)
    agreement = _check_agreement(decisions, violations)

    validity = True
    proposed = set(map(repr, proposals.values()))
    for pid, value in sorted(decisions.items()):
        if repr(value) not in proposed:
            validity = False
            violations.append(
                f"Validity violated: process {pid} decided {value!r}, "
                f"which no process proposed"
            )

    ok = termination and agreement and validity
    return ProblemVerdict(ok, termination, agreement, validity, violations, decisions)


# ----------------------------------------------------------------------
# Quittable consensus (§5)
# ----------------------------------------------------------------------
def check_qc(
    trace: RunTrace,
    proposals: Mapping[int, Any],
    component: str = "qc",
) -> ProblemVerdict:
    """QC validity: a 0/1-type decision must have been proposed; a Q
    decision requires a failure to have previously occurred."""
    violations: List[str] = []
    decisions = _gather(trace, component)
    times = _decision_times(trace, component)

    termination = _check_termination(trace, decisions, violations)
    agreement = _check_agreement(decisions, violations)

    validity = True
    proposed = set(map(repr, proposals.values()))
    first_crash = trace.pattern.first_crash_time()
    for pid, value in sorted(decisions.items()):
        if value is Q:
            if first_crash is None or times[pid] < first_crash:
                validity = False
                violations.append(
                    f"Validity violated: process {pid} decided Q at time "
                    f"{times[pid]} but no failure had occurred"
                )
        elif repr(value) not in proposed:
            validity = False
            violations.append(
                f"Validity violated: process {pid} decided {value!r}, "
                f"which no process proposed"
            )

    ok = termination and agreement and validity
    return ProblemVerdict(ok, termination, agreement, validity, violations, decisions)


# ----------------------------------------------------------------------
# Non-blocking atomic commit (§7.1)
# ----------------------------------------------------------------------
COMMIT = "Commit"
ABORT = "Abort"


def check_nbac(
    trace: RunTrace,
    votes: Mapping[int, str],
    component: str = "nbac",
) -> ProblemVerdict:
    """NBAC validity: Commit requires all-Yes votes; Abort requires a No
    vote or a prior failure."""
    violations: List[str] = []
    decisions = _gather(trace, component)
    times = _decision_times(trace, component)

    termination = _check_termination(trace, decisions, violations)
    agreement = _check_agreement(decisions, violations)

    validity = True
    all_yes = all(v == "Yes" for v in votes.values())
    some_no = any(v == "No" for v in votes.values())
    first_crash = trace.pattern.first_crash_time()
    for pid, value in sorted(decisions.items()):
        if value == COMMIT:
            if not all_yes:
                validity = False
                violations.append(
                    f"Validity violated: process {pid} decided Commit but "
                    f"votes were {dict(votes)}"
                )
        elif value == ABORT:
            failed_before = first_crash is not None and first_crash <= times[pid]
            if not some_no and not failed_before:
                validity = False
                violations.append(
                    f"Validity violated: process {pid} decided Abort at time "
                    f"{times[pid]} with all-Yes votes and no prior failure"
                )
        else:
            validity = False
            violations.append(
                f"Validity violated: process {pid} returned {value!r}, "
                f"not Commit/Abort"
            )

    ok = termination and agreement and validity
    return ProblemVerdict(ok, termination, agreement, validity, violations, decisions)
