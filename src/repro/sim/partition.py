"""Transient network partitions.

The asynchronous model has no *permanent* partitions — links are
reliable — but arbitrarily long message delays are indistinguishable
from a partition that eventually heals.  :class:`TransientPartition` is
a delivery policy that withholds all cross-group messages during a
window ``[start, end)`` and delivers normally (oldest-first, including
the backlog) afterwards: a faithful model of a healed partition, and
fair over the whole run.

This is the adversary under which quorum-based algorithms show their
character: during the partition, at most one side's quorums can make
progress (Σ's Intersection guarantees the sides cannot *both* decide),
and after healing the backlog drains and liveness resumes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set

from repro.sim.network import DeliveryPolicy, Message


class TransientPartition(DeliveryPolicy):
    """Splits Π into groups for a time window, then heals.

    Parameters
    ----------
    groups:
        Disjoint process groups; messages between different groups are
        withheld during the window.  Processes not listed form an
        implicit extra group.
    start / end:
        The partition window in simulated time (``end`` exclusive).
        After ``end``, everything (including the backlog) flows again.
        ``start == end`` is the *empty* window — a partition that never
        takes effect — which is what a shrinking counterexample
        degenerates to, so it is legal rather than an error.
    """

    fair = True  # the partition heals, so delivery is eventually fair

    def __init__(self, groups: Sequence[Set[int]], start: int, end: int):
        if start > end:
            raise ValueError(f"partition window [{start}, {end}) is inverted")
        seen: Set[int] = set()
        for group in groups:
            if seen & set(group):
                raise ValueError("groups must be disjoint")
            seen |= set(group)
        self.groups = [set(g) for g in groups]
        self.start = start
        self.end = end

    def _group_of(self, pid: int) -> int:
        for index, group in enumerate(self.groups):
            if pid in group:
                return index
        return len(self.groups)  # the implicit remainder group

    def severed(self, msg: Message, now: int) -> bool:
        if not self.start <= now < self.end:
            return False
        return self._group_of(msg.sender) != self._group_of(msg.dest)

    def choose(
        self, ready: List[Message], now: int, rng: random.Random
    ) -> Optional[Message]:
        passable = [m for m in ready if not self.severed(m, now)]
        if not passable:
            return None
        return min(passable, key=lambda m: (m.send_time, m.msg_id))
