"""Named-stream seeded randomness.

A simulation draws randomness for several independent purposes —
scheduling, message delays, crash sampling, detector histories, and
algorithm-internal coin flips.  Seeding a single ``random.Random`` for
all of them makes experiments brittle: adding one extra draw in the
scheduler would reshuffle every crash time.  :class:`RngStreams` derives
one independent child generator per named purpose from a root seed, so
each dimension of a run is reproducible in isolation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """A stable 64-bit seed derived from ``root_seed`` and ``name``.

    Uses SHA-256 rather than ``hash()`` so that derived seeds are stable
    across interpreter runs and PYTHONHASHSEED settings.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A family of independent, reproducible RNG streams.

    >>> streams = RngStreams(42)
    >>> a = streams.get("scheduler").random()
    >>> b = RngStreams(42).get("scheduler").random()
    >>> a == b
    True
    """

    def __init__(self, root_seed: int):
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """The generator for stream ``name`` (created on first use)."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngStreams":
        """A child family, independent of this one and of other forks."""
        return RngStreams(derive_seed(self.root_seed, f"fork:{name}"))
