"""Perf counters for the simulation hot path.

A :class:`PerfCounters` value is a flat bag of integers incremented by
the network buffers, the run loop and the detector history while a
:class:`~repro.sim.system.System` executes.  The counters are
*observability*, not semantics: two runs of the same spec on different
engine implementations (reference vs indexed buffers, time-leap on vs
off) produce identical traces but legitimately different counters — so
they are excluded from every determinism digest and only ever compared
as performance evidence.

Counter semantics (see ``docs/PERF.md`` for the full story):

``ticks``
    Steps recorded by the run loop, including synthesized λ-steps.
``lambda_steps``
    Steps in which no message was delivered.
``ticks_leaped`` / ``leap_windows``
    λ-steps synthesized by the quiescence time-leap, and how many
    contiguous windows they came in.
``messages_sent`` / ``messages_delivered``
    Mirror of the network's send/deliver totals.
``messages_scanned``
    Buffer entries examined while building ready lists or picking a
    message.  The headline machine-independent metric: the reference
    buffer scans O(pending) per pick, the indexed buffer amortizes to
    O(1 + log pending); ``messages_scanned / messages_delivered`` is
    what the perf-smoke CI job gates on.
``ready_promotions``
    Messages moved from the not-yet-ready heap into the ready pool.
``heap_pushes`` / ``heap_pops``
    Indexed-buffer heap operations (zero on the reference engine).
``fast_path_picks``
    Deliveries served by the oldest-first indexed fast path without
    materializing a ready list.
``detector_value_calls`` / ``detector_cache_hits``
    :meth:`FailureDetectorHistory.value` calls and LRU memo hits.
``explore_runs`` / ``explore_states``
    Bounded model checker (:mod:`repro.explore`): controlled replays
    executed, and distinct choice-tree nodes whose post-state was
    fingerprinted.
``explore_dedup_hits`` / ``explore_por_pruned``
    Subtrees cut by the visited-state table, and scheduler/delivery
    alternatives suppressed by the partial-order reduction.
``explore_violations``
    Explored traces whose clause-level verdict broke a safety clause.
``explore_replay_steps``
    Choices served from a replayed prefix rather than freshly made —
    the measurable redundancy of stateless replay-based search (see
    ``docs/EXPLORER.md``).
``explore_fp_nodes``
    Value-tree nodes visited while encoding state fingerprints.  The
    headline explorer metric: the incremental engine re-encodes only
    what changed since the last tick, the naive engine re-encodes
    everything; their ``explore_fp_nodes`` ratio is what the
    explore-smoke CI bench gates on.
``explore_fp_host_hits`` / ``explore_fp_host_misses``
    Per-host canonical encodings reused from (respectively recomputed
    into) the incremental fingerprint cache.
``explore_opaque_tokens``
    Fingerprints poisoned by an unencodable value: each one gets a
    never-matching token, so dedup silently degrades toward plain DFS.
    Nonzero values here explain a low dedup-hit rate.
``explore_native_calls`` / ``native_encode_bytes``
    Work served by the compiled encoder (``repro._native``): top-level
    ``enc()`` invocations and the bytes they produced.  Both stay zero
    on the pure-Python paths, so their presence in a report proves the
    native core actually ran (the CI native jobs assert exactly that).
``explore_shards``
    Subtree shards dispatched by the sharded search
    (:mod:`repro.explore.shard`).
``frontier_claims`` / ``frontier_claim_round_trips``
    Work items leased from the store-backed frontier queue, and the
    claim *transactions* that leased them.  Their ratio is the batch
    amortization (:meth:`~repro.store.db.ResultStore.claim_work_batch`
    leases up to a fair share of the pending queue per round trip);
    ``claims == round_trips`` means batching bought nothing.
``frontier_heartbeats``
    Coalesced liveness signals sent by frontier workers — one UPDATE
    covering every lease the worker holds
    (:meth:`~repro.store.db.ResultStore.heartbeat_worker`), however
    many items are in flight.
``exchange_pulls``
    Cross-shard visited-set delta pulls executed against the store
    (:meth:`repro.store.exchange.FingerprintExchange.pull`).  Each is
    one read round-trip; the rowid cursor plus the minimum-interval
    gate keep this far below the visited-set write count.
``store_busy_retries``
    SQLITE_BUSY / "database is locked" errors the campaign database
    retried through jittered backoff (:mod:`repro.store.db`).  Nonzero
    values are expected once many worker processes share one store
    file; a climbing trend means the store is becoming the bottleneck.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

FIELDS = (
    "ticks",
    "lambda_steps",
    "ticks_leaped",
    "leap_windows",
    "messages_sent",
    "messages_delivered",
    "messages_scanned",
    "ready_promotions",
    "heap_pushes",
    "heap_pops",
    "fast_path_picks",
    "detector_value_calls",
    "detector_cache_hits",
    "explore_runs",
    "explore_states",
    "explore_dedup_hits",
    "explore_por_pruned",
    "explore_violations",
    "explore_replay_steps",
    "explore_fp_nodes",
    "explore_fp_host_hits",
    "explore_fp_host_misses",
    "explore_opaque_tokens",
    "explore_native_calls",
    "native_encode_bytes",
    "explore_shards",
    "frontier_claims",
    "frontier_claim_round_trips",
    "frontier_heartbeats",
    "exchange_pulls",
    "store_busy_retries",
)


class PerfCounters:
    """A flat, mergeable registry of hot-path counters."""

    __slots__ = FIELDS

    def __init__(self) -> None:
        for name in FIELDS:
            setattr(self, name, 0)

    # -- export / aggregation ------------------------------------------
    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in FIELDS}

    def merge(self, other: Mapping[str, int]) -> None:
        """Add another counter snapshot (dict or PerfCounters) in place."""
        if isinstance(other, PerfCounters):
            other = other.as_dict()
        for name, value in other.items():
            if name in self.__slots__:
                setattr(self, name, getattr(self, name) + int(value))

    # -- derived ratios -------------------------------------------------
    def scanned_per_delivery(self) -> float:
        """Buffer entries examined per delivered message (amortized)."""
        if not self.messages_delivered:
            return 0.0
        return self.messages_scanned / self.messages_delivered

    def leap_ratio(self) -> float:
        """Fraction of recorded steps synthesized by the time-leap."""
        if not self.ticks:
            return 0.0
        return self.ticks_leaped / self.ticks

    def detector_hit_rate(self) -> float:
        if not self.detector_value_calls:
            return 0.0
        return self.detector_cache_hits / self.detector_value_calls

    def __repr__(self) -> str:
        busy = {k: v for k, v in self.as_dict().items() if v}
        return f"PerfCounters({busy})"


def aggregate(snapshots: Iterable[Mapping[str, int]]) -> Dict[str, int]:
    """Sum counter dicts (e.g. the ``perf`` field of many RunSummaries)."""
    total = PerfCounters()
    for snap in snapshots:
        if snap:
            total.merge(snap)
    return total.as_dict()
