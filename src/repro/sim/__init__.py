"""Discrete-event simulation substrate for the asynchronous model.

This package implements the computational model of Section 2 of the
paper (which is the model of Chandra–Toueg [3, 4]):

* processes take atomic steps ⟨p, m, d⟩: receive one message (possibly
  the empty message λ), query the failure detector, send messages and
  change state (:mod:`repro.sim.process`);
* reliable links with finite but unbounded, variable delays
  (:mod:`repro.sim.network`);
* an adversarial scheduler chooses which process steps next
  (:mod:`repro.sim.scheduler`);
* a failure pattern dictates crashes; crashed processes take no further
  steps (:mod:`repro.sim.system`);
* every run is recorded as a schedule-with-times plus decision and
  operation records (:mod:`repro.sim.trace`).

Determinism: a run is a pure function of (components, environment
sample, seed).  The RNG is split into independent named streams so that
perturbing one dimension (say, message delays) does not reshuffle the
others (say, crash times).
"""

from repro.sim.system import System, SystemBuilder
from repro.sim.process import Component, ProcessContext, WaitUntil, WaitSteps
from repro.sim.network import Network, DelayModel, ConstantDelay, UniformDelay
from repro.sim.scheduler import (
    Scheduler,
    RandomScheduler,
    RoundRobinScheduler,
    StarvationScheduler,
)
from repro.sim.trace import RunTrace, Step, Decision, OperationRecord

__all__ = [
    "System",
    "SystemBuilder",
    "Component",
    "ProcessContext",
    "WaitUntil",
    "WaitSteps",
    "Network",
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "Scheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "StarvationScheduler",
    "RunTrace",
    "Step",
    "Decision",
    "OperationRecord",
]
