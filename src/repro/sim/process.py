"""Process runtime: components, tasklets, and step semantics.

A simulated process is a stack of :class:`Component` instances — an
algorithm layer, optionally a detector-implementation layer, optionally
instrumentation middleware.  A process step (the paper's atomic
⟨p, m, d⟩) proceeds as:

1. the incoming message (if any) is dispatched to the component whose
   name matches its routing tag;
2. every component's :meth:`Component.on_step` hook runs (periodic
   logic — heartbeats, retries);
3. runnable *tasklets* are resumed.

Tasklets let multi-phase algorithms (ABD's read/write rounds, Paxos
ballots, the Figure 1 and Figure 3 extractions) be written as ordinary
sequential generators instead of exploded state machines::

    def run(self):
        acks = self.fresh_set()
        self.broadcast(("WRITE", ts, v))
        yield WaitUntil(lambda: self.quorum_ack(acks))
        ...

Everything a tasklet does while resumed — sending, reading the
detector, completing operations — happens inside the atomic step that
resumed it, which preserves the model's step granularity.
"""

from __future__ import annotations

from abc import ABC

from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.sim.network import Message, Network
from repro.sim.trace import (
    Decision,
    DeliveredMessage,
    OperationRecord,
    RunTrace,
    Step,
)


from repro.sim.tasklets import TaskletDriver, WaitSteps, WaitUntil


class ProcessContext:
    """Per-process services handed to components by the host system.

    Provides message sending, detector access, decision/operation
    recording, and the local clock.  All sends are routed through the
    shared :class:`~repro.sim.network.Network` and stamped with the
    current time.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        network: Network,
        trace: RunTrace,
    ):
        self.pid = pid
        self.n = n
        self._network = network
        self._trace = trace
        self.now: int = 0
        self._detector_provider: Callable[[], Any] = lambda: None
        self._outgoing_hooks: List[Callable[[Message], None]] = []
        self._incoming_hooks: List[Callable[[DeliveredMessage, Dict[str, Any]], None]] = []
        self.crashed = False

    # -- communication --------------------------------------------------
    def send(self, dest: int, component: str, payload: Any) -> None:
        """Send ``payload`` to ``dest``'s component named ``component``."""
        msg = self._network.send(self.pid, dest, component, payload, self.now)
        for hook in self._outgoing_hooks:
            hook(msg)

    def broadcast(self, component: str, payload: Any, include_self: bool = True) -> None:
        """Send ``payload`` to every process (optionally including self)."""
        for dest in range(self.n):
            if dest == self.pid and not include_self:
                continue
            self.send(dest, component, payload)

    # -- failure detector ------------------------------------------------
    def detector(self) -> Any:
        """The failure detector value ``d`` for the current step."""
        return self._detector_provider()

    # -- recording --------------------------------------------------------
    def decide(self, component: str, value: Any) -> None:
        """Record an irrevocable decision by ``component``."""
        self._trace.record_decision(
            Decision(time=self.now, pid=self.pid, component=component, value=value)
        )

    def new_operation(
        self, component: str, kind: str, args: Tuple[Any, ...] = ()
    ) -> OperationRecord:
        """Open an invocation/response interval record."""
        return self._trace.new_operation(self.pid, component, kind, args, self.now)

    def complete_operation(self, record: OperationRecord, result: Any) -> None:
        """Close an operation record with its result."""
        if not record.pending:
            raise RuntimeError(f"operation {record.op_id} completed twice")
        record.response_time = self.now
        record.result = result

    def annotation_history(self, key: str) -> "SampledHistory":
        """A shared per-run :class:`SampledHistory` stored under
        ``trace.annotations[key]`` — how emulated detectors (Figures 1
        and 3) expose their output streams to the spec checkers."""
        from repro.core.history import SampledHistory

        hist = self._trace.annotations.get(key)
        if hist is None:
            hist = SampledHistory(self.n)
            self._trace.annotations[key] = hist
        return hist

    # -- middleware hooks --------------------------------------------------
    def add_outgoing_hook(self, hook: Callable[[Message], None]) -> None:
        self._outgoing_hooks.append(hook)

    def add_incoming_hook(
        self, hook: Callable[[DeliveredMessage, Dict[str, Any]], None]
    ) -> None:
        self._incoming_hooks.append(hook)


class Component(ABC):
    """One layer of a process: message handlers plus periodic logic.

    Subclasses set :attr:`name` (the routing tag for their messages) and
    override :meth:`on_message` / :meth:`on_step` / :meth:`on_start`.
    Helper methods (:meth:`send`, :meth:`broadcast`, :meth:`spawn`, ...)
    become available once the component is bound to its host.
    """

    name: str = "component"

    def __init__(self) -> None:
        self.ctx: ProcessContext = None  # type: ignore[assignment]
        self._host: "ProcessHost" = None  # type: ignore[assignment]

    # -- lifecycle (override as needed) -----------------------------------
    def on_start(self) -> None:
        """Called once before the first step of the process."""

    def on_message(self, sender: int, payload: Any, meta: Dict[str, Any]) -> None:
        """Handle a message routed to this component."""

    def on_step(self) -> None:
        """Called at every step of the process (after message dispatch)."""

    @property
    def quiescent(self) -> bool:
        """Whether a λ-step cannot change this component's state.

        The quiescence time-leap (``System(..., time_leap=True)``) may
        skip a process's λ-steps only while every component reports
        quiescent *and* no tasklet is runnable.  The default detects
        purely message-driven components — those that never override
        :meth:`on_step` (the base hook is a no-op, so a λ-step runs no
        component code).  Components with self-driving periodic logic
        (timeouts, heartbeats) inherit ``False`` automatically;
        override this property only if such logic is conditionally
        idle and you can prove a skipped step is a no-op.
        """
        return type(self).on_step is Component.on_step

    # -- services ----------------------------------------------------------
    @property
    def pid(self) -> int:
        return self.ctx.pid

    @property
    def n(self) -> int:
        return self.ctx.n

    @property
    def now(self) -> int:
        return self.ctx.now

    def send(self, dest: int, payload: Any) -> None:
        self.ctx.send(dest, self.name, payload)

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        self.ctx.broadcast(self.name, payload, include_self=include_self)

    def detector(self) -> Any:
        return self.ctx.detector()

    def decide(self, value: Any) -> None:
        self.ctx.decide(self.name, value)

    def spawn(self, gen: Generator, name: str = "") -> None:
        """Register a tasklet generator to be driven by this process."""
        self._host.spawn(gen, name or f"{self.name}@{self.pid}")

    def _bind(self, ctx: ProcessContext, host: "ProcessHost") -> None:
        self.ctx = ctx
        self._host = host


class ProcessHost:
    """Runs one process: owns its components, tasklets and step loop."""

    def __init__(self, pid: int, ctx: ProcessContext, components: Iterable[Component]):
        self.pid = pid
        self.ctx = ctx
        self.components: Dict[str, Component] = {}
        for comp in components:
            if comp.name in self.components:
                raise ValueError(
                    f"duplicate component name {comp.name!r} at process {pid}"
                )
            comp._bind(ctx, self)
            self.components[comp.name] = comp
        self._driver = TaskletDriver()
        self._started = False
        self.steps_taken = 0

    def spawn(self, gen: Generator, name: str = "") -> None:
        self._driver.spawn(gen, name)

    def component(self, name: str) -> Component:
        return self.components[name]

    @property
    def quiescent(self) -> bool:
        """Whether a λ-step of this process would be a state no-op.

        True once the process has started, no tasklet is pending, and
        every component reports :attr:`Component.quiescent`.  An
        unstarted process is never quiescent — its first step runs
        ``on_start`` hooks that may send messages or spawn tasklets.
        """
        return (
            self._started
            and not self._driver.active_count
            and all(comp.quiescent for comp in self.components.values())
        )

    # ------------------------------------------------------------------
    # The atomic step ⟨p, m, d⟩
    # ------------------------------------------------------------------
    def take_step(self, now: int, message: Optional[Message]) -> Optional[DeliveredMessage]:
        """Execute one atomic step; returns the delivered-message record."""
        self.ctx.now = now
        if not self._started:
            self._started = True
            for comp in list(self.components.values()):
                comp.on_start()
            # Tasklets spawned in on_start get a first advance below.

        delivered: Optional[DeliveredMessage] = None
        if message is not None:
            delivered = DeliveredMessage(
                msg_id=message.msg_id,
                sender=message.sender,
                component=message.component,
                payload=message.payload,
                send_time=message.send_time,
            )
            for hook in self.ctx._incoming_hooks:
                hook(delivered, message.meta)
            comp = self.components.get(message.component)
            if comp is None:
                raise RuntimeError(
                    f"process {self.pid} has no component {message.component!r} "
                    f"for message {message.payload!r}"
                )
            comp.on_message(message.sender, message.payload, message.meta)

        for comp in list(self.components.values()):
            comp.on_step()

        self._driver.advance()
        self.steps_taken += 1
        return delivered
