"""Output probes: sampling emulated detector outputs into histories.

The extraction algorithms (Figures 1 and 3) continuously maintain an
output variable per process (Σ-output_i, Ψ-output_p).  To judge the
extraction against a detector specification, that variable must be
observed as a history ``H(p, t)``.  :class:`OutputRecorder` samples a
sibling component's ``output()`` at every step of its process and
appends it to a :class:`~repro.core.history.SampledHistory` shared via
``trace.annotations``.
"""

from __future__ import annotations

from typing import Any

from repro.sim.process import Component


class OutputRecorder(Component):
    """Samples ``host.component(source).output()`` each step.

    By default only *changes* are recorded (plus the first sample):
    between two recorded samples the output was constant, so the spec
    checkers lose nothing, and histories stay small on long runs.
    """

    name = "probe"

    def __init__(self, source: str, annotation_key: str, changes_only: bool = True):
        super().__init__()
        self.source = source
        self.annotation_key = annotation_key
        self.changes_only = changes_only
        self._has_recorded = False
        self._last: Any = None

    def on_step(self) -> None:
        value = self._host.component(self.source).output()  # type: ignore[attr-defined]
        if self.changes_only and self._has_recorded and value == self._last:
            return
        history = self.ctx.annotation_history(self.annotation_key)
        history.record(self.pid, self.now, value)
        self._has_recorded = True
        self._last = value
