"""Tasklet driving, shared by real processes and virtual runtimes.

A *tasklet* is a generator that encodes a multi-phase protocol as
straight-line code, yielding :class:`WaitUntil` / :class:`WaitSteps`
conditions between phases.  :class:`TaskletDriver` owns a set of
tasklets and advances every runnable one once per step.

The driver is deliberately host-agnostic: the real
:class:`~repro.sim.process.ProcessHost` uses one per process, and the
CHT-style simulation of Figure 3 (:mod:`repro.qc.cht.simulation`) uses
one per *simulated* process, so the very same protocol-core code runs
in both worlds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List


class WaitUntil:
    """Resume when ``predicate()`` is truthy; its value is sent back in.

    ``collected = yield WaitUntil(lambda: self.acks_quorum())`` both
    waits for and harvests a condition's witness.
    """

    __slots__ = ("predicate",)

    def __init__(self, predicate: Callable[[], Any]):
        self.predicate = predicate


class WaitSteps:
    """Resume after ``k`` further steps of the hosting process."""

    __slots__ = ("remaining",)

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.remaining = k


@dataclass
class _Tasklet:
    gen: Generator
    wait: Any = None
    started: bool = False
    done: bool = False
    name: str = ""


class TaskletDriver:
    """Advances a set of tasklets; one :meth:`advance` call per step."""

    #: Bound on intra-step cascades (tasklet A unblocking tasklet B).
    MAX_CASCADE = 16

    def __init__(self) -> None:
        self._tasklets: List[_Tasklet] = []

    def spawn(self, gen: Generator, name: str = "") -> None:
        self._tasklets.append(_Tasklet(gen=gen, name=name))

    @property
    def active_count(self) -> int:
        return sum(1 for t in self._tasklets if not t.done)

    def advance(self) -> None:
        """Resume every runnable tasklet; cascade predicate re-checks.

        One ``advance`` is one step of the hosting process.  The first
        pass visits every tasklet and is the only pass allowed to tick
        ``WaitSteps`` counters — a step is one step, however many
        cascade passes follow.  The cascade passes re-check only
        ``WaitUntil`` predicates (and start freshly-spawned tasklets),
        so that a tasklet unblocked by another one within the same step
        still runs in that step.
        """
        if not self._tasklets:
            return
        progressed = self._pass(tick_waitsteps=True)
        for _ in range(self.MAX_CASCADE - 1):
            if not progressed:
                break
            progressed = self._pass(tick_waitsteps=False)
        self._tasklets = [t for t in self._tasklets if not t.done]

    def _pass(self, tick_waitsteps: bool) -> bool:
        progressed = False
        for task in list(self._tasklets):
            if task.done:
                continue
            if self._resume_if_runnable(task, tick_waitsteps):
                progressed = True
        return progressed

    def _resume_if_runnable(self, task: _Tasklet, tick_waitsteps: bool) -> bool:
        send_value: Any = None
        wait = task.wait
        if not task.started:
            pass  # fresh tasklet: run to its first yield
        elif isinstance(wait, WaitUntil):
            result = wait.predicate()
            if not result:
                return False
            send_value = result
        elif isinstance(wait, WaitSteps):
            if not tick_waitsteps:
                return False
            wait.remaining -= 1
            if wait.remaining > 0:
                return False
        else:
            raise TypeError(f"tasklet {task.name!r} yielded {wait!r}")

        try:
            if task.started:
                task.wait = task.gen.send(send_value)
            else:
                task.started = True
                task.wait = next(task.gen)
        except StopIteration:
            task.done = True
            task.wait = None
        return True
