"""The System: wiring and the run loop.

A :class:`System` assembles processes (stacks of components), a
network, a scheduler, a failure pattern (given explicitly or sampled
from an environment) and a failure detector (an oracle history, a
component-implemented detector, or none), then runs the step loop:

    at each tick t = 1, 2, ...:
        the scheduler picks an alive process p,
        the network picks a ready message m for p (or λ),
        p's detector module is read to obtain d,
        p executes the atomic step ⟨p, m, d⟩.

Use :class:`SystemBuilder` for ergonomic construction::

    trace = (
        SystemBuilder(n=5, seed=7)
        .environment(FCrashEnvironment(5, 4))
        .detector(omega_sigma_oracle())
        .component("consensus", lambda pid: OmegaSigmaConsensus(proposal=pid % 2))
        .build()
        .run(stop_when=decided("consensus"))
    )
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.detector import FailureDetector
from repro.core.environment import Environment
from repro.core.failure_pattern import FailurePattern
from repro.core.history import FailureDetectorHistory
from repro.sim.network import DelayModel, DeliveryPolicy, Network
from repro.sim.process import Component, ProcessContext, ProcessHost
from repro.sim.rng import RngStreams
from repro.sim.scheduler import RandomScheduler, Scheduler
from repro.sim.trace import RunTrace, Step

ComponentFactory = Callable[[int], Component]
StopPredicate = Callable[["System"], bool]


class System:
    """One fully-wired simulated system; :meth:`run` executes it."""

    def __init__(
        self,
        n: int,
        seed: int,
        horizon: int,
        pattern: FailurePattern,
        component_factories: Sequence[Tuple[str, ComponentFactory]],
        detector: Optional[FailureDetector] = None,
        detector_component: Optional[str] = None,
        scheduler: Optional[Scheduler] = None,
        delay_model: Optional[DelayModel] = None,
        delivery_policy: Optional[DeliveryPolicy] = None,
        trace_mode: str = "full",
    ):
        if pattern.n != n:
            raise ValueError(f"pattern over {pattern.n} processes, system over {n}")
        if detector is not None and detector_component is not None:
            raise ValueError(
                "give either an oracle detector or a detector component, not both"
            )
        self.n = n
        self.horizon = horizon
        self.pattern = pattern
        self.streams = RngStreams(seed)
        self.trace = RunTrace(pattern, horizon, mode=trace_mode)
        self.network = Network(
            n,
            self.streams.get("network"),
            delay_model=delay_model,
            delivery_policy=delivery_policy,
        )
        self.scheduler = scheduler or RandomScheduler()
        self.detector_history: Optional[FailureDetectorHistory] = None
        if detector is not None:
            self.detector_history = detector.build_history(
                pattern, horizon + 1, self.streams.get("detector")
            )
        self._detector_component = detector_component

        self.hosts: List[ProcessHost] = []
        for pid in range(n):
            ctx = ProcessContext(pid, n, self.network, self.trace)
            components = [factory(pid) for _, factory in component_factories]
            for (name, _), comp in zip(component_factories, components):
                comp.name = name
            host = ProcessHost(pid, ctx, components)
            self._wire_detector(host)
            self.hosts.append(host)
        self.now = 0

    @classmethod
    def from_spec(cls, spec) -> "System":
        """Build a system from a :class:`repro.runner.spec.RunSpec`.

        Duck-typed (anything exposing the same ``resolve_*`` surface
        works) so the sim layer never imports the runner package.
        """
        return cls(
            n=spec.n,
            seed=spec.seed,
            horizon=spec.horizon,
            pattern=spec.resolve_pattern(),
            component_factories=spec.resolve_components(),
            detector=spec.resolve_detector(),
            detector_component=spec.detector_component,
            scheduler=spec.resolve_scheduler(),
            delay_model=spec.resolve_delay_model(),
            delivery_policy=spec.resolve_delivery_policy(),
            trace_mode=spec.trace_mode,
        )

    def _wire_detector(self, host: ProcessHost) -> None:
        if self.detector_history is not None:
            history = self.detector_history
            ctx = host.ctx
            ctx._detector_provider = lambda: history.value(ctx.pid, ctx.now)
        elif self._detector_component is not None:
            comp = host.component(self._detector_component)
            output = getattr(comp, "output", None)
            if not callable(output):
                raise TypeError(
                    f"detector component {self._detector_component!r} must "
                    f"expose an output() method"
                )
            host.ctx._detector_provider = output

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(
        self,
        stop_when: Optional[StopPredicate] = None,
        grace: int = 0,
    ) -> RunTrace:
        """Run until the horizon, or ``grace`` steps past ``stop_when``.

        ``grace`` keeps the system running after the stop predicate
        first holds — needed when eventual detector properties or
        background extraction tasks should be observed past the
        "foreground" algorithm's completion.
        """
        rng_sched = self.streams.get("scheduler")
        stop_at: Optional[int] = None
        # The alive list is maintained incrementally from the pattern's
        # sorted crash schedule: O(total crashes) over the whole run
        # instead of n membership tests per tick.  Removal preserves the
        # ascending pid order the schedulers rely on.
        events = self.pattern.crash_events()
        next_event = 0
        alive = [p for p in range(self.n) if not self.pattern.crashed(p, 0)]
        for t in range(1, self.horizon + 1):
            self.now = t
            while next_event < len(events) and events[next_event][0] <= t:
                crashed_pid = events[next_event][1]
                if crashed_pid in alive:
                    alive.remove(crashed_pid)
                next_event += 1
            if not alive:
                self.trace.stop_reason = "all-crashed"
                break
            pid = self.scheduler.pick(alive, t, rng_sched)
            if pid is None:
                self.trace.stop_reason = "scheduler-halt"
                break
            host = self.hosts[pid]
            message = self.network.pick_for(pid, t)
            delivered = host.take_step(t, message)
            detector_value = host.ctx.detector()
            self.trace.record_step(
                Step(time=t, pid=pid, message=delivered, detector_value=detector_value)
            )
            if stop_when is not None and stop_at is None and stop_when(self):
                stop_at = t
            if stop_at is not None and t >= stop_at + grace:
                self.trace.stop_reason = "stop-condition"
                break
        else:
            self.trace.stop_reason = (
                "stop-condition" if stop_at is not None else "horizon"
            )
        self.trace.messages_sent = self.network.sent_count
        self.trace.messages_delivered = self.network.delivered_count
        self.trace.final_time = self.now
        return self.trace

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def component_at(self, pid: int, name: str) -> Component:
        return self.hosts[pid].component(name)

    def components_named(self, name: str) -> List[Component]:
        return [host.component(name) for host in self.hosts]


class SystemBuilder:
    """Fluent construction of a :class:`System`."""

    def __init__(self, n: int, seed: int = 0, horizon: int = 20_000):
        self._n = n
        self._seed = seed
        self._horizon = horizon
        self._pattern: Optional[FailurePattern] = None
        self._environment: Optional[Environment] = None
        self._crash_window: Optional[int] = None
        self._detector: Optional[FailureDetector] = None
        self._detector_component: Optional[str] = None
        self._scheduler: Optional[Scheduler] = None
        self._delay_model: Optional[DelayModel] = None
        self._delivery_policy: Optional[DeliveryPolicy] = None
        self._factories: List[Tuple[str, ComponentFactory]] = []
        self._trace_mode: str = "full"

    def pattern(self, pattern: FailurePattern) -> "SystemBuilder":
        self._pattern = pattern
        return self

    def environment(
        self, env: Environment, crash_window: Optional[int] = None
    ) -> "SystemBuilder":
        """Sample the failure pattern from ``env``.

        ``crash_window`` bounds crash times (default: a third of the
        horizon, so that eventual properties stabilise well inside the
        observation window).
        """
        self._environment = env
        self._crash_window = crash_window
        return self

    def detector(self, detector: FailureDetector) -> "SystemBuilder":
        self._detector = detector
        return self

    def detector_from_component(self, component_name: str) -> "SystemBuilder":
        """Use a component's ``output()`` as the detector module (ex nihilo)."""
        self._detector_component = component_name
        return self

    def scheduler(self, scheduler: Scheduler) -> "SystemBuilder":
        self._scheduler = scheduler
        return self

    def delays(self, model: DelayModel) -> "SystemBuilder":
        self._delay_model = model
        return self

    def delivery(self, policy: DeliveryPolicy) -> "SystemBuilder":
        self._delivery_policy = policy
        return self

    def component(self, name: str, factory: ComponentFactory) -> "SystemBuilder":
        self._factories.append((name, factory))
        return self

    def trace_mode(self, mode: str) -> "SystemBuilder":
        """``"full"`` (default) or ``"lite"`` — see :class:`RunTrace`."""
        self._trace_mode = mode
        return self

    def build(self) -> System:
        if self._pattern is not None:
            pattern = self._pattern
        elif self._environment is not None:
            window = self._crash_window or max(1, self._horizon // 3)
            rng = RngStreams(self._seed).get("failure-pattern")
            pattern = self._environment.sample(rng, window)
        else:
            pattern = FailurePattern.crash_free(self._n)
        if not self._factories:
            raise ValueError("a system needs at least one component")
        return System(
            n=self._n,
            seed=self._seed,
            horizon=self._horizon,
            pattern=pattern,
            component_factories=self._factories,
            detector=self._detector,
            detector_component=self._detector_component,
            scheduler=self._scheduler,
            delay_model=self._delay_model,
            delivery_policy=self._delivery_policy,
            trace_mode=self._trace_mode,
        )


def decided(component: str) -> StopPredicate:
    """Stop predicate: every correct process decided in ``component``."""

    def predicate(system: System) -> bool:
        return system.trace.all_correct_decided(component)

    return predicate


def all_operations_done(component: str, expected: int) -> StopPredicate:
    """Stop predicate: ``expected`` operations of ``component`` completed."""

    def predicate(system: System) -> bool:
        return len(system.trace.completed_operations(component)) >= expected

    return predicate
