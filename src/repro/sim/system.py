"""The System: wiring and the run loop.

A :class:`System` assembles processes (stacks of components), a
network, a scheduler, a failure pattern (given explicitly or sampled
from an environment) and a failure detector (an oracle history, a
component-implemented detector, or none), then runs the step loop:

    at each tick t = 1, 2, ...:
        the scheduler picks an alive process p,
        the network picks a ready message m for p (or λ),
        p's detector module is read to obtain d,
        p executes the atomic step ⟨p, m, d⟩.

Use :class:`SystemBuilder` for ergonomic construction::

    trace = (
        SystemBuilder(n=5, seed=7)
        .environment(FCrashEnvironment(5, 4))
        .detector(omega_sigma_oracle())
        .component("consensus", lambda pid: OmegaSigmaConsensus(proposal=pid % 2))
        .build()
        .run(stop_when=decided("consensus"))
    )
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.detector import FailureDetector
from repro.core.environment import Environment
from repro.core.failure_pattern import FailurePattern
from repro.core.history import FailureDetectorHistory
from repro.sim.network import DelayModel, DeliveryPolicy, Network
from repro.sim.perf import PerfCounters
from repro.sim.process import Component, ProcessContext, ProcessHost
from repro.sim.rng import RngStreams
from repro.sim.scheduler import RandomScheduler, Scheduler
from repro.sim.trace import RunTrace, Step

ComponentFactory = Callable[[int], Component]
StopPredicate = Callable[["System"], bool]


class System:
    """One fully-wired simulated system; :meth:`run` executes it."""

    def __init__(
        self,
        n: int,
        seed: int,
        horizon: int,
        pattern: FailurePattern,
        component_factories: Sequence[Tuple[str, ComponentFactory]],
        detector: Optional[FailureDetector] = None,
        detector_component: Optional[str] = None,
        scheduler: Optional[Scheduler] = None,
        delay_model: Optional[DelayModel] = None,
        delivery_policy: Optional[DeliveryPolicy] = None,
        trace_mode: str = "full",
        time_leap: bool = False,
    ):
        if pattern.n != n:
            raise ValueError(f"pattern over {pattern.n} processes, system over {n}")
        if detector is not None and detector_component is not None:
            raise ValueError(
                "give either an oracle detector or a detector component, not both"
            )
        self.n = n
        self.horizon = horizon
        self.pattern = pattern
        self.streams = RngStreams(seed)
        self.perf = PerfCounters()
        self.trace = RunTrace(pattern, horizon, mode=trace_mode)
        self.trace.perf = self.perf
        self.network = Network(
            n,
            self.streams.get("network"),
            delay_model=delay_model,
            delivery_policy=delivery_policy,
            perf=self.perf,
        )
        self.scheduler = scheduler or RandomScheduler()
        self.time_leap = time_leap
        self.detector_history: Optional[FailureDetectorHistory] = None
        if detector is not None:
            self.detector_history = detector.build_history(
                pattern, horizon + 1, self.streams.get("detector")
            )
            self.detector_history.perf = self.perf
        self._detector_component = detector_component

        self.hosts: List[ProcessHost] = []
        for pid in range(n):
            ctx = ProcessContext(pid, n, self.network, self.trace)
            components = [factory(pid) for _, factory in component_factories]
            for (name, _), comp in zip(component_factories, components):
                comp.name = name
            host = ProcessHost(pid, ctx, components)
            self._wire_detector(host)
            self.hosts.append(host)
        self.now = 0

    @classmethod
    def from_spec(cls, spec) -> "System":
        """Build a system from a :class:`repro.runner.spec.RunSpec`.

        Duck-typed (anything exposing the same ``resolve_*`` surface
        works) so the sim layer never imports the runner package.

        A spec may pin a buffer engine via its optional ``engine``
        field (``"indexed"`` / ``"reference"`` / ``"native"``); when it
        is None (the default) the ambient engine stands — whatever
        :func:`network_implementation` currently has swapped in — so
        golden-suite style ``with network_implementation(...)`` wrapping
        keeps working unchanged.
        """
        engine = getattr(spec, "engine", None)
        if engine is not None:
            from repro.sim.network import resolve_network_engine

            with network_implementation(resolve_network_engine(engine)):
                return cls._from_spec_fields(spec)
        return cls._from_spec_fields(spec)

    @classmethod
    def _from_spec_fields(cls, spec) -> "System":
        return cls(
            n=spec.n,
            seed=spec.seed,
            horizon=spec.horizon,
            pattern=spec.resolve_pattern(),
            component_factories=spec.resolve_components(),
            detector=spec.resolve_detector(),
            detector_component=spec.detector_component,
            scheduler=spec.resolve_scheduler(),
            delay_model=spec.resolve_delay_model(),
            delivery_policy=spec.resolve_delivery_policy(),
            trace_mode=spec.trace_mode,
            time_leap=getattr(spec, "time_leap", False),
        )

    def _wire_detector(self, host: ProcessHost) -> None:
        if self.detector_history is not None:
            history = self.detector_history
            ctx = host.ctx
            ctx._detector_provider = lambda: history.value(ctx.pid, ctx.now)
        elif self._detector_component is not None:
            comp = host.component(self._detector_component)
            output = getattr(comp, "output", None)
            if not callable(output):
                raise TypeError(
                    f"detector component {self._detector_component!r} must "
                    f"expose an output() method"
                )
            host.ctx._detector_provider = output

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(
        self,
        stop_when: Optional[StopPredicate] = None,
        grace: int = 0,
    ) -> RunTrace:
        """Run until the horizon, or ``grace`` steps past ``stop_when``.

        ``grace`` keeps the system running after the stop predicate
        first holds — needed when eventual detector properties or
        background extraction tasks should be observed past the
        "foreground" algorithm's completion.

        With ``time_leap=True`` the loop may *synthesize* stretches of
        λ-steps instead of executing them: whenever every alive process
        is quiescent (see :attr:`Component.quiescent`) and no buffered
        message is deliverable, every tick until the next event —
        earliest ``ready_at``, next crash, the grace deadline, the
        horizon — is provably a λ-step of whichever process the
        scheduler picks, so the loop records those steps (scheduler
        state, rng stream, digest bytes, detector samples all exact)
        without running the per-tick machinery.  The leap is forced off
        under unfair schedulers or delivery policies, and requires
        ``stop_when`` predicates to be state-based (decisions,
        operations, component state — not raw step counts), which every
        predicate in this repo is.
        """
        rng_sched = self.streams.get("scheduler")
        stop_at: Optional[int] = None
        # The alive list is maintained incrementally from the pattern's
        # sorted crash schedule: O(total crashes) over the whole run
        # instead of n membership tests per tick.  Removal preserves the
        # ascending pid order the schedulers rely on.
        events = self.pattern.crash_events()
        next_event = 0
        alive = [p for p in range(self.n) if not self.pattern.crashed(p, 0)]
        trace = self.trace
        network = self.network
        scheduler = self.scheduler
        perf = self.perf
        leap_enabled = (
            self.time_leap and scheduler.fair and network.delivery_policy.fair
        )
        completed = True
        t = 1
        while t <= self.horizon:
            self.now = t
            while next_event < len(events) and events[next_event][0] <= t:
                crashed_pid = events[next_event][1]
                if crashed_pid in alive:
                    alive.remove(crashed_pid)
                next_event += 1
            if not alive:
                trace.stop_reason = "all-crashed"
                completed = False
                break
            pid = scheduler.pick(alive, t, rng_sched)
            if pid is None:
                trace.stop_reason = "scheduler-halt"
                completed = False
                break
            host = self.hosts[pid]
            message = network.pick_for(pid, t)
            delivered = host.take_step(t, message)
            detector_value = host.ctx.detector()
            perf.ticks += 1
            if delivered is None:
                perf.lambda_steps += 1
            trace.record_step(
                Step(time=t, pid=pid, message=delivered, detector_value=detector_value)
            )
            if stop_when is not None and stop_at is None and stop_when(self):
                stop_at = t
            if stop_at is not None and t >= stop_at + grace:
                trace.stop_reason = "stop-condition"
                completed = False
                break
            if leap_enabled and t < self.horizon:
                leaped = self._try_leap(
                    t, alive, events, next_event, stop_at, grace, rng_sched
                )
                if leaped is not None:
                    t = leaped
            t += 1
        if completed:
            trace.stop_reason = (
                "stop-condition" if stop_at is not None else "horizon"
            )
        trace.messages_sent = network.sent_count
        trace.messages_delivered = network.delivered_count
        trace.final_time = self.now
        return trace

    def _try_leap(
        self,
        t: int,
        alive: List[int],
        events: Sequence[Tuple[int, int]],
        next_event: int,
        stop_at: Optional[int],
        grace: int,
        rng_sched,
    ) -> Optional[int]:
        """Synthesize the λ-only window after tick ``t``; returns its end.

        Returns the last synthesized tick (the caller resumes the
        normal loop at the following one), or None when no tick can be
        skipped.  Preconditions checked here: every alive process
        quiescent, no deliverable message before the window's end.  The
        window is cut just before the next crash event (``alive``
        changes there) and before the grace deadline (that tick must
        run the normal stop check).
        """
        for pid in alive:
            if not self.hosts[pid].quiescent:
                return None
        end = self.horizon
        if next_event < len(events):
            end = min(end, events[next_event][0] - 1)
        if stop_at is not None:
            end = min(end, stop_at + grace - 1)
        next_ready = self.network.next_ready_time(alive, t)
        if next_ready is not None:
            if next_ready <= t:
                return None
            end = min(end, next_ready - 1)
        if end <= t:
            return None
        trace = self.trace
        hosts = self.hosts
        for tt in range(t + 1, end + 1):
            self.now = tt
            pid = self.scheduler.pick(alive, tt, rng_sched)
            if pid is None:
                # The leap is gated on scheduler.fair, and fair
                # schedulers never halt; resuming the normal loop here
                # would replay the pick and fork the rng stream.
                raise RuntimeError(
                    f"scheduler {type(self.scheduler).__name__} claims "
                    f"fair=True but halted at t={tt} during a time-leap"
                )
            host = hosts[pid]
            ctx = host.ctx
            ctx.now = tt
            host.steps_taken += 1
            trace.record_lambda_step(tt, pid, ctx.detector())
        skipped = end - t
        perf = self.perf
        perf.ticks += skipped
        perf.lambda_steps += skipped
        perf.ticks_leaped += skipped
        perf.leap_windows += 1
        return end

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def component_at(self, pid: int, name: str) -> Component:
        return self.hosts[pid].component(name)

    def components_named(self, name: str) -> List[Component]:
        return [host.component(name) for host in self.hosts]


class SystemBuilder:
    """Fluent construction of a :class:`System`."""

    def __init__(self, n: int, seed: int = 0, horizon: int = 20_000):
        self._n = n
        self._seed = seed
        self._horizon = horizon
        self._pattern: Optional[FailurePattern] = None
        self._environment: Optional[Environment] = None
        self._crash_window: Optional[int] = None
        self._detector: Optional[FailureDetector] = None
        self._detector_component: Optional[str] = None
        self._scheduler: Optional[Scheduler] = None
        self._delay_model: Optional[DelayModel] = None
        self._delivery_policy: Optional[DeliveryPolicy] = None
        self._factories: List[Tuple[str, ComponentFactory]] = []
        self._trace_mode: str = "full"
        self._time_leap: bool = False

    def pattern(self, pattern: FailurePattern) -> "SystemBuilder":
        self._pattern = pattern
        return self

    def environment(
        self, env: Environment, crash_window: Optional[int] = None
    ) -> "SystemBuilder":
        """Sample the failure pattern from ``env``.

        ``crash_window`` bounds crash times (default: a third of the
        horizon, so that eventual properties stabilise well inside the
        observation window).
        """
        self._environment = env
        self._crash_window = crash_window
        return self

    def detector(self, detector: FailureDetector) -> "SystemBuilder":
        self._detector = detector
        return self

    def detector_from_component(self, component_name: str) -> "SystemBuilder":
        """Use a component's ``output()`` as the detector module (ex nihilo)."""
        self._detector_component = component_name
        return self

    def scheduler(self, scheduler: Scheduler) -> "SystemBuilder":
        self._scheduler = scheduler
        return self

    def delays(self, model: DelayModel) -> "SystemBuilder":
        self._delay_model = model
        return self

    def delivery(self, policy: DeliveryPolicy) -> "SystemBuilder":
        self._delivery_policy = policy
        return self

    def component(self, name: str, factory: ComponentFactory) -> "SystemBuilder":
        self._factories.append((name, factory))
        return self

    def trace_mode(self, mode: str) -> "SystemBuilder":
        """``"full"`` (default) or ``"lite"`` — see :class:`RunTrace`."""
        self._trace_mode = mode
        return self

    def time_leap(self, enabled: bool = True) -> "SystemBuilder":
        """Opt in to the quiescence time-leap (see :meth:`System.run`)."""
        self._time_leap = enabled
        return self

    def build(self) -> System:
        if self._pattern is not None:
            pattern = self._pattern
        elif self._environment is not None:
            window = self._crash_window or max(1, self._horizon // 3)
            rng = RngStreams(self._seed).get("failure-pattern")
            pattern = self._environment.sample(rng, window)
        else:
            pattern = FailurePattern.crash_free(self._n)
        if not self._factories:
            raise ValueError("a system needs at least one component")
        return System(
            n=self._n,
            seed=self._seed,
            horizon=self._horizon,
            pattern=pattern,
            component_factories=self._factories,
            detector=self._detector,
            detector_component=self._detector_component,
            scheduler=self._scheduler,
            delay_model=self._delay_model,
            delivery_policy=self._delivery_policy,
            trace_mode=self._trace_mode,
            time_leap=self._time_leap,
        )


@contextmanager
def network_implementation(impl):
    """Temporarily swap the buffer engine :class:`System` constructs.

    ``System.__init__`` resolves ``Network`` from this module's globals
    at call time, so rebinding it here redirects every system built
    inside the ``with`` block — how the golden determinism suite and
    the simulator bench run identical specs on
    :class:`~repro.sim.network.ReferenceNetwork` vs the indexed engine.
    """
    global Network
    previous = Network
    Network = impl
    try:
        yield
    finally:
        Network = previous


def decided(component: str) -> StopPredicate:
    """Stop predicate: every correct process decided in ``component``."""

    def predicate(system: System) -> bool:
        return system.trace.all_correct_decided(component)

    return predicate


def all_operations_done(component: str, expected: int) -> StopPredicate:
    """Stop predicate: ``expected`` operations of ``component`` completed."""

    def predicate(system: System) -> bool:
        return len(system.trace.completed_operations(component)) >= expected

    return predicate
