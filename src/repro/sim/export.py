"""Trace export: JSON-serialisable run summaries.

A :class:`~repro.sim.trace.RunTrace` holds live objects (frozensets,
sentinels, arbitrary payloads); :func:`trace_to_dict` renders it into
plain JSON-compatible data — schedule, decisions, operations, detector
samples — for archiving runs, diffing reproductions, or feeding
external analysis.  Values that are not JSON-native are rendered via
``repr`` (the export is a human/diff artifact, not a wire format; the
deterministic simulator re-creates any run from its seed).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.sim.trace import RunTrace


def _render(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_render(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_render(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _render(v) for k, v in value.items()}
    return repr(value)


def trace_to_dict(
    trace: RunTrace,
    include_steps: bool = False,
    include_detector_samples: bool = False,
) -> Dict[str, Any]:
    """Render a run trace as plain data.

    The step-by-step schedule and the per-step detector samples can be
    large; they are opt-in.
    """
    data: Dict[str, Any] = {
        "pattern": {
            "n": trace.pattern.n,
            "crash_times": {
                str(p): t for p, t in trace.pattern.crash_times.items()
            },
        },
        "horizon": trace.horizon,
        "final_time": trace.final_time,
        "stop_reason": trace.stop_reason,
        "messages_sent": trace.messages_sent,
        "messages_delivered": trace.messages_delivered,
        "step_count": len(trace.steps),
        "decisions": [
            {
                "time": d.time,
                "pid": d.pid,
                "component": d.component,
                "value": _render(d.value),
            }
            for d in trace.decisions
        ],
        "operations": [
            {
                "op_id": op.op_id,
                "pid": op.pid,
                "component": op.component,
                "kind": op.kind,
                "args": _render(op.args),
                "invoke_time": op.invoke_time,
                "response_time": op.response_time,
                "result": _render(op.result),
            }
            for op in trace.operations
        ],
    }
    if include_steps:
        data["steps"] = [
            {
                "time": s.time,
                "pid": s.pid,
                "message": (
                    None
                    if s.message is None
                    else {
                        "from": s.message.sender,
                        "component": s.message.component,
                        "payload": _render(s.message.payload),
                        "sent_at": s.message.send_time,
                    }
                ),
                "detector": _render(s.detector_value),
            }
            for s in trace.steps
        ]
    if include_detector_samples:
        data["detector_samples"] = {
            str(pid): [
                {"time": t, "value": _render(v)}
                for t, v in trace.detector_samples.samples_of(pid)
            ]
            for pid in range(trace.pattern.n)
        }
    return data


def trace_to_json(trace: RunTrace, indent: int = 2, **kwargs: Any) -> str:
    """JSON text of :func:`trace_to_dict` (kwargs forwarded)."""
    return json.dumps(trace_to_dict(trace, **kwargs), indent=indent)
