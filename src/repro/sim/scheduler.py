"""Process schedulers — the adversary's first knob.

Asynchrony means the adversary chooses which process takes the next
step, subject only to fairness (correct processes take infinitely many
steps).  Fair schedulers here are :class:`RandomScheduler` (fair with
probability 1) and :class:`RoundRobinScheduler` (fair deterministically).
:class:`StarvationScheduler` and :class:`BurstScheduler` are *unfair*
adversaries used to probe safety under pathological schedules (safety
properties must survive them; liveness legitimately may not).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Iterable, Optional, Sequence, Set, Tuple


class Scheduler(ABC):
    """Chooses which alive process steps at each tick."""

    #: Whether the scheduler guarantees the model's fairness condition.
    fair: bool = True

    @abstractmethod
    def pick(
        self, alive: Sequence[int], now: int, rng: random.Random
    ) -> Optional[int]:
        """Pick a pid from ``alive`` (non-empty), or None to halt."""


class RandomScheduler(Scheduler):
    """Uniformly random choice among alive processes."""

    fair = True

    def pick(
        self, alive: Sequence[int], now: int, rng: random.Random
    ) -> Optional[int]:
        return alive[rng.randrange(len(alive))]


class RoundRobinScheduler(Scheduler):
    """Cycle deterministically through alive processes.

    Contract: ``alive`` must be in ascending pid order —
    :meth:`System.run` maintains it that way (it filters a ``range``),
    so ``pick`` scans it directly instead of re-sorting every tick.
    """

    fair = True

    def __init__(self) -> None:
        self._last = -1

    def pick(
        self, alive: Sequence[int], now: int, rng: random.Random
    ) -> Optional[int]:
        last = self._last
        for pid in alive:
            if pid > last:
                self._last = pid
                return pid
        first = alive[0]
        self._last = first
        return first


class WeightedScheduler(Scheduler):
    """Random choice with per-process weights (slow/fast processes).

    Fair with probability 1 as long as every weight is positive.
    """

    fair = True

    def __init__(self, weights: Sequence[float]):
        if any(w <= 0 for w in weights):
            raise ValueError("all weights must be positive for fairness")
        self.weights = list(weights)

    def pick(
        self, alive: Sequence[int], now: int, rng: random.Random
    ) -> Optional[int]:
        ws = [self.weights[p] for p in alive]
        return rng.choices(list(alive), weights=ws, k=1)[0]


class StarvationScheduler(Scheduler):
    """An *unfair* adversary that never schedules selected processes.

    Starved processes look exactly like crashed ones to everyone else —
    the indistinguishability at the heart of FLP [8].  Safety checkers
    run against this; liveness checkers must not.
    """

    fair = False

    def __init__(self, starved: Set[int], inner: Optional[Scheduler] = None):
        self.starved = set(starved)
        self.inner = inner or RandomScheduler()

    def pick(
        self, alive: Sequence[int], now: int, rng: random.Random
    ) -> Optional[int]:
        allowed = [p for p in alive if p not in self.starved]
        if not allowed:
            return None
        return self.inner.pick(allowed, now, rng)


class WindowedStarvationScheduler(Scheduler):
    """Starves selected processes during bounded time windows.

    ``windows`` is a sequence of ``(start, end, pids)`` triples
    (``end`` exclusive): while ``start <= now < end`` the listed
    processes are never scheduled.  Unlike :class:`StarvationScheduler`
    this stays *fair* — every window closes, so every correct process
    still takes infinitely many steps — which makes it an in-spec
    adversary for the chaos harness's liveness-preserving campaigns.
    If a window would starve every alive process (halting the run for
    a reason the model does not admit), it is ignored for that step.
    """

    fair = True

    def __init__(
        self,
        windows: Sequence[Tuple[int, int, Iterable[int]]],
        inner: Optional[Scheduler] = None,
    ):
        self.windows = []
        for start, end, pids in windows:
            if start > end:
                raise ValueError(f"starvation window [{start}, {end}) is inverted")
            self.windows.append((start, end, frozenset(pids)))
        self.inner = inner or RandomScheduler()
        # Interval index: between two consecutive window boundaries the
        # starved set is constant, so precompute it once and answer
        # per-tick queries with a bisect instead of a window sweep.
        boundaries = sorted(
            {start for start, _, _ in self.windows}
            | {end for _, end, _ in self.windows}
        )
        self._boundaries = boundaries
        self._active = []
        for point in boundaries:
            starved = frozenset().union(
                *(
                    pids
                    for start, end, pids in self.windows
                    if start <= point < end
                )
            )
            self._active.append(starved)

    def _starved(self, now: int) -> Set[int]:
        idx = bisect_right(self._boundaries, now) - 1
        if idx < 0:
            return frozenset()
        return self._active[idx]

    def pick(
        self, alive: Sequence[int], now: int, rng: random.Random
    ) -> Optional[int]:
        starved = self._starved(now)
        allowed = [p for p in alive if p not in starved]
        if not allowed:
            allowed = list(alive)
        return self.inner.pick(allowed, now, rng)


class BurstScheduler(Scheduler):
    """Runs one process for long bursts before switching — maximal skew.

    Fair (every alive process gets infinitely many bursts) but highly
    uneven, which stresses timestamp and quorum logic.
    """

    fair = True

    def __init__(self, burst_length: int = 25):
        if burst_length < 1:
            raise ValueError("burst_length must be >= 1")
        self.burst_length = burst_length
        self._current: Optional[int] = None
        self._remaining = 0

    def pick(
        self, alive: Sequence[int], now: int, rng: random.Random
    ) -> Optional[int]:
        if (
            self._current is None
            or self._remaining <= 0
            or self._current not in alive
        ):
            self._current = alive[rng.randrange(len(alive))]
            self._remaining = self.burst_length
        self._remaining -= 1
        return self._current
