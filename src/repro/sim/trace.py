"""Run traces: schedules, decisions, operations, detector samples.

A run of an algorithm using a failure detector is the tuple
``R = <F, H, I, S, T>`` of Section 2.  :class:`RunTrace` is the recorded
counterpart: the failure pattern, the schedule of steps with their
times, the detector samples seen at each step (the observable part of
``H``), and the higher-level records — decisions made by components and
invocation/response events of operations — from which the problem-level
property checkers in :mod:`repro.analysis.properties` draw verdicts.

Two recording modes:

* ``"full"`` (default) retains every :class:`Step` and detector sample —
  what the spec checkers and the export/analysis tooling consume;
* ``"lite"`` keeps only counters, decisions, operations and annotations,
  so horizon-length runs executed in campaign worker processes ship
  kilobytes back to the parent instead of megabytes.

Both modes maintain an order-sensitive sha256 digest over the schedule
and the decision sequence; two runs with equal :meth:`RunTrace.digest`
took the same steps in the same order with the same message ids —
the determinism witness the campaign engine's tests pin.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.failure_pattern import FailurePattern
from repro.core.history import SampledHistory


@dataclass(frozen=True)
class Step:
    """One atomic step ⟨p, m, d⟩ taken at a given time.

    ``message`` is None for a λ-step (no message received).
    """

    time: int
    pid: int
    message: Optional["DeliveredMessage"]
    detector_value: Any


@dataclass(frozen=True)
class DeliveredMessage:
    """The message component of a step, as seen by the receiver."""

    msg_id: int
    sender: int
    component: str
    payload: Any
    send_time: int


@dataclass(frozen=True)
class Decision:
    """A component's irrevocable decision (consensus/QC/NBAC outcome)."""

    time: int
    pid: int
    component: str
    value: Any


@dataclass
class OperationRecord:
    """An operation's invocation/response interval (register workloads).

    ``response_time`` is None while the operation is pending; operations
    that never complete (e.g. a blocked read under an unavailable
    quorum) keep ``response_time = None``, which the linearizability
    checker treats as "may or may not have taken effect".
    """

    op_id: int
    pid: int
    component: str
    kind: str
    args: Tuple[Any, ...]
    invoke_time: int
    response_time: Optional[int] = None
    result: Any = None

    @property
    def pending(self) -> bool:
        return self.response_time is None


class RunTrace:
    """Everything observable about one simulated run."""

    def __init__(self, pattern: FailurePattern, horizon: int, mode: str = "full"):
        if mode not in ("full", "lite"):
            raise ValueError(f"unknown trace mode {mode!r}")
        self.pattern = pattern
        self.horizon = horizon
        self.mode = mode
        self.steps: List[Step] = []
        self.decisions: List[Decision] = []
        self.operations: List[OperationRecord] = []
        self.detector_samples = SampledHistory(pattern.n)
        self.messages_sent = 0
        self.messages_delivered = 0
        self.stop_reason: str = "horizon"
        self.final_time: int = 0
        #: Arbitrary per-run annotations set by components/experiments.
        self.annotations: Dict[str, Any] = {}
        self._decided: Dict[Tuple[int, str], Decision] = {}
        self._component_decided: Dict[str, set] = {}
        self._next_op_id = 0
        self._step_total = 0
        self._steps_by_pid = [0] * pattern.n
        self._digest = hashlib.sha256()
        # Step digest bytes are buffered and hashed in batches; sha256
        # over the concatenation equals per-step updates, so digests stay
        # byte-identical while the hot loop skips a hash call per tick.
        self._digest_parts: List[bytes] = []
        #: Optional :class:`~repro.sim.perf.PerfCounters` attached by the
        #: running system; surfaced through campaign summaries.
        self.perf = None

    @property
    def record_full(self) -> bool:
        return self.mode == "full"

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_step(self, step: Step) -> None:
        self.final_time = step.time
        self._step_total += 1
        self._steps_by_pid[step.pid] += 1
        msg_id = step.message.msg_id if step.message is not None else -1
        self._digest_parts.append(b"s%d:%d:%d" % (step.time, step.pid, msg_id))
        if len(self._digest_parts) >= 4096:
            self._flush_digest()
        if self.record_full:
            self.steps.append(step)
            if step.detector_value is not None:
                self.detector_samples.record(
                    step.pid, step.time, step.detector_value
                )

    def record_lambda_step(self, time: int, pid: int, detector_value: Any) -> None:
        """Record a λ-step without building a :class:`Step` in lite mode.

        Used by the quiescence time-leap to synthesize the skipped
        ticks: digest bytes, counters, retained steps and detector
        samples all match what :meth:`record_step` would have produced
        for ``Step(time, pid, None, detector_value)``.
        """
        self.final_time = time
        self._step_total += 1
        self._steps_by_pid[pid] += 1
        self._digest_parts.append(b"s%d:%d:-1" % (time, pid))
        if len(self._digest_parts) >= 4096:
            self._flush_digest()
        if self.record_full:
            self.steps.append(Step(time, pid, None, detector_value))
            if detector_value is not None:
                self.detector_samples.record(pid, time, detector_value)

    def _flush_digest(self) -> None:
        if self._digest_parts:
            self._digest.update(b"".join(self._digest_parts))
            self._digest_parts.clear()

    def record_decision(self, decision: Decision) -> None:
        key = (decision.pid, decision.component)
        if key in self._decided:
            raise RuntimeError(
                f"process {decision.pid} component {decision.component!r} "
                f"decided twice: {self._decided[key].value!r} then "
                f"{decision.value!r}"
            )
        self._decided[key] = decision
        self._component_decided.setdefault(decision.component, set()).add(
            decision.pid
        )
        self.decisions.append(decision)
        # Flush buffered step bytes first so the decision lands in the
        # digest at the same byte offset as with unbuffered updates.
        self._flush_digest()
        self._digest.update(
            f"d{decision.time}:{decision.pid}:{decision.component}:"
            f"{decision.value!r}".encode()
        )

    def new_operation(
        self, pid: int, component: str, kind: str, args: Tuple[Any, ...], time: int
    ) -> OperationRecord:
        record = OperationRecord(
            op_id=self._next_op_id,
            pid=pid,
            component=component,
            kind=kind,
            args=args,
            invoke_time=time,
        )
        self._next_op_id += 1
        self.operations.append(record)
        return record

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def decision_of(self, pid: int, component: str) -> Optional[Decision]:
        return self._decided.get((pid, component))

    def decisions_of_component(self, component: str) -> List[Decision]:
        return [d for d in self.decisions if d.component == component]

    def decided_pids(self, component: str) -> set[int]:
        return set(self._component_decided.get(component, ()))

    def all_correct_decided(self, component: str) -> bool:
        """Whether every correct process has decided in ``component``."""
        return self.pattern.correct <= self._component_decided.get(
            component, frozenset()
        )

    def step_count(self, pid: Optional[int] = None) -> int:
        # In full mode count the retained list (tests may append to it
        # directly); lite mode has only the counters.
        if self.record_full:
            if pid is None:
                return len(self.steps)
            return sum(1 for s in self.steps if s.pid == pid)
        if pid is None:
            return self._step_total
        return self._steps_by_pid[pid]

    def digest(self) -> str:
        """Order-sensitive hash of the schedule + decision sequence."""
        self._flush_digest()
        return self._digest.hexdigest()

    def decision_latency(self, component: str) -> Optional[int]:
        """Time by which the last correct process decided, or None."""
        decisions = [
            d for d in self.decisions_of_component(component)
            if d.pid in self.pattern.correct
        ]
        if not self.all_correct_decided(component):
            return None
        return max(d.time for d in decisions)

    def completed_operations(self, component: Optional[str] = None) -> List[OperationRecord]:
        return [
            op
            for op in self.operations
            if not op.pending and (component is None or op.component == component)
        ]

    def summary(self) -> Dict[str, Any]:
        """A compact dict for experiment tables."""
        return {
            "steps": self.step_count(),
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "decisions": len(self.decisions),
            "operations": len(self.operations),
            "final_time": self.final_time,
            "stop_reason": self.stop_reason,
            "faulty": sorted(self.pattern.faulty),
        }
