"""Reliable asynchronous links.

The model's links are reliable — every message sent to a correct
process is eventually received — but delays are finite, unbounded and
variable.  The network assigns each message a *ready time* sampled from
a :class:`DelayModel`; a message can be delivered to its recipient at
any step at or after its ready time.  Which ready message a scheduled
process actually receives is chosen by a :class:`DeliveryPolicy` (the
adversary's second knob, next to the process scheduler).

Reliability is guaranteed by the default oldest-first policy combined
with a fair scheduler; the adversarial policies may intentionally
starve messages (useful for FLP-style non-termination demonstrations)
and are clearly marked as unfair.

Two buffer engines implement the same contract:

* :class:`Network` (the default) — *indexed* per-destination buffers: a
  not-yet-ready min-heap keyed on ``ready_at`` plus a ready pool with
  O(1) membership removal, so ``ready_for``/``pick_for`` cost
  O(ready + log pending) instead of O(pending).  The default
  oldest-first policy additionally gets an O(log ready) fast path over
  a ``(send_time, msg_id)`` heap that never materializes a ready list.
* :class:`ReferenceNetwork` — the seed's flat-list implementation, kept
  verbatim as the behavioral oracle for the golden determinism suite
  and the simulator benchmarks.

Both engines hand every :meth:`DeliveryPolicy.choose` implementation
the same ready list in the same order (per-destination insertion order,
which — because message ids are allocated at enqueue time from one
global counter — is exactly ascending ``msg_id`` order), so arbitrary
policies, the chaos adversaries and ``duplicate_after`` hooks observe
bit-identical runs on either engine.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.perf import PerfCounters


@dataclass
class Message:
    """An in-flight message.

    ``component`` routes the payload to the receiver's component of the
    same name (processes are stacks of components — algorithm, detector
    implementation, instrumentation).  ``meta`` is mutable middleware
    state (e.g. causality tags for the Figure 1 extraction).
    """

    msg_id: int
    sender: int
    dest: int
    component: str
    payload: Any
    send_time: int
    ready_at: int
    meta: Dict[str, Any] = field(default_factory=dict)


class DelayModel(ABC):
    """Samples per-message delivery delays."""

    @abstractmethod
    def sample(self, rng: random.Random, sender: int, dest: int) -> int:
        """A delay >= 1 in simulated time units."""


class ConstantDelay(DelayModel):
    """Every message becomes deliverable after a fixed delay."""

    def __init__(self, delay: int = 1):
        if delay < 1:
            raise ValueError("delay must be >= 1")
        self.delay = delay

    def sample(self, rng: random.Random, sender: int, dest: int) -> int:
        return self.delay


class UniformDelay(DelayModel):
    """Delays drawn uniformly from [lo, hi]."""

    def __init__(self, lo: int = 1, hi: int = 10):
        if not 1 <= lo <= hi:
            raise ValueError(f"need 1 <= lo <= hi, got [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def sample(self, rng: random.Random, sender: int, dest: int) -> int:
        return rng.randint(self.lo, self.hi)


class SpikeDelay(DelayModel):
    """Mostly-short delays with occasional long spikes (heavy tail)."""

    def __init__(
        self,
        base_hi: int = 5,
        spike_hi: int = 200,
        spike_probability: float = 0.02,
    ):
        if not 0 <= spike_probability <= 1:
            raise ValueError("spike_probability must be in [0, 1]")
        self.base_hi = base_hi
        self.spike_hi = spike_hi
        self.spike_probability = spike_probability

    def sample(self, rng: random.Random, sender: int, dest: int) -> int:
        if rng.random() < self.spike_probability:
            return rng.randint(self.base_hi + 1, self.spike_hi)
        return rng.randint(1, self.base_hi)


class DeliveryPolicy(ABC):
    """Chooses which ready message (if any) a scheduled process receives."""

    #: Whether the policy preserves the model's reliability guarantee.
    fair: bool = True

    #: A promise that :meth:`choose` is exactly
    #: ``min(ready, key=lambda m: (m.send_time, m.msg_id))`` and never
    #: returns None on a non-empty ready list.  The indexed network then
    #: serves picks from a ``(send_time, msg_id)`` heap without
    #: materializing the ready list.  Policies that wrap an inner
    #: selector (e.g. the chaos duplication policy) forward their
    #: inner's value; anything with bespoke selection leaves it False.
    oldest_first_selection: bool = False

    @abstractmethod
    def choose(
        self, ready: List[Message], now: int, rng: random.Random
    ) -> Optional[Message]:
        """Pick one of ``ready`` (non-empty) or None for a λ-step."""

    def duplicate_after(
        self, msg: Message, now: int, rng: random.Random
    ) -> Optional[int]:
        """Hook: re-deliver ``msg`` later?  Called by the network right
        after ``msg`` is removed from the buffer and handed to its
        recipient.  Returning an ``extra >= 1`` re-enqueues a copy that
        becomes ready at ``now + extra``; returning None (the default)
        delivers each message at most once.  Duplication policies
        (chaos harness) override this instead of re-implementing
        :meth:`choose`.
        """
        return None


class OldestFirstDelivery(DeliveryPolicy):
    """Deliver the longest-waiting ready message — fair by construction."""

    fair = True
    oldest_first_selection = True

    def choose(
        self, ready: List[Message], now: int, rng: random.Random
    ) -> Optional[Message]:
        return min(ready, key=lambda m: (m.send_time, m.msg_id))


class RandomDelivery(DeliveryPolicy):
    """Deliver a uniformly random ready message.

    Fair with probability 1 over infinite runs; on bounded horizons a
    message can be unlucky, so tests that need every message delivered
    use :class:`OldestFirstDelivery`.
    """

    fair = True

    def choose(
        self, ready: List[Message], now: int, rng: random.Random
    ) -> Optional[Message]:
        return ready[rng.randrange(len(ready))]


class HoldingDelivery(DeliveryPolicy):
    """An *unfair* adversary that refuses to deliver selected messages.

    ``held`` is a predicate on messages; matching messages are never
    delivered while the predicate holds.  Used by the FLP experiment to
    keep a detector-free consensus run undecided.
    """

    fair = False

    def __init__(self, held: Callable[[Message, int], bool]):
        self.held = held

    def choose(
        self, ready: List[Message], now: int, rng: random.Random
    ) -> Optional[Message]:
        free = [m for m in ready if not self.held(m, now)]
        if not free:
            return None
        return min(free, key=lambda m: (m.send_time, m.msg_id))


class _DestBuffer:
    """One destination's indexed message store.

    ``future`` is a min-heap of ``(ready_at, msg_id, message)`` — the
    not-yet-ready set.  ``ready`` maps ``msg_id -> message`` for
    deliverable messages: dict insertion gives O(1) membership removal
    and iteration over ``sorted(ready)`` reproduces per-destination
    insertion order (ascending msg_id).  ``oldest`` is a lazy-deleted
    ``(send_time, msg_id)`` heap over the ready pool serving the
    oldest-first fast path; entries whose msg_id has left ``ready`` are
    discarded on pop.
    """

    __slots__ = ("future", "ready", "oldest")

    def __init__(self) -> None:
        self.future: List[Tuple[int, int, Message]] = []
        self.ready: Dict[int, Message] = {}
        self.oldest: List[Tuple[int, int]] = []


class Network:
    """The message buffer plus delay/delivery machinery (indexed engine)."""

    def __init__(
        self,
        n: int,
        rng: random.Random,
        delay_model: Optional[DelayModel] = None,
        delivery_policy: Optional[DeliveryPolicy] = None,
        perf: Optional[PerfCounters] = None,
    ):
        self.n = n
        self._rng = rng
        self.delay_model = delay_model or UniformDelay(1, 8)
        self.delivery_policy = delivery_policy or OldestFirstDelivery()
        self.perf = perf if perf is not None else PerfCounters()
        self._buffers: List[_DestBuffer] = [_DestBuffer() for _ in range(n)]
        self._next_msg_id = 0
        self.sent_count = 0
        self.delivered_count = 0
        self.duplicated_count = 0

    def send(
        self,
        sender: int,
        dest: int,
        component: str,
        payload: Any,
        now: int,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Message:
        """Place a message in the buffer; returns the in-flight record."""
        if not 0 <= dest < self.n:
            raise ValueError(f"unknown destination {dest}")
        delay = self.delay_model.sample(self._rng, sender, dest)
        msg = Message(
            msg_id=self._next_msg_id,
            sender=sender,
            dest=dest,
            component=component,
            payload=payload,
            send_time=now,
            ready_at=now + delay,
            meta=dict(meta or {}),
        )
        self._next_msg_id += 1
        self._enqueue(msg)
        self.sent_count += 1
        self.perf.messages_sent += 1
        return msg

    def _enqueue(self, msg: Message) -> None:
        buf = self._buffers[msg.dest]
        heappush(buf.future, (msg.ready_at, msg.msg_id, msg))
        self.perf.heap_pushes += 1

    def _promote(self, buf: _DestBuffer, now: int) -> None:
        """Move every message with ``ready_at <= now`` into the ready pool."""
        future = buf.future
        if not future or future[0][0] > now:
            return
        ready = buf.ready
        oldest = buf.oldest
        perf = self.perf
        moved = 0
        while future and future[0][0] <= now:
            _, msg_id, msg = heappop(future)
            ready[msg_id] = msg
            heappush(oldest, (msg.send_time, msg_id))
            moved += 1
        perf.heap_pops += moved
        perf.heap_pushes += moved
        perf.ready_promotions += moved

    def ready_for(self, dest: int, now: int) -> List[Message]:
        """Messages deliverable to ``dest`` at time ``now``.

        Returned in per-destination insertion order — ascending msg_id —
        exactly as the reference engine's pending-list filter yields.
        """
        buf = self._buffers[dest]
        self._promote(buf, now)
        ready = buf.ready
        self.perf.messages_scanned += len(ready)
        if not ready:
            return []
        return [ready[msg_id] for msg_id in sorted(ready)]

    def pick_for(self, dest: int, now: int) -> Optional[Message]:
        """Remove and return the message ``dest`` receives this step.

        Returns None for a λ-step (no ready message, or the policy
        withheld them all).
        """
        buf = self._buffers[dest]
        self._promote(buf, now)
        ready = buf.ready
        if not ready:
            return None
        policy = self.delivery_policy
        perf = self.perf
        msg: Optional[Message] = None
        if policy.oldest_first_selection:
            oldest = buf.oldest
            while oldest:
                _, msg_id = oldest[0]
                if msg_id in ready:
                    heappop(oldest)
                    perf.heap_pops += 1
                    perf.fast_path_picks += 1
                    perf.messages_scanned += 1
                    msg = ready.pop(msg_id)
                    break
                heappop(oldest)  # stale: delivered via the generic path
                perf.heap_pops += 1
        if msg is None:
            ready_list = [ready[msg_id] for msg_id in sorted(ready)]
            perf.messages_scanned += len(ready_list)
            msg = policy.choose(ready_list, now, self._rng)
            if msg is None:
                return None
            del ready[msg.msg_id]
        self.delivered_count += 1
        perf.messages_delivered += 1
        self._maybe_duplicate(policy, msg, now)
        return msg

    def _maybe_duplicate(
        self, policy: DeliveryPolicy, msg: Message, now: int
    ) -> None:
        """Re-enqueue a copy if the policy's duplicate_after hook asks."""
        extra = policy.duplicate_after(msg, now, self._rng)
        if extra is not None:
            if extra < 1:
                raise ValueError(f"duplicate delay must be >= 1, got {extra}")
            copy = Message(
                msg_id=self._next_msg_id,
                sender=msg.sender,
                dest=msg.dest,
                component=msg.component,
                payload=msg.payload,
                send_time=msg.send_time,
                ready_at=now + extra,
                meta=dict(msg.meta),
            )
            self._next_msg_id += 1
            self._enqueue(copy)
            self.duplicated_count += 1

    def pending_count(self, dest: Optional[int] = None) -> int:
        if dest is None:
            return sum(
                len(buf.future) + len(buf.ready) for buf in self._buffers
            )
        buf = self._buffers[dest]
        return len(buf.future) + len(buf.ready)

    def next_ready_time(self, dests: Iterable[int], now: int) -> Optional[int]:
        """Earliest time a buffered message for ``dests`` is deliverable.

        Returns ``now`` (or earlier) if something is already ready,
        the earliest future ``ready_at`` otherwise, and None when
        nothing at all is buffered for those destinations.  The
        quiescence time-leap uses this to bound how far it may jump.
        """
        best: Optional[int] = None
        for dest in dests:
            buf = self._buffers[dest]
            if buf.ready:
                return now
            if buf.future:
                top = buf.future[0][0]
                if top <= now:  # deliverable, just not yet promoted
                    return now
                if best is None or top < best:
                    best = top
        return best


class NativeNetwork(Network):
    """The indexed engine with its buffer store compiled to C.

    Behaviorally identical to :class:`Network` — the golden determinism
    suite holds it digest-equal to both pure engines — but the
    future-heap / ready-pool / oldest-heap bookkeeping lives in
    ``repro._native._core.NetworkCore``.  Delay sampling, policy
    callbacks (:meth:`DeliveryPolicy.choose`, ``duplicate_after``) and
    :class:`Message` construction stay in Python so arbitrary policies
    and the chaos adversaries observe bit-identical runs, consuming the
    same ``rng`` stream in the same order.

    Constructing one requires the compiled extension; use
    :func:`resolve_network_engine` for the graceful-fallback path.
    """

    def __init__(
        self,
        n: int,
        rng: random.Random,
        delay_model: Optional[DelayModel] = None,
        delivery_policy: Optional[DeliveryPolicy] = None,
        perf: Optional[PerfCounters] = None,
    ):
        super().__init__(
            n,
            rng,
            delay_model=delay_model,
            delivery_policy=delivery_policy,
            perf=perf,
        )
        from repro import _native

        core_cls = _native.network_core_class()
        if core_cls is None:
            raise RuntimeError(
                f"native network core unavailable: {_native.reason()}"
            )
        self._core = core_cls(n, self.perf)
        # The pure-Python buffers are dead weight here; dropping them
        # makes any stale direct access fail loudly instead of reading
        # empty buffers (fingerprinting goes through _core.in_flight).
        self._buffers = []

    def _enqueue(self, msg: Message) -> None:
        self._core.push(
            msg.dest, msg.ready_at, msg.msg_id, msg.send_time, msg
        )

    def ready_for(self, dest: int, now: int) -> List[Message]:
        """Messages deliverable to ``dest`` at time ``now``."""
        return self._core.ready_list(dest, now)

    def pick_for(self, dest: int, now: int) -> Optional[Message]:
        """Remove and return the message ``dest`` receives this step."""
        policy = self.delivery_policy
        msg: Optional[Message]
        if policy.oldest_first_selection:
            msg = self._core.pick_oldest(dest, now)
            if msg is None:
                return None
        else:
            ready_list = self._core.ready_list(dest, now)
            if not ready_list:
                return None
            msg = policy.choose(ready_list, now, self._rng)
            if msg is None:
                return None
            self._core.remove(dest, msg.msg_id)
        self.delivered_count += 1
        self.perf.messages_delivered += 1
        self._maybe_duplicate(policy, msg, now)
        return msg

    def pending_count(self, dest: Optional[int] = None) -> int:
        return self._core.pending_count(dest)

    def next_ready_time(self, dests: Iterable[int], now: int) -> Optional[int]:
        """Earliest time a buffered message for ``dests`` is deliverable."""
        return self._core.next_ready_time(dests, now)


#: The engine names accepted wherever a network implementation can be
#: picked (RunSpec.engine, the explorer's --engine, frontier options).
NETWORK_ENGINES = ("indexed", "reference", "native")


def resolve_network_engine(engine: str) -> type:
    """Map an engine name to a network class, degrading gracefully.

    ``"native"`` resolves to :class:`NativeNetwork` when the compiled
    core is loaded and to :class:`Network` otherwise — the two are
    digest-identical, so a run spec naming ``native`` stays
    reproducible on hosts without the extension (see docs/PERF.md).
    """
    if engine == "indexed":
        return Network
    if engine == "reference":
        return ReferenceNetwork
    if engine == "native":
        from repro import _native

        if _native.available():
            return NativeNetwork
        return Network
    raise ValueError(
        f"unknown network engine {engine!r}; have {NETWORK_ENGINES}"
    )


class ReferenceNetwork:
    """The seed's flat-list buffer engine, kept as the behavioral oracle.

    Every pick rescans the destination's whole pending list — O(pending)
    per step — which is exactly the cost profile the indexed engine
    removes.  The golden determinism suite runs both engines over the
    same specs and asserts bit-identical traces; the simulator bench
    quantifies the gap.
    """

    def __init__(
        self,
        n: int,
        rng: random.Random,
        delay_model: Optional[DelayModel] = None,
        delivery_policy: Optional[DeliveryPolicy] = None,
        perf: Optional[PerfCounters] = None,
    ):
        self.n = n
        self._rng = rng
        self.delay_model = delay_model or UniformDelay(1, 8)
        self.delivery_policy = delivery_policy or OldestFirstDelivery()
        self.perf = perf if perf is not None else PerfCounters()
        self._pending: List[List[Message]] = [[] for _ in range(n)]
        self._next_msg_id = 0
        self.sent_count = 0
        self.delivered_count = 0
        self.duplicated_count = 0

    def send(
        self,
        sender: int,
        dest: int,
        component: str,
        payload: Any,
        now: int,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Message:
        """Place a message in the buffer; returns the in-flight record."""
        if not 0 <= dest < self.n:
            raise ValueError(f"unknown destination {dest}")
        delay = self.delay_model.sample(self._rng, sender, dest)
        msg = Message(
            msg_id=self._next_msg_id,
            sender=sender,
            dest=dest,
            component=component,
            payload=payload,
            send_time=now,
            ready_at=now + delay,
            meta=dict(meta or {}),
        )
        self._next_msg_id += 1
        self._pending[dest].append(msg)
        self.sent_count += 1
        self.perf.messages_sent += 1
        return msg

    def ready_for(self, dest: int, now: int) -> List[Message]:
        """Messages deliverable to ``dest`` at time ``now``."""
        pending = self._pending[dest]
        self.perf.messages_scanned += len(pending)
        return [m for m in pending if m.ready_at <= now]

    def pick_for(self, dest: int, now: int) -> Optional[Message]:
        """Remove and return the message ``dest`` receives this step."""
        ready = self.ready_for(dest, now)
        if not ready:
            return None
        msg = self.delivery_policy.choose(ready, now, self._rng)
        if msg is None:
            return None
        self._pending[dest].remove(msg)
        self.delivered_count += 1
        self.perf.messages_delivered += 1
        extra = self.delivery_policy.duplicate_after(msg, now, self._rng)
        if extra is not None:
            if extra < 1:
                raise ValueError(f"duplicate delay must be >= 1, got {extra}")
            copy = Message(
                msg_id=self._next_msg_id,
                sender=msg.sender,
                dest=msg.dest,
                component=msg.component,
                payload=msg.payload,
                send_time=msg.send_time,
                ready_at=now + extra,
                meta=dict(msg.meta),
            )
            self._next_msg_id += 1
            self._pending[dest].append(copy)
            self.duplicated_count += 1
        return msg

    def pending_count(self, dest: Optional[int] = None) -> int:
        if dest is None:
            return sum(len(q) for q in self._pending)
        return len(self._pending[dest])

    def next_ready_time(self, dests: Iterable[int], now: int) -> Optional[int]:
        """O(pending) twin of :meth:`Network.next_ready_time`."""
        best: Optional[int] = None
        for dest in dests:
            for msg in self._pending[dest]:
                if msg.ready_at <= now:
                    return now
                if best is None or msg.ready_at < best:
                    best = msg.ready_at
        return best
