"""Explore artifacts: a violating schedule, frozen as replayable JSON.

The chaos artifact freezes a *case plus RNG seed*; the explorer's
witness is stronger — a case plus the exact **choice list** that walks
the simulator into the violation, no randomness left anywhere.  The
document mirrors the chaos format closely enough that the chaos loader
(:func:`repro.chaos.artifact.load_artifact`) accepts both and replay
dispatches on the ``format`` field, so one ``tests/data`` replay suite
covers fuzzer and explorer witnesses alike.

Replay re-executes the controlled run (:func:`~repro.explore.cases
.run_controlled` with the recorded choices as the full replay prefix),
re-judges it with the target's summarize hook, and checks the recorded
clauses still break *and* the trace digest still matches — the same
"bug still there / still deterministic" split the chaos replayer
reports.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.explore.cases import (
    ExploreCase,
    case_from_dict,
    case_to_dict,
    resolve_parts,
    run_controlled,
)

EXPLORE_FORMAT = "repro-explore-artifact/1"


def judge(
    case: ExploreCase,
    choices: Sequence[int],
    engine: str = "indexed",
    por: bool = True,
) -> Dict[str, Any]:
    """Execute one choice path and return its verdict record.

    ``por`` must match the setting the choices were recorded under —
    the POR filter shapes the menus the indices point into.
    """
    parts = resolve_parts(case)
    system, controller = run_controlled(
        case, tuple(choices), engine=engine, parts=parts, por=por
    )
    trace = system.trace
    metrics = parts.summarize(system, trace)
    violated = sorted(
        clause
        for clause in parts.safety_clauses
        if not metrics.get(clause, True)
    )
    return {
        "violated": violated,
        "metrics": dict(metrics),
        "digest": trace.digest(),
        "decisions": sorted(
            [d.pid, d.component, repr(d.value)] for d in trace.decisions
        ),
        "final_time": trace.final_time,
        "choices_taken": [point.chosen for point in controller.log],
    }


def build_document(
    case: ExploreCase,
    choices: Sequence[int],
    violated: Sequence[str],
    engine: str = "indexed",
    por: bool = True,
    shrink_stats: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One violating schedule as its artifact document (not yet on disk).

    The expected digest/decisions are recomputed by replaying here, so
    the artifact always records what the committed code actually does.
    """
    verdict = judge(case, choices, engine, por=por)
    missing = set(violated) - set(verdict["violated"])
    if missing:
        raise ValueError(
            f"artifact would not reproduce clauses {sorted(missing)}; "
            f"replay violated {verdict['violated']}"
        )
    return {
        "format": EXPLORE_FORMAT,
        "case": case_to_dict(case),
        "engine": engine,
        "por": por,
        "choices": list(choices),
        "violated": sorted(violated),
        "expected": {
            "trace_digest": verdict["digest"],
            "decisions": verdict["decisions"],
            "final_time": verdict["final_time"],
        },
        "shrink": shrink_stats or {},
    }


def write_artifact(
    path: Path,
    case: ExploreCase,
    choices: Sequence[int],
    violated: Sequence[str],
    engine: str = "indexed",
    por: bool = True,
    shrink_stats: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Serialise one violating schedule; returns the written document."""
    document = build_document(
        case, choices, violated, engine=engine, por=por,
        shrink_stats=shrink_stats,
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def load_artifact(path: Path) -> Dict[str, Any]:
    """Load one explore artifact; wrong versions refused with a diagnosis."""
    from repro.chaos.artifact import check_format

    document = json.loads(Path(path).read_text())
    check_format(
        Path(path), document, frozenset({EXPLORE_FORMAT}),
        noun="explore artifact",
    )
    return document


def replay(document: Dict[str, Any]) -> "ReplayResult":
    """Re-execute an explore artifact and compare with the recording."""
    from repro.chaos.artifact import ReplayResult

    case = case_from_dict(document["case"])
    verdict = judge(
        case,
        document["choices"],
        document.get("engine", "indexed"),
        por=document.get("por", True),
    )
    return ReplayResult(
        reproduced=set(document["violated"]) <= set(verdict["violated"]),
        deterministic=verdict["digest"]
        == document["expected"]["trace_digest"],
        violated_now=verdict["violated"],
        digest=verdict["digest"],
    )
