"""State fingerprinting for the explorer's visited-set deduplication.

Two explored paths that land the whole system in the same state have
identical futures — the second subtree is the first one re-run.  The
fingerprint makes "same state" checkable: a canonical, hashable
summary of everything that can influence any future step or any
property verdict, and *nothing else*.

What goes in, and why:

* **component state** — every attribute of every component (and,
  recursively, protocol cores, child cores, pending tasklet generators
  with their instruction pointers and locals).  Generators are the hard
  part: a tasklet's continuation is ``(code position, locals, the
  generator it delegates to)``, which
  :func:`sanitize` captures via ``gi_frame.f_lasti`` /
  ``gi_frame.f_locals`` / ``gi_yieldfrom``.
* **network buffers** — per-destination *multisets* of
  ``(sender, component, payload)``.  Message ids are deliberately
  excluded (they encode the path, not the state), and so is
  ``ready_at``: the explorer always runs ``ConstantDelay(1)``, so every
  buffered message is ready from the next tick onward and readiness
  carries no extra information.
* **decisions** — value, pid, component, and whether the decision
  preceded the first crash (the QC Validity clause keys on that order,
  so two states differing only there must not merge).
* **operation history** — for register runs, the full
  invocation/response record including times: linearizability is a
  property of the whole history, so register states only merge when
  their histories match exactly.  (Blunt but sound; the POR does the
  heavy pruning for registers.)
* **absolute time** — included only while crash events are still
  pending: until the last scheduled crash fires, wall-clock position
  determines which failure-pattern suffix is still ahead.  After it,
  states are time-translation-invariant and the fingerprint says so by
  omission, which is where most dedup hits come from.
* **the POR context** — previous actor and the fresh-message multiset.
  The controller's enabled-set filter keys on these, so two occurrences
  of the same raw state under different contexts allow different
  continuations and must not merge (this is what makes dedup and POR
  sound *together*, not just separately).

Anything :func:`sanitize` cannot faithfully canonicalise becomes a
globally unique ``("opaque", ...)`` token, so unknown values can cause
missed merges but never a wrong one — dedup degrades toward plain DFS,
never toward unsoundness.

Two generations of the machinery live here:

* the **legacy path** (:func:`sanitize` + :func:`fingerprint` and the
  ``*_canonical`` helpers) — the original every-tick full
  re-canonicalisation.  Kept verbatim: it is the PR 4 wall-clock
  baseline that ``benchmarks/bench_explorer.py`` measures against, and
  its per-value behaviour is pinned by tier-1 unit tests.
* the **byte engine** (:class:`FingerprintEngine`) — the hot path.  It
  encodes values bottom-up into self-delimiting byte strings (the
  encoded bytes double as the stable sort keys that replace the old
  ``repr``-based sorting), caches per-host and per-destination
  encodings across ticks keyed on dirty tracking, and can canonicalise
  the assembled state under a group of process-id permutations
  (symmetry reduction — see :mod:`repro.explore.symmetry` and
  ``docs/EXPLORER.md`` for the soundness argument).  Its ``naive`` mode
  runs the identical encoding with every cache disabled; a tier-1
  equivalence suite asserts the two modes produce byte-identical
  digest sequences.
"""

from __future__ import annotations

import hashlib
import types
from random import Random
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.sim.network import Message, Network, ReferenceNetwork
from repro.sim.process import ProcessHost
from repro.sim.tasklets import WaitSteps, WaitUntil
from repro.sim.trace import RunTrace

#: Attributes never part of protocol state: host plumbing, trace/network
#: backrefs, and listener closures wired up by the component layer.
_SKIP_ATTRS = frozenset(
    {
        "ctx",
        "_host",
        "_network",
        "_trace",
        "_decide_listeners",
        "_outgoing_hooks",
        "_incoming_hooks",
    }
)

#: Recursion ceiling; anything deeper degrades to an opaque token.
_MAX_DEPTH = 40

# Globally unique opaque tokens: a state containing one never equals
# anything (not even a literal revisit of itself) — conservative, sound.
_opaque_serial = 0


def _opaque(value: Any) -> Tuple[Any, ...]:
    global _opaque_serial
    _opaque_serial += 1
    return ("opaque", type(value).__name__, _opaque_serial)


def _sorted_by_repr(items: Iterable[Any]) -> Tuple[Any, ...]:
    return tuple(sorted(items, key=repr))


def sanitize(value: Any, _depth: int = 0, _stack: Tuple[int, ...] = ()) -> Any:
    """Canonicalise ``value`` into nested tuples of primitives.

    Equal protocol states produce equal structures; structures that
    cannot be proven equal come out globally unique (see module doc).
    ``_stack`` carries the ids of objects on the current recursion path
    so reference cycles (component ↔ core, predicate closures over
    ``self``) become position-stable ``("cycle", type)`` markers.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if _depth > _MAX_DEPTH:
        return _opaque(value)
    obj_id = id(value)
    if obj_id in _stack:
        return ("cycle", type(value).__name__)
    stack = _stack + (obj_id,)
    depth = _depth + 1

    if isinstance(value, (tuple, list)):
        tag = "t" if isinstance(value, tuple) else "l"
        return (tag,) + tuple(sanitize(v, depth, stack) for v in value)
    if isinstance(value, (set, frozenset)):
        return ("s",) + _sorted_by_repr(sanitize(v, depth, stack) for v in value)
    if isinstance(value, dict):
        return ("d",) + _sorted_by_repr(
            (sanitize(k, depth, stack), sanitize(v, depth, stack))
            for k, v in value.items()
        )

    if isinstance(value, WaitSteps):
        return ("wait-steps", value.remaining)
    if isinstance(value, WaitUntil):
        return ("wait-until", sanitize(value.predicate, depth, stack))
    if isinstance(value, Message):
        return (
            "msg",
            value.sender,
            value.dest,
            value.component,
            sanitize(value.payload, depth, stack),
        )
    if isinstance(value, Random):
        # The full Mersenne state, hashed: future draws depend on it.
        return ("rng", hashlib.sha256(repr(value.getstate()).encode()).hexdigest())
    if isinstance(value, types.GeneratorType):
        frame = value.gi_frame
        if frame is None:
            return ("gen", value.gi_code.co_qualname, "exhausted")
        local_items = _sorted_by_repr(
            (name, sanitize(v, depth, stack))
            for name, v in frame.f_locals.items()
            if name != "self"  # covered by the owning component's walk
        )
        return (
            "gen",
            value.gi_code.co_qualname,
            frame.f_lasti,
            local_items,
            sanitize(value.gi_yieldfrom, depth, stack),
        )
    if isinstance(value, types.FunctionType):
        cells = value.__closure__ or ()
        return (
            "fn",
            value.__module__,
            value.__qualname__,
            value.__code__.co_firstlineno,
            tuple(sanitize(c.cell_contents, depth, stack) for c in cells),
        )
    if isinstance(value, types.MethodType):
        return (
            "method",
            value.__func__.__qualname__,
            sanitize(value.__self__, depth, stack),
        )
    if isinstance(value, (Network, ReferenceNetwork, RunTrace)):
        # Backrefs that slipped past the skip list; never protocol state.
        return ("ref", type(value).__name__)

    # Generic object: type tag + its attribute dict (minus plumbing).
    state = getattr(value, "__dict__", None)
    if state is None and hasattr(type(value), "__slots__"):
        state = {
            name: getattr(value, name)
            for name in type(value).__slots__
            if hasattr(value, name)
        }
    if state is not None:
        return (
            "obj",
            type(value).__module__,
            type(value).__qualname__,
            _sorted_by_repr(
                (k, sanitize(v, depth, stack))
                for k, v in state.items()
                if k not in _SKIP_ATTRS
            ),
        )
    return _opaque(value)


def host_canonical(host: ProcessHost) -> Tuple[Any, ...]:
    """One process's canonical state: components + pending tasklets."""
    components = tuple(
        (name, sanitize(comp)) for name, comp in sorted(host.components.items())
    )
    tasklets = tuple(
        (task.name, task.started, sanitize(task.wait), sanitize(task.gen))
        for task in host._driver._tasklets
        if not task.done
    )
    return (host._started, components, tasklets)


def _buffered(network: Any, dest: int) -> List[Message]:
    """Every in-flight message for ``dest``, any engine."""
    core = getattr(network, "_core", None)
    if core is not None:  # native engine: buffers live in C
        return core.in_flight(dest)
    if hasattr(network, "_buffers"):  # indexed engine
        buf = network._buffers[dest]
        return [m for _, _, m in buf.future] + list(buf.ready.values())
    return list(network._pending[dest])  # reference engine


def buffers_canonical(network: Any) -> Tuple[Any, ...]:
    """Per-destination multisets of (sender, component, payload)."""
    per_dest = []
    for dest in range(network.n):
        per_dest.append(
            _sorted_by_repr(
                (m.sender, m.component, sanitize(m.payload))
                for m in _buffered(network, dest)
            )
        )
    return tuple(per_dest)


def decisions_canonical(
    trace: RunTrace, first_crash: Optional[int]
) -> Tuple[Any, ...]:
    """Decisions as an order-free set, tagged with crash-relative order."""
    return _sorted_by_repr(
        (
            d.pid,
            d.component,
            sanitize(d.value),
            first_crash is not None and d.time >= first_crash,
        )
        for d in trace.decisions
    )


def operations_canonical(trace: RunTrace) -> Tuple[Any, ...]:
    """The full op history, times included (see module doc)."""
    return tuple(
        (
            op.pid,
            op.component,
            op.kind,
            sanitize(op.args),
            op.invoke_time,
            op.response_time,
            sanitize(op.result),
        )
        for op in trace.operations
    )


def fingerprint(
    system: Any,
    now: int,
    crashes_pending: bool,
    first_crash: Optional[int],
    por_context: Tuple[Any, ...],
    cursors: Optional[Tuple[int, ...]] = None,
) -> str:
    """The dedup key for the system's state at the start of tick ``now``.

    ``cursors`` is the detector-script cursor vector for scripted roots
    (None for constant assignments): two states whose processes sit at
    different script stages read different detector values from here
    on, so the cursor is part of the state.
    """
    structure = (
        tuple(host_canonical(host) for host in system.hosts),
        buffers_canonical(system.network),
        decisions_canonical(system.trace, first_crash),
        operations_canonical(system.trace),
        now if crashes_pending else None,
        por_context,
    )
    if cursors is not None:
        structure = structure + (cursors,)
    return hashlib.sha256(repr(structure).encode()).hexdigest()


# ---------------------------------------------------------------------------
# The byte engine: incremental, symmetry-aware fingerprinting.
# ---------------------------------------------------------------------------

#: A cacheable encoding of one value (or one composite section):
#: ``data`` is the self-delimiting canonical byte string, ``ambiguous``
#: the set of ints in ``[0, n)`` that appeared at *untagged* positions
#: (positions not structurally known to be pids — see the symmetry
#: validity rule below), ``opaque`` whether an unencodable value was
#: reached anywhere inside.
class EncodedUnit(NamedTuple):
    data: bytes
    ambiguous: FrozenSet[int]
    opaque: bool


#: Interned ambiguity sets, keyed by the compiled encoder's bit mask.
#: Real states mention only a handful of distinct pid subsets, so the
#: native unit builders (which report ambiguity as an int mask) can
#: share one frozenset per subset instead of materialising a set per
#: unit.
_MASK_SETS: Dict[int, FrozenSet[int]] = {0: frozenset()}


def _mask_set(mask: int) -> FrozenSet[int]:
    cached = _MASK_SETS.get(mask)
    if cached is None:
        cached = _MASK_SETS[mask] = frozenset(
            bit for bit in range(mask.bit_length()) if mask >> bit & 1
        )
    return cached


class _Encoder:
    """Bottom-up canonical byte encoding of Python values.

    The encoding mirrors :func:`sanitize` case by case but emits
    self-delimiting bytes instead of nested tuples, so container
    canonical order is a plain lexicographic sort of child encodings —
    no ``repr`` calls — and the final digest hashes bytes that already
    exist instead of ``repr`` of a tuple tree.

    Two accumulators ride along with every encode call:

    * ``ambig`` — every ``int`` in ``[0, n)`` encountered at a position
      that is *not* structurally known to be a non-pid.  Structurally
      known non-pids (wait counters, instruction offsets, line numbers,
      operation timestamps) are encoded through dedicated branches that
      skip the accumulator.  The symmetry reduction may only apply a
      permutation that fixes every accumulated int (see
      :class:`FingerprintEngine`).
    * ``opaque`` — set when a value cannot be decomposed (no
      ``__dict__``/``__slots__``) or recursion exceeds ``_MAX_DEPTH``.

    ``nodes`` counts every value-tree node visited — the
    ``explore_fp_nodes`` work metric.
    """

    __slots__ = ("n", "ambig", "opaque", "nodes")

    def __init__(self, n: int):
        self.n = n
        self.ambig: set = set()
        self.opaque = False
        self.nodes = 0

    def enc(self, value: Any, depth: int = 0, stack: Tuple[int, ...] = ()) -> bytes:
        self.nodes += 1
        if value is None:
            return b"N;"
        if value is True:  # bool before int: True == 1 but is never a pid
            return b"T;"
        if value is False:
            return b"F;"
        if isinstance(value, int):
            if 0 <= value < self.n:
                self.ambig.add(value)
            return b"i%d;" % value
        if isinstance(value, float):
            return b"f" + repr(value).encode() + b";"
        if isinstance(value, str):
            raw = value.encode("utf-8", "backslashreplace")
            return b"s%d:" % len(raw) + raw
        if isinstance(value, bytes):
            return b"b%d:" % len(value) + value
        if depth > _MAX_DEPTH:
            self.opaque = True
            return b"?" + type(value).__name__.encode() + b";"
        obj_id = id(value)
        if obj_id in stack:
            return b"c" + type(value).__name__.encode() + b";"
        stack = stack + (obj_id,)
        depth += 1

        if isinstance(value, tuple):
            return b"(" + b"".join(self.enc(v, depth, stack) for v in value) + b")"
        if isinstance(value, list):
            return b"[" + b"".join(self.enc(v, depth, stack) for v in value) + b"]"
        if isinstance(value, (set, frozenset)):
            return b"{" + b"".join(sorted(self.enc(v, depth, stack) for v in value)) + b"}"
        if isinstance(value, dict):
            items = sorted(
                self.enc(k, depth, stack) + self.enc(v, depth, stack)
                for k, v in value.items()
            )
            return b"<" + b"".join(items) + b">"

        if isinstance(value, WaitSteps):
            return b"W%d;" % value.remaining  # a duration, never a pid
        if isinstance(value, WaitUntil):
            return b"U" + self.enc(value.predicate, depth, stack)
        if isinstance(value, Message):
            # Untagged position (a message stored inside component
            # state): sender/dest are pid-valued, so route them through
            # the plain int branch and let the accumulator see them.
            return (
                b"M"
                + self.enc(value.sender, depth, stack)
                + self.enc(value.dest, depth, stack)
                + self.enc(value.component, depth, stack)
                + self.enc(value.payload, depth, stack)
            )
        if isinstance(value, Random):
            digest = hashlib.sha256(repr(value.getstate()).encode()).digest()
            return b"R" + digest
        if isinstance(value, types.GeneratorType):
            frame = value.gi_frame
            if frame is None:
                return b"gX" + self.enc(value.gi_code.co_qualname, depth, stack)
            local_items = sorted(
                self.enc(name, depth, stack) + self.enc(v, depth, stack)
                for name, v in frame.f_locals.items()
                if name != "self"  # covered by the owning component's walk
            )
            return (
                b"g"
                + self.enc(value.gi_code.co_qualname, depth, stack)
                + b"@%d;" % frame.f_lasti  # instruction offset, never a pid
                + b"".join(local_items)
                + b"/"
                + self.enc(value.gi_yieldfrom, depth, stack)
            )
        if isinstance(value, types.FunctionType):
            cells = value.__closure__ or ()
            return (
                b"L"
                + self.enc(value.__module__, depth, stack)
                + self.enc(value.__qualname__, depth, stack)
                + b"#%d;" % value.__code__.co_firstlineno  # never a pid
                + b"("
                + b"".join(self.enc(c.cell_contents, depth, stack) for c in cells)
                + b")"
            )
        if isinstance(value, types.MethodType):
            return (
                b"m"
                + self.enc(value.__func__.__qualname__, depth, stack)
                + self.enc(value.__self__, depth, stack)
            )
        if isinstance(value, (Network, ReferenceNetwork, RunTrace)):
            return b"r" + type(value).__name__.encode() + b";"

        state = getattr(value, "__dict__", None)
        if state is None and hasattr(type(value), "__slots__"):
            state = {
                name: getattr(value, name)
                for name in type(value).__slots__
                if hasattr(value, name)
            }
        if state is not None:
            items = sorted(
                self.enc(k, depth, stack) + self.enc(v, depth, stack)
                for k, v in state.items()
                if k not in _SKIP_ATTRS
            )
            return (
                b"o"
                + self.enc(type(value).__module__, depth, stack)
                + self.enc(type(value).__qualname__, depth, stack)
                + b"<"
                + b"".join(items)
                + b">"
            )
        self.opaque = True
        return b"?" + type(value).__name__.encode() + b";"


def _with_length(data: bytes) -> bytes:
    return b"%d:" % len(data) + data


class FingerprintEngine:
    """Incremental, symmetry-aware dedup keys for one exploration.

    One engine serves one :func:`~repro.explore.engine.explore_case`
    call: :meth:`begin_run` resets the per-run caches before each
    controlled replay, :meth:`fingerprint` produces the dedup key at
    the start of each tick.  Two modes share one encoding:

    * ``"incremental"`` — per-host encodings are reused while the
      host's ``steps_taken`` is unchanged (hosts only mutate inside
      their own ``take_step``, so the step counter self-validates the
      cache); per-destination buffer encodings are reused until the
      destination is dirtied (a message was sent to it, or its owner
      acted and may have consumed one); decision encodings are
      append-only; completed-operation encodings are frozen.
    * ``"naive"`` — the identical encoding with every cache disabled,
      the oracle the equivalence suite compares byte-for-byte against.
    * ``"native"`` — incremental caching with the value encoder served
      by the compiled core (:mod:`repro._native`).  The C encoder is a
      byte-exact port of :class:`_Encoder`, so digests stay identical
      to ``"incremental"``; when the extension is unavailable (not
      built, or ``REPRO_NATIVE=0``) the mode silently degrades to the
      pure incremental path — same digests, just slower.

    **Symmetry.** ``perms`` is the case's admissible permutation group
    (:func:`repro.explore.symmetry.admissible_perms`; identity-only
    when the reduction is off).  A permutation ``perm`` is *valid* at a
    state only if it fixes every ambiguous int the encoding collected —
    any ``int`` in ``[0, n)`` sitting at a position not structurally
    known to be a pid, because relabeling the tagged positions (host
    slots, buffer destinations and senders, decision/operation pids,
    the POR context) while leaving an untagged pid reference behind
    would merge semantically different states.  The canonical form is
    the lexicographic minimum of the assembled bytes over the valid
    permutations.

    **Opacity.** When any encoded value is opaque the assembly gets a
    ``(run serial, tick)`` suffix — unique per fingerprint call within
    this engine, so the state can never merge with anything (matching
    the legacy globally-unique-token semantics) while staying
    deterministic, which keeps naive and incremental byte-identical.
    The ``explore_opaque_tokens`` counter makes the degradation
    visible.
    """

    MODES = ("incremental", "naive", "native")

    def __init__(
        self,
        n: int,
        mode: str = "incremental",
        counters: Any = None,
        perms: Optional[Sequence[Tuple[int, ...]]] = None,
    ):
        if mode not in self.MODES:
            raise ValueError(f"unknown fingerprint mode {mode!r}; have {self.MODES}")
        self.n = n
        self.mode = mode
        #: Whether per-host/buffer/decision/operation caches are live
        #: (everything but ``naive``; the caches are mode-independent
        #: of *how* values get encoded).
        self.cached = mode != "naive"
        self.counters = counters
        self.perms: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(p) for p in (perms or [tuple(range(n))])
        )
        self.native = False
        if mode == "native":
            from repro import _native

            encoder_cls = _native.encoder_class()
            if encoder_cls is not None and n <= 64:
                self._encoder = encoder_cls(n)
                self.native = True
            else:  # graceful degradation: same digests, pure Python
                self._encoder = _Encoder(n)
        else:
            self._encoder = _Encoder(n)
        self._nodes_synced = 0
        self._calls_synced = 0
        self._bytes_synced = 0
        self._run_serial = 0
        self._system: Any = None
        # per-run caches (incremental mode)
        self._host_cache: Dict[int, Tuple[Tuple[int, bool], EncodedUnit]] = {}
        self._buffer_cache: Dict[int, List[Tuple[int, EncodedUnit]]] = {}
        self._dirty: set = set()
        self._decision_cache: List[Tuple[int, EncodedUnit]] = []
        self._operation_cache: List[Optional[Tuple[int, EncodedUnit]]] = []

    # -- lifecycle ------------------------------------------------------
    def begin_run(self, system: Any) -> None:
        """Reset per-run caches; every replay rebuilds fresh objects."""
        self._run_serial += 1
        self._system = system
        self._host_cache.clear()
        self._buffer_cache.clear()
        self._dirty = set(range(self.n))
        self._decision_cache = []
        self._operation_cache = []

    @property
    def nodes(self) -> int:
        """Value-tree nodes encoded so far (the fp-work metric)."""
        return self._encoder.nodes

    # -- unit encoding --------------------------------------------------
    def _unit(self, build: Any) -> EncodedUnit:
        """Run ``build(encoder)`` with isolated ambiguity/opacity
        accumulators, so the result is cacheable on its own."""
        enc = self._encoder
        saved_ambig, saved_opaque = enc.ambig, enc.opaque
        enc.ambig, enc.opaque = set(), False
        data = build(enc)
        unit = EncodedUnit(data, frozenset(enc.ambig), enc.opaque)
        enc.ambig, enc.opaque = saved_ambig, saved_opaque
        return unit

    def _encode_host(self, host: ProcessHost) -> EncodedUnit:
        if self.native:
            # The tasklet name (``"comp@pid"``) is cosmetic and
            # pid-derived, so it is excluded here exactly as in the
            # pure build below.
            data, mask, opaque = self._encoder.enc_host(
                host._started,
                sorted(host.components.items()),
                [
                    (task.started, task.wait, task.gen)
                    for task in host._driver._tasklets
                    if not task.done
                ],
            )
            return EncodedUnit(data, _mask_set(mask), opaque)

        def build(enc: _Encoder) -> bytes:
            parts = [b"H", b"T;" if host._started else b"F;"]
            for name, comp in sorted(host.components.items()):
                parts.append(enc.enc(name))
                parts.append(enc.enc(comp))
            parts.append(b"|")
            for task in host._driver._tasklets:
                if task.done:
                    continue
                # The tasklet name (``"comp@pid"``) is cosmetic — only
                # ever rendered in an error message — and pid-derived,
                # so it is deliberately excluded: keeping it would block
                # every symmetry merge for free.
                parts.append(b"t")
                parts.append(b"T;" if task.started else b"F;")
                parts.append(enc.enc(task.wait))
                parts.append(enc.enc(task.gen))
            return b"".join(parts)

        return self._unit(build)

    def _host_units(self) -> List[EncodedUnit]:
        counters = self.counters
        units = []
        for pid, host in enumerate(self._system.hosts):
            if self.cached:
                version = (host.steps_taken, host._started)
                cached = self._host_cache.get(pid)
                if cached is not None and cached[0] == version:
                    if counters is not None:
                        counters.explore_fp_host_hits += 1
                    units.append(cached[1])
                    continue
                if counters is not None:
                    counters.explore_fp_host_misses += 1
                unit = self._encode_host(host)
                self._host_cache[pid] = (version, unit)
            else:
                unit = self._encode_host(host)
            units.append(unit)
        return units

    def _buffer_entries(self, dest: int) -> List[Tuple[int, EncodedUnit]]:
        if self.cached and dest not in self._dirty:
            cached = self._buffer_cache.get(dest)
            if cached is not None:
                return cached
        entries = []
        if self.native:
            enc_pair = self._encoder.enc_pair
            for message in _buffered(self._system.network, dest):
                data, mask, opaque = enc_pair(message.component, message.payload)
                entries.append(
                    (message.sender, EncodedUnit(data, _mask_set(mask), opaque))
                )
            if self.cached:
                self._buffer_cache[dest] = entries
            return entries
        for message in _buffered(self._system.network, dest):
            # The sender is kept outside the encoded bytes: it is a
            # *tagged* pid position, relabeled at assembly time.
            unit = self._unit(
                lambda enc, m=message: enc.enc(m.component) + enc.enc(m.payload)
            )
            entries.append((message.sender, unit))
        if self.cached:
            self._buffer_cache[dest] = entries
        return entries

    def _decision_entries(self, first_crash: Optional[int]) -> List[Tuple[int, EncodedUnit]]:
        decisions = self._system.trace.decisions
        cache = self._decision_cache if self.cached else []
        while len(cache) < len(decisions):  # append-only record
            decision = decisions[len(cache)]
            postcrash = first_crash is not None and decision.time >= first_crash
            if self.native:
                data, mask, opaque = self._encoder.enc_decision(
                    decision.component, decision.value, postcrash
                )
                unit = EncodedUnit(data, _mask_set(mask), opaque)
            else:
                unit = self._unit(
                    lambda enc, d=decision, p=postcrash: (
                        enc.enc(d.component)
                        + enc.enc(d.value)
                        + (b"T;" if p else b"F;")
                    )
                )
            cache.append((decision.pid, unit))
        return cache

    def _operation_entries(self) -> List[Tuple[int, EncodedUnit]]:
        operations = self._system.trace.operations
        cache = self._operation_cache if self.cached else []
        while len(cache) < len(operations):
            cache.append(None)
        entries: List[Tuple[int, EncodedUnit]] = []
        for index, op in enumerate(operations):
            cached = cache[index]
            if cached is not None:
                entries.append(cached)
                continue
            if self.native:
                data, mask, opaque = self._encoder.enc_operation(
                    op.component,
                    op.kind,
                    op.args,
                    op.invoke_time,  # timestamps, never pids
                    op.response_time,
                    op.result,
                )
                unit = EncodedUnit(data, _mask_set(mask), opaque)
            else:
                unit = self._unit(
                    lambda enc, o=op: (
                        enc.enc(o.component)
                        + enc.enc(o.kind)
                        + enc.enc(o.args)
                        + b"@%d;" % o.invoke_time  # timestamps, never pids
                        + (
                            b"@%d;" % o.response_time
                            if o.response_time is not None
                            else b"N;"
                        )
                        + enc.enc(o.result)
                    )
                )
            entry = (op.pid, unit)
            if self.cached and not op.pending:
                cache[index] = entry  # records mutate until completion
            entries.append(entry)
        return entries

    # -- assembly -------------------------------------------------------
    def _assemble(
        self,
        perm: Tuple[int, ...],
        host_units: List[EncodedUnit],
        buffer_entries: List[List[Tuple[int, EncodedUnit]]],
        decision_entries: List[Tuple[int, EncodedUnit]],
        operation_entries: List[Tuple[int, EncodedUnit]],
        time_part: bytes,
        por_part: Optional[Tuple[Optional[int], bool, List[Tuple[int, int, EncodedUnit]]]],
        cursors: Optional[Tuple[int, ...]] = None,
    ) -> bytes:
        n = self.n
        parts = [b"FP1"]
        slots: List[bytes] = [b""] * n
        for pid in range(n):
            slots[perm[pid]] = host_units[pid].data
        for data in slots:
            parts.append(_with_length(data))
        parts.append(b"|B")
        buffer_slots: List[bytes] = [b""] * n
        for dest in range(n):
            encoded = sorted(
                b"e%d;" % perm[sender] + unit.data
                for sender, unit in buffer_entries[dest]
            )
            buffer_slots[perm[dest]] = b"".join(encoded)
        for data in buffer_slots:
            parts.append(_with_length(data))
        parts.append(b"|D")
        parts.append(
            b"".join(
                sorted(
                    b"d%d;" % perm[pid] + unit.data
                    for pid, unit in decision_entries
                )
            )
        )
        parts.append(b"|O")
        for pid, unit in operation_entries:
            parts.append(b"p%d;" % perm[pid] + unit.data)
        parts.append(time_part)
        if por_part is None:
            parts.append(b"|P0")
        else:
            prev, boundary, fresh_entries = por_part
            parts.append(b"|P1")
            parts.append(b"v%d;" % perm[prev] if prev is not None else b"vN;")
            parts.append(b"T;" if boundary else b"F;")
            parts.append(
                b"".join(
                    sorted(
                        b"f%d,%d;" % (perm[sender], perm[dest]) + unit.data
                        for sender, dest, unit in fresh_entries
                    )
                )
            )
        if cursors is not None:
            # Detector-script cursors, slotted like hosts: process p's
            # stage index lands at slot perm[p].  Stage indices are
            # emitted through a dedicated branch (``c%d;``) — they are
            # structurally never pids, so they stay out of the
            # ambiguity accumulator and cannot veto a permutation.
            cursor_slots = [0] * n
            for pid in range(n):
                cursor_slots[perm[pid]] = cursors[pid]
            parts.append(b"|S")
            parts.append(b"".join(b"c%d;" % c for c in cursor_slots))
        return b"".join(parts)

    # -- the dedup key --------------------------------------------------
    def fingerprint(
        self,
        now: int,
        crashes_pending: bool,
        first_crash: Optional[int],
        prev: Optional[int],
        fresh: Sequence[Message],
        boundary: bool,
        por: bool,
        cursors: Optional[Tuple[int, ...]] = None,
    ) -> str:
        """The dedup key for the system state at the start of ``now``.

        Covers the same ground as the legacy :func:`fingerprint` —
        hosts, buffers, decisions, operations, absolute time while
        crashes are pending, the POR context when the POR is on, and
        the detector-script cursor vector for scripted roots — via the
        byte encoding, canonicalised under the valid subset of the
        engine's permutation group.
        """
        if self.cached:
            if prev is not None:
                self._dirty.add(prev)  # its buffer may have drained
            for message in fresh:
                self._dirty.add(message.dest)
        host_units = self._host_units()
        buffer_entries = [self._buffer_entries(d) for d in range(self.n)]
        if self.cached:
            self._dirty.clear()
        decision_entries = self._decision_entries(first_crash)
        operation_entries = self._operation_entries()
        time_part = b"|t%d;" % now if crashes_pending else b"|tN;"
        por_part = None
        if por:
            if self.native:
                enc_pair = self._encoder.enc_pair
                fresh_entries = []
                for m in fresh:
                    data, mask, opaque = enc_pair(m.component, m.payload)
                    fresh_entries.append(
                        (m.sender, m.dest, EncodedUnit(data, _mask_set(mask), opaque))
                    )
            else:
                fresh_entries = [
                    (
                        m.sender,
                        m.dest,
                        self._unit(
                            lambda enc, msg=m: enc.enc(msg.component)
                            + enc.enc(msg.payload)
                        ),
                    )
                    for m in fresh
                ]
            por_part = (prev, boundary, fresh_entries)

        ambiguous: set = set()
        opaque = False
        for unit in host_units:
            ambiguous |= unit.ambiguous
            opaque = opaque or unit.opaque
        for entries in buffer_entries:
            for _, unit in entries:
                ambiguous |= unit.ambiguous
                opaque = opaque or unit.opaque
        for _, unit in decision_entries:
            ambiguous |= unit.ambiguous
            opaque = opaque or unit.opaque
        for _, unit in operation_entries:
            ambiguous |= unit.ambiguous
            opaque = opaque or unit.opaque
        if por_part is not None:
            for _, _, unit in por_part[2]:
                ambiguous |= unit.ambiguous
                opaque = opaque or unit.opaque

        args = (
            host_units,
            buffer_entries,
            decision_entries,
            operation_entries,
            time_part,
            por_part,
            cursors,
        )
        best = self._assemble(self.perms[0], *args)
        for perm in self.perms[1:]:
            # Valid only when every untagged pid reference is fixed —
            # moving tagged slots around an unmoved untagged reference
            # would relabel the state inconsistently.
            if all(perm[a] == a for a in ambiguous):
                candidate = self._assemble(perm, *args)
                if candidate < best:
                    best = candidate
        if opaque:
            best += b"!%d@%d;" % (self._run_serial, now)
            if self.counters is not None:
                self.counters.explore_opaque_tokens += 1
        if self.counters is not None:
            self.counters.explore_fp_nodes += self._encoder.nodes - self._nodes_synced
            self._nodes_synced = self._encoder.nodes
            if self.native:
                encoder = self._encoder
                self.counters.explore_native_calls += (
                    encoder.calls - self._calls_synced
                )
                self.counters.native_encode_bytes += (
                    encoder.bytes_encoded - self._bytes_synced
                )
                self._calls_synced = encoder.calls
                self._bytes_synced = encoder.bytes_encoded
        return hashlib.sha256(best).hexdigest()
