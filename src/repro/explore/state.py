"""State fingerprinting for the explorer's visited-set deduplication.

Two explored paths that land the whole system in the same state have
identical futures — the second subtree is the first one re-run.  The
fingerprint makes "same state" checkable: a canonical, hashable
summary of everything that can influence any future step or any
property verdict, and *nothing else*.

What goes in, and why:

* **component state** — every attribute of every component (and,
  recursively, protocol cores, child cores, pending tasklet generators
  with their instruction pointers and locals).  Generators are the hard
  part: a tasklet's continuation is ``(code position, locals, the
  generator it delegates to)``, which
  :func:`sanitize` captures via ``gi_frame.f_lasti`` /
  ``gi_frame.f_locals`` / ``gi_yieldfrom``.
* **network buffers** — per-destination *multisets* of
  ``(sender, component, payload)``.  Message ids are deliberately
  excluded (they encode the path, not the state), and so is
  ``ready_at``: the explorer always runs ``ConstantDelay(1)``, so every
  buffered message is ready from the next tick onward and readiness
  carries no extra information.
* **decisions** — value, pid, component, and whether the decision
  preceded the first crash (the QC Validity clause keys on that order,
  so two states differing only there must not merge).
* **operation history** — for register runs, the full
  invocation/response record including times: linearizability is a
  property of the whole history, so register states only merge when
  their histories match exactly.  (Blunt but sound; the POR does the
  heavy pruning for registers.)
* **absolute time** — included only while crash events are still
  pending: until the last scheduled crash fires, wall-clock position
  determines which failure-pattern suffix is still ahead.  After it,
  states are time-translation-invariant and the fingerprint says so by
  omission, which is where most dedup hits come from.
* **the POR context** — previous actor and the fresh-message multiset.
  The controller's enabled-set filter keys on these, so two occurrences
  of the same raw state under different contexts allow different
  continuations and must not merge (this is what makes dedup and POR
  sound *together*, not just separately).

Anything :func:`sanitize` cannot faithfully canonicalise becomes a
globally unique ``("opaque", ...)`` token, so unknown values can cause
missed merges but never a wrong one — dedup degrades toward plain DFS,
never toward unsoundness.
"""

from __future__ import annotations

import hashlib
import types
from random import Random
from typing import Any, Iterable, List, Optional, Tuple

from repro.sim.network import Message, Network, ReferenceNetwork
from repro.sim.process import ProcessHost
from repro.sim.tasklets import WaitSteps, WaitUntil
from repro.sim.trace import RunTrace

#: Attributes never part of protocol state: host plumbing, trace/network
#: backrefs, and listener closures wired up by the component layer.
_SKIP_ATTRS = frozenset(
    {
        "ctx",
        "_host",
        "_network",
        "_trace",
        "_decide_listeners",
        "_outgoing_hooks",
        "_incoming_hooks",
    }
)

#: Recursion ceiling; anything deeper degrades to an opaque token.
_MAX_DEPTH = 40

# Globally unique opaque tokens: a state containing one never equals
# anything (not even a literal revisit of itself) — conservative, sound.
_opaque_serial = 0


def _opaque(value: Any) -> Tuple[Any, ...]:
    global _opaque_serial
    _opaque_serial += 1
    return ("opaque", type(value).__name__, _opaque_serial)


def _sorted_by_repr(items: Iterable[Any]) -> Tuple[Any, ...]:
    return tuple(sorted(items, key=repr))


def sanitize(value: Any, _depth: int = 0, _stack: Tuple[int, ...] = ()) -> Any:
    """Canonicalise ``value`` into nested tuples of primitives.

    Equal protocol states produce equal structures; structures that
    cannot be proven equal come out globally unique (see module doc).
    ``_stack`` carries the ids of objects on the current recursion path
    so reference cycles (component ↔ core, predicate closures over
    ``self``) become position-stable ``("cycle", type)`` markers.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if _depth > _MAX_DEPTH:
        return _opaque(value)
    obj_id = id(value)
    if obj_id in _stack:
        return ("cycle", type(value).__name__)
    stack = _stack + (obj_id,)
    depth = _depth + 1

    if isinstance(value, (tuple, list)):
        tag = "t" if isinstance(value, tuple) else "l"
        return (tag,) + tuple(sanitize(v, depth, stack) for v in value)
    if isinstance(value, (set, frozenset)):
        return ("s",) + _sorted_by_repr(sanitize(v, depth, stack) for v in value)
    if isinstance(value, dict):
        return ("d",) + _sorted_by_repr(
            (sanitize(k, depth, stack), sanitize(v, depth, stack))
            for k, v in value.items()
        )

    if isinstance(value, WaitSteps):
        return ("wait-steps", value.remaining)
    if isinstance(value, WaitUntil):
        return ("wait-until", sanitize(value.predicate, depth, stack))
    if isinstance(value, Message):
        return (
            "msg",
            value.sender,
            value.dest,
            value.component,
            sanitize(value.payload, depth, stack),
        )
    if isinstance(value, Random):
        # The full Mersenne state, hashed: future draws depend on it.
        return ("rng", hashlib.sha256(repr(value.getstate()).encode()).hexdigest())
    if isinstance(value, types.GeneratorType):
        frame = value.gi_frame
        if frame is None:
            return ("gen", value.gi_code.co_qualname, "exhausted")
        local_items = _sorted_by_repr(
            (name, sanitize(v, depth, stack))
            for name, v in frame.f_locals.items()
            if name != "self"  # covered by the owning component's walk
        )
        return (
            "gen",
            value.gi_code.co_qualname,
            frame.f_lasti,
            local_items,
            sanitize(value.gi_yieldfrom, depth, stack),
        )
    if isinstance(value, types.FunctionType):
        cells = value.__closure__ or ()
        return (
            "fn",
            value.__module__,
            value.__qualname__,
            value.__code__.co_firstlineno,
            tuple(sanitize(c.cell_contents, depth, stack) for c in cells),
        )
    if isinstance(value, types.MethodType):
        return (
            "method",
            value.__func__.__qualname__,
            sanitize(value.__self__, depth, stack),
        )
    if isinstance(value, (Network, ReferenceNetwork, RunTrace)):
        # Backrefs that slipped past the skip list; never protocol state.
        return ("ref", type(value).__name__)

    # Generic object: type tag + its attribute dict (minus plumbing).
    state = getattr(value, "__dict__", None)
    if state is None and hasattr(type(value), "__slots__"):
        state = {
            name: getattr(value, name)
            for name in type(value).__slots__
            if hasattr(value, name)
        }
    if state is not None:
        return (
            "obj",
            type(value).__module__,
            type(value).__qualname__,
            _sorted_by_repr(
                (k, sanitize(v, depth, stack))
                for k, v in state.items()
                if k not in _SKIP_ATTRS
            ),
        )
    return _opaque(value)


def host_canonical(host: ProcessHost) -> Tuple[Any, ...]:
    """One process's canonical state: components + pending tasklets."""
    components = tuple(
        (name, sanitize(comp)) for name, comp in sorted(host.components.items())
    )
    tasklets = tuple(
        (task.name, task.started, sanitize(task.wait), sanitize(task.gen))
        for task in host._driver._tasklets
        if not task.done
    )
    return (host._started, components, tasklets)


def _buffered(network: Any, dest: int) -> List[Message]:
    """Every in-flight message for ``dest``, either engine."""
    if hasattr(network, "_buffers"):  # indexed engine
        buf = network._buffers[dest]
        return [m for _, _, m in buf.future] + list(buf.ready.values())
    return list(network._pending[dest])  # reference engine


def buffers_canonical(network: Any) -> Tuple[Any, ...]:
    """Per-destination multisets of (sender, component, payload)."""
    per_dest = []
    for dest in range(network.n):
        per_dest.append(
            _sorted_by_repr(
                (m.sender, m.component, sanitize(m.payload))
                for m in _buffered(network, dest)
            )
        )
    return tuple(per_dest)


def decisions_canonical(
    trace: RunTrace, first_crash: Optional[int]
) -> Tuple[Any, ...]:
    """Decisions as an order-free set, tagged with crash-relative order."""
    return _sorted_by_repr(
        (
            d.pid,
            d.component,
            sanitize(d.value),
            first_crash is not None and d.time >= first_crash,
        )
        for d in trace.decisions
    )


def operations_canonical(trace: RunTrace) -> Tuple[Any, ...]:
    """The full op history, times included (see module doc)."""
    return tuple(
        (
            op.pid,
            op.component,
            op.kind,
            sanitize(op.args),
            op.invoke_time,
            op.response_time,
            sanitize(op.result),
        )
        for op in trace.operations
    )


def fingerprint(
    system: Any,
    now: int,
    crashes_pending: bool,
    first_crash: Optional[int],
    por_context: Tuple[Any, ...],
) -> str:
    """The dedup key for the system's state at the start of tick ``now``."""
    structure = (
        tuple(host_canonical(host) for host in system.hosts),
        buffers_canonical(system.network),
        decisions_canonical(system.trace, first_crash),
        operations_canonical(system.trace),
        now if crashes_pending else None,
        por_context,
    )
    return hashlib.sha256(repr(structure).encode()).hexdigest()
