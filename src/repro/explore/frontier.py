"""The frontier: root enumeration and the parallel exploration campaign.

A single :func:`~repro.explore.engine.explore_case` call exhausts one
subtree — one target, one constant detector assignment, one crash
schedule.  The frontier is the cartesian family of such roots
(:func:`enumerate_roots`): the detector assignments from
:mod:`repro.explore.assignments`, crossed with a small crash-schedule
family, crossed with the seeds that vary the target's inputs (NBAC's
vote vectors).  Together the roots cover every source of
nondeterminism the sim exposes: scheduling and delivery are enumerated
*inside* each subtree by the controller, detector values and crash
points *across* subtrees by the frontier.

Execution rides the stock :class:`~repro.runner.campaign.Campaign`
machinery: each root becomes an :class:`~repro.runner.spec.FnSpec`
cell calling :func:`explore_root` (module-level, picklable arguments
only), so the frontier gets the runner's worker pool, its failure
isolation, and its fingerprint-keyed on-disk cache — a finished
subtree whose case and options are unchanged is a cache hit, never
re-explored.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.explore.assignments import (
    assignment_requires_crash,
    assignments_for,
    switch_scripts_for,
)
from repro.explore.cases import ExploreCase, case_from_dict, case_to_dict
from repro.explore.engine import ExploreResult, Violation, explore_case
from repro.runner import Campaign, call, fn_spec

#: Pinned per-target smoke depths: deep enough that every mutant's
#: violation is reachable and shallow enough that the paired clean
#: target exhausts in seconds.  Mutant/clean pairs share a depth
#: (submajority↔paxos, eagerquit↔qc, hastycommit↔nbac) so "the mutant
#: fires where the clean target is silent" is an apples-to-apples
#: statement; the regression tests pin these numbers.
SMOKE_DEPTHS: Dict[str, int] = {
    "paxos": 10,
    "submajority": 10,
    "ct": 10,
    "qc": 10,
    "eagerquit": 10,
    "nbac": 6,
    "hastycommit": 6,
    "redcommit": 6,
    "register": 7,
}

#: Pinned smoke depths at n=3 — the size the hot-path overhaul makes
#: tractable.  Only the symmetry-safe NBAC pair is registered: the
#: mutant/clean pairing mirrors the n=2 table (hastycommit's premature
#: COMMIT fires at this depth while clean nbac exhausts violation-free
#: within the CI explore-smoke budget), and the regression tests pin
#: both halves.
SMOKE_DEPTHS_N3: Dict[str, int] = {
    "nbac": 6,
    "hastycommit": 6,
}

#: Seeds worth enumerating per target (the seed only feeds the target
#: builder).  NBAC's vote vector is seed-derived: even seeds vote
#: all-Yes, odd seeds carry one No — both matter, for the clean target
#: (both outcomes verified) and for hastycommit (the bug needs a No).
#: Consensus proposals follow the same convention since they went
#: pid-free (even = uniform, odd = pid 0 distinct); those targets pin
#: seed 1 so the explored roots keep *distinct* proposals — the only
#: shape on which an agreement mutant like submajority can fire at all.
DEFAULT_SEEDS: Dict[str, Tuple[int, ...]] = {
    "paxos": (1,),
    "ct": (1,),
    "qc": (1,),
    "submajority": (1,),
    "eagerquit": (1,),
    "nbac": (0, 1),
    "hastycommit": (0, 1),
    "redcommit": (1,),
}

#: Mutants whose bug hides behind a detector transition: undetectable
#: under constant assignments (they exhaust clean — the tests assert
#: it), so the CLI auto-enables ``--detector-switches`` and at least
#: one crash for them.
SWITCH_MUTANTS = frozenset({"redcommit"})


def crash_schedules(
    n: int, depth: int, max_crashes: int
) -> List[Tuple[Tuple[int, int], ...]]:
    """The crash-schedule family: boundary times, every victim.

    Times come from the window edges — ``1`` (crashed before its first
    step) and mid-window — because a crash commutes with every step it
    is not adjacent to; intermediate times add schedules the
    in-subtree interleaving enumeration already distinguishes better.
    At least one process always survives.
    """
    schedules: List[Tuple[Tuple[int, int], ...]] = [()]
    if max_crashes < 1:
        return schedules
    times = sorted({1, max(2, depth // 2)})
    for pid in range(n):
        for t in times:
            schedules.append(((pid, t),))
    if max_crashes >= 2:
        early = times[0]
        if n >= 3:  # keep at least one process alive
            for a in range(n):
                for b in range(a + 1, n):
                    schedules.append(((a, early), (b, early)))
    return schedules


def enumerate_roots(
    target: str,
    n: int,
    depth: Optional[int] = None,
    max_crashes: int = 0,
    seeds: Optional[Sequence[int]] = None,
    detector_switches: bool = False,
) -> List[ExploreCase]:
    """Every exploration root for one target at one size.

    With ``detector_switches`` the assignment family is extended by the
    target's history scripts (:func:`switch_scripts_for`) — the third
    choice dimension.  Scripts whose stages claim a failure (an FS
    ``red``, a Ψ FS-branch commitment) are only paired with schedules
    that actually crash someone; on a crash-free schedule no admissible
    switch time exists, so the root would be the constant-prefix subtree
    explored twice.
    """
    if depth is None:
        depth = SMOKE_DEPTHS.get(target, 8)
    if seeds is None:
        seeds = DEFAULT_SEEDS.get(target, (0,))
    assignments = list(assignments_for(target, n))
    if detector_switches:
        assignments.extend(switch_scripts_for(target, n))
    roots = []
    for seed in seeds:
        for assignment in assignments:
            needs_crash = assignment_requires_crash(assignment)
            for crashes in crash_schedules(n, depth, max_crashes):
                if len(crashes) >= n:
                    continue
                if needs_crash and not crashes:
                    continue
                roots.append(
                    ExploreCase(
                        target=target,
                        n=n,
                        depth=depth,
                        seed=seed,
                        crashes=crashes,
                        assignment=assignment,
                    )
                )
    return roots


def result_to_dict(result: ExploreResult) -> Dict[str, Any]:
    """A picklable, JSON-able summary of one explored subtree."""
    return {
        "case": case_to_dict(result.case),
        "engine": result.engine,
        "por": result.por,
        "dedup": result.dedup,
        "complete": result.complete,
        "symmetry": result.symmetry,
        "fingerprint_mode": result.fingerprint_mode,
        "stats": result.stats(),
        "counters": result.counters.as_dict(),
        "decision_vectors": sorted(
            [list(entry) for entry in vector]
            for vector in result.decision_vectors
        ),
        "violations": [
            {
                "choices": list(v.choices),
                "violated": list(v.violated),
                "decisions": [list(entry) for entry in v.decisions],
                "final_time": v.final_time,
            }
            for v in result.violations
        ],
        "incidents": list(result.incidents),
    }


def explore_root(
    case_dict: Dict[str, Any],
    engine: str = "indexed",
    por: bool = True,
    dedup: bool = True,
    stop_on_first_violation: bool = False,
    max_runs: Optional[int] = None,
    symmetry: Any = None,
    fingerprint_mode: str = "incremental",
) -> Dict[str, Any]:
    """One frontier cell: exhaust one root, return its summary dict.

    Module-level with primitive arguments so Campaign workers can
    import and the result cache can fingerprint it.
    """
    result = explore_case(
        case_from_dict(case_dict),
        engine=engine,
        por=por,
        dedup=dedup,
        stop_on_first_violation=stop_on_first_violation,
        max_runs=max_runs,
        symmetry=symmetry,
        fingerprint_mode=fingerprint_mode,
    )
    return result_to_dict(result)


def frontier_campaign(
    roots: Iterable[ExploreCase],
    engine: str = "indexed",
    por: bool = True,
    dedup: bool = True,
    stop_on_first_violation: bool = False,
    max_runs: Optional[int] = None,
    symmetry: Any = None,
    fingerprint_mode: str = "incremental",
) -> Campaign:
    """The Campaign whose cells are the given exploration roots."""
    jobs = []
    for index, root in enumerate(roots):
        jobs.append(
            fn_spec(
                call(
                    explore_root,
                    case_to_dict(root),
                    engine=engine,
                    por=por,
                    dedup=dedup,
                    stop_on_first_violation=stop_on_first_violation,
                    max_runs=max_runs,
                    symmetry=symmetry,
                    fingerprint_mode=fingerprint_mode,
                ),
                target=root.target,
                root=index,
                engine=engine,
            )
        )
    return Campaign(jobs, name="explore-frontier")


def run_frontier(
    roots: Sequence[ExploreCase],
    engine: str = "indexed",
    workers: Optional[int] = None,
    cache: Any = False,
    por: bool = True,
    dedup: bool = True,
    stop_on_first_violation: bool = False,
    max_runs: Optional[int] = None,
    symmetry: Any = None,
    fingerprint_mode: str = "incremental",
) -> List[Dict[str, Any]]:
    """Explore every root in parallel; summaries in root order.

    ``cache`` is the campaign cache control — pass a directory (or
    True) to make finished subtrees persistent across invocations.
    """
    campaign = frontier_campaign(
        roots,
        engine=engine,
        por=por,
        dedup=dedup,
        stop_on_first_violation=stop_on_first_violation,
        max_runs=max_runs,
        symmetry=symmetry,
        fingerprint_mode=fingerprint_mode,
    )
    outcome = campaign.run(workers=workers, cache=cache)
    if not outcome.ok:
        failure = outcome.failures[0]
        raise RuntimeError(f"frontier cell failed: {failure}")
    return [summary.value for summary in outcome.summaries]
