"""The bounded DFS over one case's choice tree.

Stateless model checking by replay: component state contains live
generator frames, so the explorer never snapshots — it re-executes.
Each iteration pops a choice prefix off the DFS stack, runs the system
once (:func:`repro.explore.cases.build_system` + the stock
``System.run`` loop) replaying that prefix and defaulting beyond it,
then pushes a sibling prefix for every untaken alternative the run
recorded.  The tree is rooted at the empty prefix; exhaustion of the
stack means every schedule/delivery interleaving of the case within
its step budget has been covered (up to the sound reductions).

The reductions, and how they compose:

* **POR** lives in the controller's enabled-set filter
  (:meth:`~repro.explore.control.ChoiceController.pick_pid`): scheduling
  independent steps in descending-pid order is pruned, so each
  Mazurkiewicz trace survives through its lexicographically smallest
  linearization.
* **Dedup** lives in the per-tick hook installed here: at the start of
  every tick the whole system state is fingerprinted
  (:mod:`repro.explore.state`); if an earlier path already explored
  this state with at least as many ticks remaining, the run halts (the
  scheduler returns None → a clean ``scheduler-halt``) and its subtree
  is skipped.  The fingerprint *includes the POR context*, because the
  filter makes the set of allowed continuations depend on it — hashing
  the raw state alone would merge nodes with different enabled sets and
  lose schedules.  Two guards keep the composition honest: the check
  only arms after the run has made its first post-prefix choice (a
  sibling must not be killed by its own parent's footprints), and a
  halted run's trace is never judged or counted as a leaf (its
  continuations — and decisions — are covered by the path that
  recorded the state).
* **Symmetry** (:mod:`repro.explore.symmetry`) folds pid-permuted
  states into one fingerprint for the targets where that is sound;
  collected decision vectors are closed under the group so the
  observable-outcome sets match the unreduced search exactly.

Three hot-path amortizations (see ``docs/EXPLORER.md`` § Performance):
the DFS stack pops the deepest divergence first, so consecutive runs
share maximal prefixes; fingerprints computed while *replaying* a
shared prefix are copied from the previous run's digest sequence
instead of re-encoded (replay is deterministic, so the states are
bit-equal by construction); and the per-run incremental caches inside
:class:`~repro.explore.state.FingerprintEngine` re-encode only what
changed since the previous tick.  ``explore_replay_steps`` counts the
choices served from prefixes, making the replay redundancy measurable.

Leaves are judged by the same summarize hooks and safety clauses the
chaos fuzzer uses; a violating leaf becomes a
:class:`Violation` carrying the exact choice list that reproduces it.
Safety violations are monotone under extension (a decision made is
made forever), so judging completed paths only — never dedup-halted
ones — loses nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.explore.cases import CaseParts, ExploreCase, build_system, resolve_parts
from repro.explore.control import ChoiceController
from repro.explore.state import (
    FingerprintEngine,
    fingerprint,
    sanitize,
    _sorted_by_repr,
)
from repro.explore.symmetry import admissible_perms, resolve_symmetry
from repro.sim.network import Message
from repro.sim.perf import PerfCounters

#: Fingerprint implementations ``explore_case`` accepts: the byte
#: engine with and without its caches, the compiled-encoder variant
#: (digest-identical to ``incremental``, silently degrading to it when
#: the extension is unavailable), and the PR 4 tuple/repr path (kept as
#: the benchmark baseline).
FINGERPRINT_MODES = ("incremental", "naive", "native", "legacy")


@dataclass
class Violation:
    """One violating leaf: everything needed to replay and re-judge it."""

    case: ExploreCase
    engine: str
    choices: Tuple[int, ...]
    violated: Tuple[str, ...]
    metrics: Dict[str, Any]
    decisions: Tuple[Tuple[int, str, str], ...]
    final_time: int
    #: Choice indices name positions in the controller's menus, and the
    #: POR filter shapes the menus — replay must use the same setting.
    por: bool = True


@dataclass
class ExploreResult:
    """The outcome of exhausting (or truncating) one case's tree."""

    case: ExploreCase
    engine: str
    por: bool
    dedup: bool
    runs: int = 0
    states: int = 0
    dedup_hits: int = 0
    por_pruned: int = 0
    #: Complete ⟺ the DFS stack drained (no max_runs truncation and no
    #: stop-on-first-violation early exit).
    complete: bool = True
    violations: List[Violation] = field(default_factory=list)
    #: Decision vectors of every completed (non-halted) leaf — the
    #: observable outcomes of the case, used by the soundness tests to
    #: compare pruned against unpruned and indexed against reference.
    #: With symmetry on, closed under the case's admissible group.
    decision_vectors: Set[Tuple[Tuple[int, str, str], ...]] = field(
        default_factory=set
    )
    counters: PerfCounters = field(default_factory=PerfCounters)
    symmetry: bool = False
    fingerprint_mode: str = "incremental"
    #: Structured records of degraded-but-survived events from the
    #: distributed paths — failed shard cells folded into a partial
    #: merge, expired worker leases, quarantined shards.  Always empty
    #: for a plain in-process walk; non-empty incidents of kind
    #: ``shard-failed``/``shard-quarantined`` imply ``complete=False``.
    incidents: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def stats(self) -> Dict[str, int]:
        return {
            "runs": self.runs,
            "states": self.states,
            "dedup_hits": self.dedup_hits,
            "por_pruned": self.por_pruned,
            "violations": len(self.violations),
            "decision_vectors": len(self.decision_vectors),
            "replay_steps": self.counters.explore_replay_steps,
            "fp_nodes": self.counters.explore_fp_nodes,
            "opaque_tokens": self.counters.explore_opaque_tokens,
            "shards": self.counters.explore_shards,
        }


def _decision_vector(trace) -> Tuple[Tuple[int, str, str], ...]:
    return tuple(
        sorted((d.pid, d.component, repr(d.value)) for d in trace.decisions)
    )


def _vector_closure(
    vector: Tuple[Tuple[int, str, str], ...],
    perms: Sequence[Tuple[int, ...]],
) -> Iterable[Tuple[Tuple[int, str, str], ...]]:
    """All group images of one decision vector.

    Sound for the symmetry-gated targets: their decision *values* are
    pid-free, so the π-image of a reachable vector is the vector of the
    π-relabeled execution, which the unreduced search also reaches.
    """
    for perm in perms:
        yield tuple(
            sorted((perm[pid], comp, value) for pid, comp, value in vector)
        )


def _por_context(
    por: bool, prev: Optional[int], fresh: List[Message], boundary: bool
) -> Tuple[Any, ...]:
    if not por:
        return ()
    return (
        prev,
        boundary,
        _sorted_by_repr(
            (m.sender, m.dest, m.component, sanitize(m.payload)) for m in fresh
        ),
    )


def _shared_prefix_len(a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
    limit = min(len(a), len(b))
    for index in range(limit):
        if a[index] != b[index]:
            return index
    return limit


def explore_case(
    case: ExploreCase,
    engine: str = "indexed",
    por: bool = True,
    dedup: bool = True,
    stop_on_first_violation: bool = False,
    max_runs: Optional[int] = None,
    counters: Optional[PerfCounters] = None,
    symmetry: Any = None,
    fingerprint_mode: str = "incremental",
    initial_stack: Optional[Sequence[Tuple[int, ...]]] = None,
    choice_limit: Optional[int] = None,
    shard_roots: Optional[List[Tuple[int, ...]]] = None,
    digest_log: Optional[List[str]] = None,
    exchange: Optional[Any] = None,
) -> ExploreResult:
    """Exhaust the bounded choice tree of ``case`` on ``engine``.

    ``por=False`` / ``dedup=False`` disable the respective reduction —
    the soundness tests run both ways and compare decision-vector sets
    and verdicts.  ``symmetry`` enables the pid-permutation reduction:
    ``"auto"`` turns it on where sound, ``True`` insists (and raises on
    unsafe targets).  ``fingerprint_mode`` selects the dedup-key
    implementation (see :data:`FINGERPRINT_MODES`).  ``max_runs`` is a
    safety valve for callers probing tractability; a truncated result
    has ``complete=False``.

    ``initial_stack`` roots the DFS at given prefixes instead of the
    empty one, and ``choice_limit`` halts any run whose recorded choice
    log reaches the limit, appending the halted prefix to
    ``shard_roots`` — together they are the sharded search's split/work
    protocol (:mod:`repro.explore.shard`).  ``digest_log``, when given,
    collects every dedup key in hook order (the fingerprint-equivalence
    suite compares these across modes byte-for-byte).

    ``exchange`` (a :class:`repro.store.exchange.FingerprintExchange`)
    shares the visited set across shard processes through the campaign
    database: the walk starts from ``exchange.visited`` — states other
    shards already exhausted dedup-halt here exactly like locally
    recorded ones — and every visited-set write is noted for batched
    publication.  ``states`` then counts only newly recorded states, so
    summed shard counts measure distinct coverage.
    """
    if fingerprint_mode not in FINGERPRINT_MODES:
        raise ValueError(
            f"unknown fingerprint mode {fingerprint_mode!r}; "
            f"have {FINGERPRINT_MODES}"
        )
    symmetry_on = resolve_symmetry(case, symmetry)
    if symmetry_on and fingerprint_mode == "legacy":
        raise ValueError("symmetry reduction requires the byte fingerprint engine")
    parts = resolve_parts(case)
    result = ExploreResult(
        case=case,
        engine=engine,
        por=por,
        dedup=dedup,
        counters=counters if counters is not None else PerfCounters(),
        symmetry=symmetry_on,
        fingerprint_mode=fingerprint_mode,
    )
    perms = admissible_perms(case) if symmetry_on else (tuple(range(case.n)),)
    fp_engine = (
        FingerprintEngine(
            case.n, fingerprint_mode, counters=result.counters, perms=perms
        )
        if fingerprint_mode != "legacy"
        else None
    )
    crash_times = {t for _, t in case.crashes}
    first_crash = min(crash_times) if crash_times else None
    last_crash = max(crash_times) if crash_times else None
    visited: Dict[str, int] = exchange.visited if exchange is not None else {}
    stack: List[Tuple[int, ...]] = (
        [tuple(p) for p in initial_stack] if initial_stack is not None else [()]
    )
    # The previous run's taken path and per-hook digests: a run that
    # replays a shared prefix revisits bit-equal states, so their keys
    # are copied instead of recomputed (sound by replay determinism;
    # the equivalence suite pins it).
    prev_taken: Tuple[int, ...] = ()
    prev_digests: List[Tuple[int, str]] = []
    reuse_digests = dedup and fp_engine is not None and fp_engine.cached

    while stack:
        if max_runs is not None and result.runs >= max_runs:
            result.complete = False  # stack non-empty ⇒ genuinely truncated
            break
        prefix = stack.pop()
        shared = _shared_prefix_len(prefix, prev_taken) if reuse_digests else 0
        run_digests: List[Tuple[int, str]] = []
        controller, trace, system, frontier_halted = _run_path(
            case, parts, prefix, engine, por, dedup,
            visited, crash_times, first_crash, last_crash, result,
            fp_engine, choice_limit,
            prev_digests if reuse_digests else None, shared, run_digests,
            digest_log, exchange,
        )
        if reuse_digests:
            prev_digests = run_digests
        result.runs += 1
        result.counters.explore_runs += 1
        result.por_pruned += controller.por_pruned
        result.counters.explore_por_pruned += controller.por_pruned
        result.counters.explore_replay_steps += min(
            len(prefix), len(controller.log)
        )

        taken = tuple(point.chosen for point in controller.log)
        prev_taken = taken
        for position in range(len(prefix), len(taken)):
            # Alternatives pushed in descending order so index 1 pops
            # first: the subtree under the smaller index is explored
            # before its right siblings, and the next popped prefix
            # always shares the deepest possible divergence point with
            # the run that just finished.
            for alternative in range(controller.log[position].options - 1, 0, -1):
                stack.append(taken[:position] + (alternative,))

        if trace.stop_reason == "scheduler-halt":
            if frontier_halted and shard_roots is not None:
                shard_roots.append(taken)
            continue  # halted: subtree covered elsewhere, not a leaf
        vector = _decision_vector(trace)
        if len(perms) > 1:
            result.decision_vectors.update(_vector_closure(vector, perms))
        else:
            result.decision_vectors.add(vector)
        metrics = parts.summarize(system, trace)
        violated = tuple(
            clause
            for clause in parts.safety_clauses
            if not metrics.get(clause, True)
        )
        if violated:
            result.counters.explore_violations += 1
            result.violations.append(
                Violation(
                    case=case,
                    engine=engine,
                    choices=taken,
                    violated=violated,
                    metrics=dict(metrics),
                    decisions=vector,
                    final_time=trace.final_time,
                    por=por,
                )
            )
            if stop_on_first_violation:
                # Only an actual early exit truncates: when this was
                # the last stacked prefix anyway, the search is as
                # complete as it would have been without the flag.
                if stack:
                    result.complete = False
                break
    if exchange is not None:
        exchange.sync()
    return result


def _run_path(
    case: ExploreCase,
    parts: CaseParts,
    prefix: Tuple[int, ...],
    engine: str,
    por: bool,
    dedup: bool,
    visited: Dict[str, int],
    crash_times: Set[int],
    first_crash: Optional[int],
    last_crash: Optional[int],
    result: ExploreResult,
    fp_engine: Optional[FingerprintEngine],
    choice_limit: Optional[int],
    prev_digests: Optional[List[Tuple[int, str]]],
    shared: int,
    run_digests: List[Tuple[int, str]],
    digest_log: Optional[List[str]],
    exchange: Optional[Any] = None,
):
    """One controlled run: replay ``prefix``, default onward, observe.

    Returns ``(controller, trace, system, frontier_halted)`` — the
    system rides back explicitly because the judge needs it alongside
    the trace.
    """
    controller = ChoiceController(prefix)
    controller.por_enabled = por
    system = build_system(case, controller, parts=parts, engine=engine)
    if fp_engine is not None:
        fp_engine.begin_run(system)

    sent_this_tick: List[Message] = []
    for host in system.hosts:
        host.ctx.add_outgoing_hook(sent_this_tick.append)
    frontier_halted = [False]
    hook_index = [0]

    def tick_hook(now: int) -> bool:
        # The previous tick's step is complete: hand its POR context to
        # the controller before this tick's picks.
        fresh = list(sent_this_tick)
        sent_this_tick.clear()
        prev = controller.last_actor
        boundary = now in crash_times
        controller.set_step_context(prev, fresh, boundary)
        logged = len(controller.log)
        if dedup:
            index = hook_index[0]
            hook_index[0] = index + 1
            key = None
            if (
                prev_digests is not None
                and logged <= shared
                and index < len(prev_digests)
                and prev_digests[index][0] == logged
            ):
                # Replaying a prefix shared with the previous run: the
                # state is bit-equal to the one that produced this
                # digest, so skip the encoding entirely.
                key = prev_digests[index][1]
            if key is None:
                crashes_pending = last_crash is not None and last_crash > now
                scripts = controller.scripts
                cursors = (
                    tuple(scripts.cursors) if scripts is not None else None
                )
                if fp_engine is not None:
                    key = fp_engine.fingerprint(
                        now, crashes_pending, first_crash,
                        prev, fresh, boundary, por, cursors,
                    )
                else:
                    key = fingerprint(
                        system,
                        now,
                        crashes_pending,
                        first_crash,
                        _por_context(por, prev, fresh, boundary),
                        cursors,
                    )
            run_digests.append((logged, key))
            if digest_log is not None:
                digest_log.append(key)
            remaining = case.depth - now + 1
            seen = visited.get(key)
            if logged <= len(prefix):
                # Still replaying (or about to make the first divergent
                # choice): these states are the parent run's own
                # footprints — record, never halt.
                if seen is None:
                    result.states += 1
                    result.counters.explore_states += 1
                if seen is None or seen < remaining:
                    visited[key] = remaining
                    if exchange is not None:
                        exchange.note(key, remaining)
            elif seen is not None and seen >= remaining:
                result.dedup_hits += 1
                result.counters.explore_dedup_hits += 1
                return False
            else:
                if seen is None:
                    result.states += 1
                    result.counters.explore_states += 1
                visited[key] = remaining
                if exchange is not None:
                    exchange.note(key, remaining)
        if (
            choice_limit is not None
            and logged >= choice_limit
            and logged >= len(prefix)  # never truncate mid-replay
        ):
            frontier_halted[0] = True
            return False
        return True

    controller.tick_hook = tick_hook
    trace = system.run(stop_when=parts.stop)
    return controller, trace, system, frontier_halted[0]
