"""The bounded DFS over one case's choice tree.

Stateless model checking by replay: component state contains live
generator frames, so the explorer never snapshots — it re-executes.
Each iteration pops a choice prefix off the DFS stack, runs the system
once (:func:`repro.explore.cases.build_system` + the stock
``System.run`` loop) replaying that prefix and defaulting beyond it,
then pushes a sibling prefix for every untaken alternative the run
recorded.  The tree is rooted at the empty prefix; exhaustion of the
stack means every schedule/delivery interleaving of the case within
its step budget has been covered (up to the two sound reductions).

The two reductions, and how they compose:

* **POR** lives in the controller's enabled-set filter
  (:meth:`~repro.explore.control.ChoiceController.pick_pid`): scheduling
  independent steps in descending-pid order is pruned, so each
  Mazurkiewicz trace survives through its lexicographically smallest
  linearization.
* **Dedup** lives in the per-tick hook installed here: at the start of
  every tick the whole system state is fingerprinted
  (:mod:`repro.explore.state`); if an earlier path already explored
  this state with at least as many ticks remaining, the run halts (the
  scheduler returns None → a clean ``scheduler-halt``) and its subtree
  is skipped.  The fingerprint *includes the POR context*, because the
  filter makes the set of allowed continuations depend on it — hashing
  the raw state alone would merge nodes with different enabled sets and
  lose schedules.  Two guards keep the composition honest: the check
  only arms after the run has made its first post-prefix choice (a
  sibling must not be killed by its own parent's footprints), and a
  halted run's trace is never judged or counted as a leaf (its
  continuations — and decisions — are covered by the path that
  recorded the state).

Leaves are judged by the same summarize hooks and safety clauses the
chaos fuzzer uses; a violating leaf becomes a
:class:`Violation` carrying the exact choice list that reproduces it.
Safety violations are monotone under extension (a decision made is
made forever), so judging completed paths only — never dedup-halted
ones — loses nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.explore.cases import CaseParts, ExploreCase, build_system, resolve_parts
from repro.explore.control import ChoiceController
from repro.explore.state import fingerprint, sanitize, _sorted_by_repr
from repro.sim.network import Message
from repro.sim.perf import PerfCounters


@dataclass
class Violation:
    """One violating leaf: everything needed to replay and re-judge it."""

    case: ExploreCase
    engine: str
    choices: Tuple[int, ...]
    violated: Tuple[str, ...]
    metrics: Dict[str, Any]
    decisions: Tuple[Tuple[int, str, str], ...]
    final_time: int
    #: Choice indices name positions in the controller's menus, and the
    #: POR filter shapes the menus — replay must use the same setting.
    por: bool = True


@dataclass
class ExploreResult:
    """The outcome of exhausting (or truncating) one case's tree."""

    case: ExploreCase
    engine: str
    por: bool
    dedup: bool
    runs: int = 0
    states: int = 0
    dedup_hits: int = 0
    por_pruned: int = 0
    #: Complete ⟺ the DFS stack drained (no max_runs truncation and no
    #: stop-on-first-violation early exit).
    complete: bool = True
    violations: List[Violation] = field(default_factory=list)
    #: Decision vectors of every completed (non-halted) leaf — the
    #: observable outcomes of the case, used by the soundness tests to
    #: compare pruned against unpruned and indexed against reference.
    decision_vectors: Set[Tuple[Tuple[int, str, str], ...]] = field(
        default_factory=set
    )
    counters: PerfCounters = field(default_factory=PerfCounters)

    @property
    def ok(self) -> bool:
        return not self.violations

    def stats(self) -> Dict[str, int]:
        return {
            "runs": self.runs,
            "states": self.states,
            "dedup_hits": self.dedup_hits,
            "por_pruned": self.por_pruned,
            "violations": len(self.violations),
            "decision_vectors": len(self.decision_vectors),
        }


def _decision_vector(trace) -> Tuple[Tuple[int, str, str], ...]:
    return tuple(
        sorted((d.pid, d.component, repr(d.value)) for d in trace.decisions)
    )


def _por_context(
    por: bool, prev: Optional[int], fresh: List[Message], boundary: bool
) -> Tuple[Any, ...]:
    if not por:
        return ()
    return (
        prev,
        boundary,
        _sorted_by_repr(
            (m.sender, m.dest, m.component, sanitize(m.payload)) for m in fresh
        ),
    )


def explore_case(
    case: ExploreCase,
    engine: str = "indexed",
    por: bool = True,
    dedup: bool = True,
    stop_on_first_violation: bool = False,
    max_runs: Optional[int] = None,
    counters: Optional[PerfCounters] = None,
) -> ExploreResult:
    """Exhaust the bounded choice tree of ``case`` on ``engine``.

    ``por=False`` / ``dedup=False`` disable the respective reduction —
    the soundness tests run both ways and compare decision-vector sets
    and verdicts.  ``max_runs`` is a safety valve for callers probing
    tractability; a truncated result has ``complete=False``.
    """
    parts = resolve_parts(case)
    result = ExploreResult(
        case=case,
        engine=engine,
        por=por,
        dedup=dedup,
        counters=counters if counters is not None else PerfCounters(),
    )
    crash_times = {t for _, t in case.crashes}
    first_crash = min(crash_times) if crash_times else None
    last_crash = max(crash_times) if crash_times else None
    visited: Dict[str, int] = {}
    stack: List[Tuple[int, ...]] = [()]

    while stack:
        if max_runs is not None and result.runs >= max_runs:
            result.complete = False
            break
        prefix = stack.pop()
        controller, trace = _run_path(
            case, parts, prefix, engine, por, dedup,
            visited, crash_times, first_crash, last_crash, result,
        )
        result.runs += 1
        result.counters.explore_runs += 1
        result.por_pruned += controller.por_pruned
        result.counters.explore_por_pruned += controller.por_pruned

        taken = tuple(point.chosen for point in controller.log)
        for position in range(len(prefix), len(taken)):
            for alternative in range(1, controller.log[position].options):
                stack.append(taken[:position] + (alternative,))

        if trace.stop_reason == "scheduler-halt":
            continue  # dedup-halted: subtree covered elsewhere, not a leaf
        result.decision_vectors.add(_decision_vector(trace))
        metrics = parts.summarize(controller._system, trace)
        violated = tuple(
            clause
            for clause in parts.safety_clauses
            if not metrics.get(clause, True)
        )
        if violated:
            result.counters.explore_violations += 1
            result.violations.append(
                Violation(
                    case=case,
                    engine=engine,
                    choices=taken,
                    violated=violated,
                    metrics=dict(metrics),
                    decisions=_decision_vector(trace),
                    final_time=trace.final_time,
                    por=por,
                )
            )
            if stop_on_first_violation:
                result.complete = False
                break
    return result


def _run_path(
    case: ExploreCase,
    parts: CaseParts,
    prefix: Tuple[int, ...],
    engine: str,
    por: bool,
    dedup: bool,
    visited: Dict[str, int],
    crash_times: Set[int],
    first_crash: Optional[int],
    last_crash: Optional[int],
    result: ExploreResult,
):
    """One controlled run: replay ``prefix``, default onward, observe."""
    controller = ChoiceController(prefix)
    controller.por_enabled = por
    system = build_system(case, controller, parts=parts, engine=engine)
    # The judge needs the system alongside the trace; stash it where the
    # caller can reach it without re-threading return values.
    controller._system = system

    sent_this_tick: List[Message] = []
    for host in system.hosts:
        host.ctx.add_outgoing_hook(sent_this_tick.append)

    def tick_hook(now: int) -> bool:
        # The previous tick's step is complete: hand its POR context to
        # the controller before this tick's picks.
        fresh = list(sent_this_tick)
        sent_this_tick.clear()
        prev = controller.last_actor
        boundary = now in crash_times
        controller.set_step_context(prev, fresh, boundary)
        if not dedup:
            return True
        crashes_pending = last_crash is not None and last_crash > now
        key = fingerprint(
            system,
            now,
            crashes_pending,
            first_crash,
            _por_context(por, prev, fresh, boundary),
        )
        remaining = case.depth - now + 1
        seen = visited.get(key)
        if len(controller.log) <= len(prefix):
            # Still replaying (or about to make the first divergent
            # choice): these states are the parent run's own footprints —
            # record, never halt.
            if seen is None:
                result.states += 1
                result.counters.explore_states += 1
            if seen is None or seen < remaining:
                visited[key] = remaining
            return True
        if seen is not None and seen >= remaining:
            result.dedup_hits += 1
            result.counters.explore_dedup_hits += 1
            return False
        if seen is None:
            result.states += 1
            result.counters.explore_states += 1
        visited[key] = remaining
        return True

    controller.tick_hook = tick_hook
    trace = system.run(stop_when=parts.stop)
    return controller, trace
