"""Detector assignments: the explorer's third axis of nondeterminism.

The sim's oracle detectors sample one admissible history per run from a
seeded RNG — fine for fuzzing, wrong for exhaustive search, where the
detector's latitude must be *enumerated*, not drawn.  The explorer
therefore bypasses the oracle layer entirely: each exploration root
fixes one **constant per-process assignment** of detector values, and
every process reads its value unchanged at every step of that subtree.

Why constants are admissible prefixes
-------------------------------------

The explorer only ever examines the first ``depth`` ticks of a run, so
an assignment need only be a prefix of *some* admissible infinite
history:

* Ω / ◇S accuracy and completeness are **eventual** properties — any
  finite prefix of leaders or suspicion sets extends to an admissible
  history, so every constant is fair game (including the adversarial
  "everyone believes themselves leader" and "everyone suspects everyone
  else" assignments that drive the interesting schedules).
* Σ's intersection is **perpetual** — it must hold within the window.
  The families below only emit quorum vectors that pairwise intersect
  (all-full, or a shared pivot process).
* Ψ constant at an (Ω, Σ) value is a Ψ whose initial ⊥ period had
  length zero and which committed to the (Ω, Σ) branch at time 0 —
  admissible for any failure pattern.  A constant FS branch is *not*
  enumerated: ``red`` from time 0 would claim a failure before one
  happened (inadmissible), and the branch-switch histories that make
  ``red`` admissible are not constant.

History scripts
---------------

Constants miss exactly the transitions the paper's constructions hinge
on — Ψ's ⊥ → commit switch, the FS-red quit signal, Ω leader changes —
so the frontier can also enumerate **scripts**: an encoding
``("script", stage₀, stage₁, …)`` whose stages are constant encodings
(plus the script-only atoms ``("bot",)`` for ⊥ and ``("fsv", colour)``
for a Ψ that committed to the FS branch).  A script does not pin *when*
the switches happen — the controller turns each stage advance into an
enumerable choice point (see :class:`~repro.explore.control.DetectorScript`),
so one script root covers every admissible switch-time placement within
the step budget.

Admissibility now has a per-stage side condition:
:func:`stage_requires_crash` marks the stages whose values claim a
failure (any FS ``red``, and *any* Ψ FS-branch value — committing Ψ to
the FS branch asserts a failure occurred even when the colour shown is
green).  The controller only offers an advance into such a stage at a
tick ``>= `` the case's first crash time, and the frontier only pairs
crash-claiming scripts with crashy schedules.  Scripts must also be
*branch-coherent* (once Ψ leaves ⊥ it never changes branch, and never
returns to ⊥) — :func:`script_stages_coherent` checks it, and the
prefix predicates below (:func:`psi_prefix_admissible` and friends) are
the ground truth the differential tests hold both the enumerator and
the chaos oracles to.

Encodings are nested tuples of primitives — hashable (they sit inside
frozen :class:`~repro.explore.cases.ExploreCase`), JSON-able (they ride
inside artifacts), and decoded to the live detector vocabulary of
:mod:`repro.core.detector` right before a run.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.detector import (
    BOTTOM,
    GREEN,
    RED,
    is_fs_value,
    is_omega_sigma_value,
)

Encoded = Tuple[Any, ...]
Assignment = Tuple[Encoded, ...]  # one encoded value per pid


def decode_value(enc: Encoded) -> Any:
    """An encoded constant back into detector-vocabulary values."""
    kind = enc[0]
    if kind == "os":  # (Ω, Σ): (leader, quorum)
        return (enc[1], frozenset(enc[2]))
    if kind in ("susp", "sigma"):  # ◇S suspicions / Σ quorum
        return frozenset(enc[1])
    if kind == "pf":  # (Ψ, FS) product of Corollary 10
        return (decode_value(enc[1]), enc[2])
    if kind == "bot":  # Ψ's initial ⊥ (script stages only)
        return BOTTOM
    if kind == "fsv":  # Ψ committed to the FS branch (script stages only)
        return enc[1]
    raise ValueError(f"unknown assignment encoding {enc!r}")


# -- scripts -----------------------------------------------------------
def is_script(enc: Encoded) -> bool:
    """Whether an assignment entry is a history script."""
    return bool(enc) and enc[0] == "script"


def script_stages(enc: Encoded) -> Tuple[Encoded, ...]:
    """The stage sequence of an entry (a constant is its own one-stage
    script)."""
    return tuple(enc[1:]) if is_script(enc) else (enc,)


def stage_requires_crash(enc: Encoded) -> bool:
    """Whether outputting this stage's value claims a failure occurred.

    FS accuracy is perpetual: ``red`` at ``t`` requires a crash at some
    ``t* <= t``.  Ψ's FS branch carries the same claim for *either*
    colour — committing to the branch asserts a failure, so even
    ``("fsv", "green")`` is crash-gated.  Everything else (Ω leaders,
    ◇S suspicions, Σ quorums, ⊥) is admissible on any pattern.
    """
    kind = enc[0]
    if kind == "pf":  # gate on either product component
        return stage_requires_crash(enc[1]) or enc[2] == RED
    if kind == "fsv":
        return True
    return False


def script_requires_crash(enc: Encoded) -> bool:
    """Whether any stage of this entry is crash-gated."""
    return any(stage_requires_crash(s) for s in script_stages(enc))


def assignment_requires_crash(assignment: Assignment) -> bool:
    """Whether this assignment only makes sense on a crashy pattern."""
    return any(script_requires_crash(enc) for enc in assignment)


def _psi_component(enc: Encoded) -> Encoded:
    """The Ψ-branch-relevant part of a stage (the Ψ half of a product)."""
    return enc[1] if enc[0] == "pf" else enc


def script_stages_coherent(stages: Sequence[Encoded]) -> bool:
    """Branch coherence of a stage sequence, checked on the Ψ component.

    Ψ outputs ⊥ up to its switch time and a single branch's history
    afterwards: a script may hold some ``("bot",)`` stages, then must
    stay within one branch — all ``("fsv", …)`` (FS branch) or all
    non-⊥ non-FS values ((Ω, Σ) branch) — and never return to ⊥.
    Non-Ψ components (plain FS colours, suspicions, quorums) carry no
    branch, so sequences without ⊥/fsv stages are trivially coherent.
    """
    committed: Optional[str] = None
    for stage in stages:
        psi = _psi_component(stage)
        if psi[0] == "bot":
            if committed is not None:
                return False
            continue
        branch = "fs" if psi[0] == "fsv" else "other"
        if committed is None:
            committed = branch
        elif committed != branch:
            return False
    return True


# -- prefix admissibility (ground truth for the differential tests) ---
def psi_prefix_admissible(
    values: Sequence[Any], first_crash: Optional[int]
) -> bool:
    """Whether ``values`` (one process's Ψ outputs at ticks 0..k) is a
    prefix of some admissible Ψ history for a pattern whose first crash
    is at ``first_crash`` (``None`` = crash-free).

    Per Section 6.1: a ⊥ prefix, then — from the switch tick onwards —
    either FS values throughout with the switch at a tick ``>= t*``
    (FS branch, failure required), or (Ω, Σ) values throughout
    (always admissible).  Flicker *within* a branch is fine; returning
    to ⊥ or mixing branches is not.
    """
    switch = next(
        (i for i, v in enumerate(values) if v is not BOTTOM), None
    )
    if switch is None:
        return True
    tail = values[switch:]
    if any(v is BOTTOM for v in tail):
        return False
    if all(is_fs_value(v) for v in tail):
        return first_crash is not None and switch >= first_crash
    return all(is_omega_sigma_value(v) for v in tail)


def fs_prefix_admissible(
    values: Sequence[Any], first_crash: Optional[int]
) -> bool:
    """FS accuracy on a prefix: ``red`` at tick ``t`` needs a crash at
    some ``t* <= t``; ``green`` is always fine."""
    for i, v in enumerate(values):
        if not is_fs_value(v):
            return False
        if v == RED and (first_crash is None or i < first_crash):
            return False
    return True


def psi_fs_prefix_admissible(
    values: Sequence[Tuple[Any, Any]], first_crash: Optional[int]
) -> bool:
    """Componentwise admissibility of a (Ψ, FS) product prefix."""
    return psi_prefix_admissible(
        [v[0] for v in values], first_crash
    ) and fs_prefix_admissible([v[1] for v in values], first_crash)


def _os(leader: int, quorum: Tuple[int, ...]) -> Encoded:
    return ("os", leader, tuple(quorum))


def _os_assignments(n: int) -> List[Assignment]:
    """(Ω, Σ) vectors: every uniform leader plus the selfish split,
    crossed with all-full and shared-pivot quorums."""
    full = tuple(range(n))
    pivot = (0,)
    leader_vectors = [tuple(leader for _ in range(n)) for leader in range(n)]
    leader_vectors.append(tuple(range(n)))  # everyone believes in itself
    quorum_vectors = [tuple(full for _ in range(n)), tuple(pivot for _ in range(n))]
    return [
        tuple(_os(leaders[p], quorums[p]) for p in range(n))
        for leaders in leader_vectors
        for quorums in quorum_vectors
    ]


def _ct_assignments(n: int) -> List[Assignment]:
    """◇S suspicion vectors: trusting, mutually-suspicious, pile-on-0."""
    none: Assignment = tuple(("susp", ()) for _ in range(n))
    mutual: Assignment = tuple(
        ("susp", tuple(q for q in range(n) if q != p)) for p in range(n)
    )
    pile_on_zero: Assignment = tuple(("susp", (0,)) for _ in range(n))
    return [none, mutual, pile_on_zero]


def _psi_fs_assignments(n: int, leaders_only_zero: bool = False) -> List[Assignment]:
    """(Ψ, FS) vectors: Ψ committed to (Ω, Σ) at time 0, FS green."""
    full = tuple(range(n))
    leader_vectors = [tuple(0 for _ in range(n))]
    if not leaders_only_zero:
        leader_vectors.append(tuple(range(n)))
    return [
        tuple(("pf", _os(leaders[p], full), "green") for p in range(n))
        for leaders in leader_vectors
    ]


def _sigma_assignments(n: int) -> List[Assignment]:
    full = tuple(range(n))
    return [
        tuple(("sigma", full) for _ in range(n)),
        tuple(("sigma", (0,)) for _ in range(n)),
    ]


def assignments_for(target: str, n: int) -> List[Assignment]:
    """The enumerated assignment family for one target."""
    if target in ("paxos", "qc", "submajority"):
        return _os_assignments(n)
    if target == "ct":
        return _ct_assignments(n)
    if target in ("nbac", "redcommit"):
        return _psi_fs_assignments(n)
    if target == "hastycommit":
        # The vote bug fires on any assignment; one root suffices.
        return _psi_fs_assignments(n, leaders_only_zero=True)
    if target == "eagerquit":
        # Any non-⊥ Ψ triggers the bug; one (Ω, Σ)-shaped root suffices.
        full = tuple(range(n))
        return [tuple(_os(0, full) for _ in range(n))]
    if target == "register":
        return _sigma_assignments(n)
    raise ValueError(f"no assignment family for target {target!r}")


def _script(*stages: Encoded) -> Encoded:
    assert script_stages_coherent(stages), stages
    return ("script",) + tuple(stages)


def _uniform(enc: Encoded, n: int) -> Assignment:
    """The same script at every process.

    Uniformity is what keeps the vector admissible wholesale: Ψ's
    branch agreement is cross-process (everyone commits to the same
    branch), and a shared script can only ever disagree on switch
    *times* — which the spec explicitly allows.
    """
    return tuple(enc for _ in range(n))


def switch_scripts_for(target: str, n: int) -> List[Assignment]:
    """The history-script family for one target (``--detector-switches``).

    Kept deliberately small — each script is a whole subtree whose
    switch times the controller enumerates — and every member is
    checked branch-coherent at construction.  Scripts containing
    crash-gated stages are only paired with crashy schedules by the
    frontier (:func:`~repro.explore.frontier.enumerate_roots`).
    """
    full = tuple(range(n))
    os0, os1 = _os(0, full), _os(1, full)
    if target in ("paxos", "submajority"):
        # Ω leader change mid-window (and back — churn both ways).
        return [
            _uniform(_script(os0, os1), n),
            _uniform(_script(os1, os0), n),
        ]
    if target == "ct":
        # ◇S revising its suspicions: trusting → suspect-0.
        return [
            _uniform(_script(("susp", ()), ("susp", (0,))), n),
        ]
    if target in ("qc", "eagerquit"):
        # Ψ direct: ⊥ → consensus branch; ⊥ → FS branch (quit paths,
        # crash-gated — red and the branch-asserting green alike);
        # ⊥ → consensus branch with a leader change after the switch.
        return [
            _uniform(_script(("bot",), os0), n),
            _uniform(_script(("bot",), ("fsv", "red")), n),
            _uniform(_script(("bot",), ("fsv", "green")), n),
            _uniform(_script(("bot",), os0, os1), n),
        ]
    if target in ("nbac", "hastycommit", "redcommit"):
        # (Ψ, FS) product: the quit path (Ψ turns FS-red), the ⊥-prefix
        # consensus path, and the abort-via-consensus path (Ψ stays on
        # the consensus branch while plain FS turns red — Figure 4's
        # propose-0 trigger).
        bot_green = ("pf", ("bot",), "green")
        return [
            _uniform(
                _script(bot_green, ("pf", ("fsv", "red"), "red")), n
            ),
            _uniform(_script(bot_green, ("pf", os0, "green")), n),
            _uniform(
                _script(
                    bot_green,
                    ("pf", os0, "green"),
                    ("pf", os0, "red"),
                ),
                n,
            ),
        ]
    if target == "register":
        # Σ is perpetual: a quorum shrink keeps pairwise intersection
        # (full ∩ pivot = pivot), so the switch is admissible.
        return [
            _uniform(_script(("sigma", full), ("sigma", (0,))), n),
        ]
    raise ValueError(f"no script family for target {target!r}")


def default_assignment(target: str, n: int) -> Assignment:
    """The family's first member — used when a case pins none."""
    return assignments_for(target, n)[0]
