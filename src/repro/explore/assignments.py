"""Detector assignments: the explorer's third axis of nondeterminism.

The sim's oracle detectors sample one admissible history per run from a
seeded RNG — fine for fuzzing, wrong for exhaustive search, where the
detector's latitude must be *enumerated*, not drawn.  The explorer
therefore bypasses the oracle layer entirely: each exploration root
fixes one **constant per-process assignment** of detector values, and
every process reads its value unchanged at every step of that subtree.

Why constants are admissible prefixes
-------------------------------------

The explorer only ever examines the first ``depth`` ticks of a run, so
an assignment need only be a prefix of *some* admissible infinite
history:

* Ω / ◇S accuracy and completeness are **eventual** properties — any
  finite prefix of leaders or suspicion sets extends to an admissible
  history, so every constant is fair game (including the adversarial
  "everyone believes themselves leader" and "everyone suspects everyone
  else" assignments that drive the interesting schedules).
* Σ's intersection is **perpetual** — it must hold within the window.
  The families below only emit quorum vectors that pairwise intersect
  (all-full, or a shared pivot process).
* Ψ constant at an (Ω, Σ) value is a Ψ whose initial ⊥ period had
  length zero and which committed to the (Ω, Σ) branch at time 0 —
  admissible for any failure pattern.  A constant FS branch is *not*
  enumerated: ``red`` from time 0 would claim a failure before one
  happened (inadmissible), and the branch-switch histories that make
  ``red`` admissible are not constant.  Consequence: explored NBAC/QC
  runs never exercise the FS-quit paths — those stay covered by the
  chaos fuzzer's sampled histories, as ``docs/EXPLORER.md`` spells out.
* FS constant ``green`` is always admissible (the red switch is only
  ever *eventually* required, after a crash).

Encodings are nested tuples of primitives — hashable (they sit inside
frozen :class:`~repro.explore.cases.ExploreCase`), JSON-able (they ride
inside artifacts), and decoded to the live detector vocabulary of
:mod:`repro.core.detector` right before a run.
"""

from __future__ import annotations

from typing import Any, List, Tuple

Encoded = Tuple[Any, ...]
Assignment = Tuple[Encoded, ...]  # one encoded value per pid


def decode_value(enc: Encoded) -> Any:
    """An encoded constant back into detector-vocabulary values."""
    kind = enc[0]
    if kind == "os":  # (Ω, Σ): (leader, quorum)
        return (enc[1], frozenset(enc[2]))
    if kind in ("susp", "sigma"):  # ◇S suspicions / Σ quorum
        return frozenset(enc[1])
    if kind == "pf":  # (Ψ, FS) product of Corollary 10
        return (decode_value(enc[1]), enc[2])
    raise ValueError(f"unknown assignment encoding {enc!r}")


def _os(leader: int, quorum: Tuple[int, ...]) -> Encoded:
    return ("os", leader, tuple(quorum))


def _os_assignments(n: int) -> List[Assignment]:
    """(Ω, Σ) vectors: every uniform leader plus the selfish split,
    crossed with all-full and shared-pivot quorums."""
    full = tuple(range(n))
    pivot = (0,)
    leader_vectors = [tuple(leader for _ in range(n)) for leader in range(n)]
    leader_vectors.append(tuple(range(n)))  # everyone believes in itself
    quorum_vectors = [tuple(full for _ in range(n)), tuple(pivot for _ in range(n))]
    return [
        tuple(_os(leaders[p], quorums[p]) for p in range(n))
        for leaders in leader_vectors
        for quorums in quorum_vectors
    ]


def _ct_assignments(n: int) -> List[Assignment]:
    """◇S suspicion vectors: trusting, mutually-suspicious, pile-on-0."""
    none: Assignment = tuple(("susp", ()) for _ in range(n))
    mutual: Assignment = tuple(
        ("susp", tuple(q for q in range(n) if q != p)) for p in range(n)
    )
    pile_on_zero: Assignment = tuple(("susp", (0,)) for _ in range(n))
    return [none, mutual, pile_on_zero]


def _psi_fs_assignments(n: int, leaders_only_zero: bool = False) -> List[Assignment]:
    """(Ψ, FS) vectors: Ψ committed to (Ω, Σ) at time 0, FS green."""
    full = tuple(range(n))
    leader_vectors = [tuple(0 for _ in range(n))]
    if not leaders_only_zero:
        leader_vectors.append(tuple(range(n)))
    return [
        tuple(("pf", _os(leaders[p], full), "green") for p in range(n))
        for leaders in leader_vectors
    ]


def _sigma_assignments(n: int) -> List[Assignment]:
    full = tuple(range(n))
    return [
        tuple(("sigma", full) for _ in range(n)),
        tuple(("sigma", (0,)) for _ in range(n)),
    ]


def assignments_for(target: str, n: int) -> List[Assignment]:
    """The enumerated assignment family for one target."""
    if target in ("paxos", "qc", "submajority"):
        return _os_assignments(n)
    if target == "ct":
        return _ct_assignments(n)
    if target == "nbac":
        return _psi_fs_assignments(n)
    if target == "hastycommit":
        # The vote bug fires on any assignment; one root suffices.
        return _psi_fs_assignments(n, leaders_only_zero=True)
    if target == "eagerquit":
        # Any non-⊥ Ψ triggers the bug; one (Ω, Σ)-shaped root suffices.
        full = tuple(range(n))
        return [tuple(_os(0, full) for _ in range(n))]
    if target == "register":
        return _sigma_assignments(n)
    raise ValueError(f"no assignment family for target {target!r}")


def default_assignment(target: str, n: int) -> Assignment:
    """The family's first member — used when a case pins none."""
    return assignments_for(target, n)[0]
