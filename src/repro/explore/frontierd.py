"""Crash-tolerant work-stealing frontier: the dynamic explorer daemon.

The static shard pipeline (:mod:`repro.explore.shard`) splits a case
once, dispatches the subtrees as campaign cells, and hopes every cell
survives.  This module replaces that with the architecture the paper
itself studies, applied to the checker: a set of long-lived worker
processes that *cannot be trusted not to crash*, coordinated through
an unreliable timeout-based failure detector.

**The protocol.**  Shard roots live as claimable items in the store's
``work_queue``.  A worker claims up to a fair share of the oldest
pending items in ONE transaction
(:meth:`repro.store.db.ResultStore.claim_work_batch` — each item under
its own *expiring lease*), walks the batch locally, and reports the
whole batch in one atomic completion transaction
(:meth:`~repro.store.db.ResultStore.complete_work_batch`) — summaries,
deferred fingerprints, and any re-split children land together, or not
at all.  Batching is what makes worker scaling near-linear: per-item
claims cost one store round-trip per shard, which dominates wall clock
the moment shards are small (the BENCH_explore ``frontier`` section
used to scale *negatively* for exactly that reason).  While it works,
a single heartbeat thread extends every lease the worker holds with
one UPDATE per interval
(:meth:`~repro.store.db.ResultStore.heartbeat_worker`); a worker
SIGKILLed mid-batch simply goes silent.  The
coordinator polls :meth:`~repro.store.db.ResultStore.requeue_expired`:
an expired lease is a *suspicion* (the timeout-as-failure-detector
pattern — like ◇P, it may be wrong about a merely slow worker), so the
item goes back to pending with capped exponential backoff and the
completion transaction, not the suspicion, is the arbiter: exactly one
completion per item is ever accepted, a late one from a falsely
suspected worker either lands first (fine — the walk is deterministic)
or is rejected wholesale, publishing nothing.  An item that keeps
dying past its retry budget is *quarantined*: the merged case reports
``complete=False`` with a structured incident instead of raising away
its siblings' finished work.

**Work stealing and adaptive shard sizing.**  Static splitting
serializes on its deepest shard; fixed-depth splitting also front-pays
a shard count that only makes sense for one worker count.  Here both
problems are one mechanism: a worker whose claim leaves the pending
queue below ``shard_budget × workers`` re-splits its batch — each walk
runs with ``choice_limit`` pushed ``split_step`` choices past its
prefix, judged leaves stay in the shard's summary, and the halted
prefixes are enqueued as fresh roots in the same completion
transaction — so stragglers shrink instead of the run serializing, and
a crash before completion enqueues no duplicate children.  By default
(``shard_depth=None``) each root enters the queue as ONE bare item and
this demand-driven re-splitting produces all granularity: a single
worker never splits (its walk is the plain single-process walk plus
one claim and one completion), while k workers split exactly while
starved.  Passing an integer ``shard_depth`` restores the legacy
fixed pre-split.

**Completeness.**  The merged result equals the serial walk's because
(1) split soundness: a splitter/re-splitter's deferred prefixes are
pairwise-disjoint subtrees that exactly cover its halted runs, (2)
publication soundness: a fingerprint reaches the shared visited set
only in the transaction that also records its walk's summary (and, for
a re-split, its children), so every published state's subtree is
covered by merged results and still-queued items, and (3) the queue
drains only when nothing is pending or leased — at which point every
root is done (merged) or quarantined (``complete=False``).  The
SIGKILL tests in ``tests/explore/test_frontierd.py`` pin (vectors,
violations, completeness) against :func:`~repro.explore.engine
.explore_case` under injected kills.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.explore.cases import ExploreCase, case_from_dict, case_to_dict
from repro.explore.engine import ExploreResult, explore_case
from repro.explore.frontier import result_to_dict
from repro.explore.shard import (
    _result_from_summary,
    merge_summaries,
    split_case,
)

#: Environment hook for the quarantine tests: when set, every worker
#: raises instead of walking, driving each item through its full retry
#: budget into quarantine without any process-level violence.
CHAOS_FAIL_ENV = "REPRO_FRONTIERD_CHAOS_FAIL"

#: Environment hook for the SIGKILL tests: seconds a worker sleeps
#: right after claiming (heartbeats still flowing), giving the test a
#: deterministic mid-shard window in which to kill it.
CHAOS_STALL_ENV = "REPRO_FRONTIERD_CHAOS_STALL"

DEFAULT_LEASE_TTL = 5.0
DEFAULT_RETRY_LIMIT = 3
#: Choices a re-split pushes past its prefix.  Small on purpose: the
#: effective choice depth of these trees is shallow (POR + forced
#: steps log few real choices — an n=3 depth-6 NBAC tree is ~9 choices
#: deep), so a step of 4 fans a bare root into ~tens of children for
#: centiseconds of splitter work, while 6 can overshoot a shallow tree
#: entirely and split nothing.
DEFAULT_SPLIT_STEP = 4
DEFAULT_SHARD_DEPTH = 6
#: Adaptive sizing target: keep the pending queue around this many
#: claimable shards per worker.  Workers re-split their claims only
#: while the queue sits below the target, so shard granularity tracks
#: demand — one worker never splits at all (the whole tree is one
#: claim), k workers split just enough to keep everyone fed.
DEFAULT_SHARD_BUDGET = 3
#: Most items one claim transaction may lease (the fair-share cap in
#: :meth:`~repro.store.db.ResultStore.claim_work_batch` usually bites
#: first; this bounds the recovery cost of losing one worker).
DEFAULT_CLAIM_LIMIT = 16


def _queue_scope(token: str) -> str:
    return f"frontier:{token}"


def _heartbeat_main(
    store_path: str,
    queue_scope: str,
    worker: str,
    ttl: float,
    stop: threading.Event,
    beats: List[int],
) -> None:
    """Keep every lease this worker holds alive until told to stop.

    One UPDATE per interval covers the whole claimed batch
    (:meth:`~repro.store.db.ResultStore.heartbeat_worker`) — liveness
    traffic is per *worker*, not per item.  Runs in its own thread with
    its *own* store object — sqlite3 connections are bound to their
    creating thread.  A worker that is killed takes this thread down
    with it, which is the whole point: heartbeats stop exactly when the
    process stops.  ``beats[0]`` counts sent heartbeats for the
    ``frontier_heartbeats`` perf counter.
    """
    from repro.store.db import ResultStore

    try:
        store = ResultStore(store_path)
    except Exception:  # noqa: BLE001 — a dead heartbeat just expires
        return
    try:
        while not stop.wait(max(0.05, ttl / 3.0)):
            try:
                if store.heartbeat_worker(queue_scope, worker, ttl) == 0:
                    return  # no leases left: stop advertising liveness
                beats[0] += 1
            except Exception:  # noqa: BLE001
                continue  # transient store contention; try again
    finally:
        store.close()


def _run_batch(
    store: Any,
    queue_scope: str,
    items: Sequence[Any],
    status: Dict[str, int],
    options: Dict[str, Any],
    counters: Any,
) -> Tuple[
    List[Dict[str, Any]], List[Tuple[str, List[Tuple[str, int]]]]
]:
    """Walk a claimed batch locally; returns (completions, fingerprints).

    ``completions`` is the :meth:`~repro.store.db.ResultStore
    .complete_work_batch` payload — one ``{"work_id", "result",
    "children"}`` dict per item.  ``fingerprints`` is the batch's
    deferred visited-set, grouped per exchange scope: the batch shares
    ONE exchange per scope, so later items dedup against earlier items'
    local discoveries for free, and the shared pending set can only be
    published (or dropped) wholesale — exactly the all-or-nothing
    contract of the batch completion.  A batch whose completion is
    never accepted publishes nothing; its items requeue by lease expiry
    and are re-walked from a store-seeded exchange elsewhere.

    The re-split decision is per batch, off the post-claim ``status``
    snapshot the claim transaction returned: when the pending queue
    sits below ``shard_budget × workers``, every item in the batch
    walks with ``choice_limit`` pushed ``split_step`` past its prefix
    and defers the halted subtrees as children — work stealing and
    adaptive shard sizing are the same mechanism.
    """
    from repro.store.exchange import FingerprintExchange

    workers = options.get("workers", 1)
    budget = options.get("shard_budget", DEFAULT_SHARD_BUDGET)
    resplit = workers > 1 and status["pending"] < budget * workers
    split_step = options.get("split_step", DEFAULT_SPLIT_STEP)
    exchanges: Dict[str, FingerprintExchange] = {}
    completions: List[Dict[str, Any]] = []
    for work in items:
        item = work.item
        case = case_from_dict(item["case"])
        prefix = tuple(item["prefix"])
        scope = item["scope"]
        exchange = exchanges.get(scope)
        if exchange is None:
            exchange = exchanges[scope] = FingerprintExchange(
                store,
                scope,
                batch=options.get("exchange_batch", 256),
                pull_interval=options.get("sync_interval", 0.5),
                counters=counters,
            )
        choice_limit = (
            len(prefix) + split_step if resplit else None
        )
        shard_roots: Optional[List[Tuple[int, ...]]] = (
            [] if resplit else None
        )
        result = explore_case(
            case,
            engine=options.get("engine", "indexed"),
            por=options.get("por", True),
            dedup=options.get("dedup", True),
            symmetry=options.get("symmetry"),
            fingerprint_mode=options.get("fingerprint_mode", "incremental"),
            initial_stack=[prefix],
            choice_limit=choice_limit,
            shard_roots=shard_roots,
            exchange=exchange,
        )
        completions.append(
            {
                "work_id": work.id,
                "result": result_to_dict(result),
                "children": [
                    {
                        "case": item["case"],
                        "prefix": list(root),
                        "scope": scope,
                        "case_index": item["case_index"],
                    }
                    for root in (shard_roots or [])
                ],
            }
        )
    return completions, [
        (scope, exchange.take_pending())
        for scope, exchange in exchanges.items()
    ]


def _worker_main(
    store_path: str,
    queue_scope: str,
    worker: str,
    options: Dict[str, Any],
) -> None:
    """One frontier worker: claim a batch, walk it, complete it, repeat.

    The loop's coordination cost is what PR 8 amortizes: one claim
    transaction leases up to a fair share of the queue, one heartbeat
    thread covers every held lease, and one completion transaction
    lands the whole batch — so store round-trips scale with batches,
    not items.  The batch's coordination counters (claims, round
    trips, heartbeats, exchange pulls, busy retries) ride into the
    merged report on the batch's first summary; per-item engine
    counters stay per-summary so :func:`~repro.explore.shard
    .merge_summaries` sums stay honest.
    """
    from repro.sim.perf import PerfCounters
    from repro.store.db import ResultStore, drain_busy_retries

    ttl = options.get("lease_ttl", DEFAULT_LEASE_TTL)
    claim_limit = options.get("claim_limit", DEFAULT_CLAIM_LIMIT)
    workers = options.get("workers", 1)
    store = ResultStore(store_path)
    idle_round_trips = 0
    try:
        while True:
            items, status = store.claim_work_batch(
                queue_scope, worker, ttl, claim_limit, fair_share=workers
            )
            if not items:
                if status["pending"] == 0 and status["leased"] == 0:
                    return  # drained: every item is done or quarantined
                idle_round_trips += 1
                time.sleep(0.05)
                continue
            beats = [0]
            stop = threading.Event()
            beater = threading.Thread(
                target=_heartbeat_main,
                args=(store_path, queue_scope, worker, ttl, stop, beats),
                daemon=True,
            )
            beater.start()
            try:
                if os.environ.get(CHAOS_FAIL_ENV):
                    raise RuntimeError(
                        f"chaos: {CHAOS_FAIL_ENV} poisoned this worker"
                    )
                stall = os.environ.get(CHAOS_STALL_ENV)
                if stall:
                    time.sleep(float(stall))
                batch_counters = PerfCounters()
                completions, fingerprints = _run_batch(
                    store, queue_scope, items, status, options,
                    batch_counters,
                )
                stop.set()
                beater.join(timeout=1.0)
                batch_counters.frontier_claims += len(items)
                batch_counters.frontier_claim_round_trips += (
                    idle_round_trips + 1
                )
                idle_round_trips = 0
                batch_counters.frontier_heartbeats += beats[0]
                batch_counters.store_busy_retries += drain_busy_retries()
                first = completions[0]["result"]
                merged = dict(first.get("counters") or {})
                for name, value in batch_counters.as_dict().items():
                    if value:
                        merged[name] = merged.get(name, 0) + value
                first["counters"] = merged
                store.complete_work_batch(worker, completions, fingerprints)
            except Exception as exc:  # noqa: BLE001 — fail the batch, live on
                incident = {
                    "kind": "worker-exception",
                    "error_type": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(limit=8),
                    "worker": worker,
                }
                for work in items:
                    store.fail_work(
                        work.id,
                        worker,
                        incident,
                        retry_limit=options.get(
                            "retry_limit", DEFAULT_RETRY_LIMIT
                        ),
                    )
            finally:
                stop.set()
                beater.join(timeout=1.0)
    finally:
        store.close()


class _FrontierWorkers:
    """The coordinator's view of its worker fleet: spawn, track, respawn."""

    def __init__(
        self,
        store_path: str,
        queue_scope: str,
        count: int,
        options: Dict[str, Any],
    ):
        self.store_path = store_path
        self.queue_scope = queue_scope
        self.count = count
        self.options = options
        self.context = multiprocessing.get_context("spawn")
        self.generation = 0
        self.processes: Dict[str, Any] = {}
        self.respawns = 0

    def spawn(self, how_many: int) -> None:
        for _ in range(how_many):
            name = f"w{self.generation}"
            self.generation += 1
            process = self.context.Process(
                target=_worker_main,
                args=(self.store_path, self.queue_scope, name, self.options),
                daemon=True,
            )
            process.start()
            self.processes[name] = process

    def live(self) -> int:
        return sum(1 for p in self.processes.values() if p.is_alive())

    def reap_and_respawn(self) -> int:
        """Replace dead workers so kills cost recovery time, not capacity."""
        dead = [n for n, p in self.processes.items() if not p.is_alive()]
        for name in dead:
            self.processes.pop(name).join(timeout=0.1)
        deficit = self.count - self.live()
        if deficit > 0:
            self.spawn(deficit)
            self.respawns += deficit
        return len(dead)

    def shutdown(self, timeout: float = 5.0) -> None:
        deadline = time.monotonic() + timeout
        for process in self.processes.values():
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in self.processes.values():
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)


def run_frontier_dynamic(
    roots: Sequence[ExploreCase],
    engine: str = "indexed",
    workers: int = 2,
    por: bool = True,
    dedup: bool = True,
    symmetry: Any = None,
    fingerprint_mode: str = "incremental",
    store: Any = None,
    shard_depth: Optional[int] = None,
    shard_budget: int = DEFAULT_SHARD_BUDGET,
    claim_limit: int = DEFAULT_CLAIM_LIMIT,
    split_step: int = DEFAULT_SPLIT_STEP,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    retry_limit: int = DEFAULT_RETRY_LIMIT,
    exchange_batch: int = 256,
    sync_interval: float = 0.5,
    chaos_kill_rate: float = 0.0,
    chaos_seed: int = 0,
) -> List[Dict[str, Any]]:
    """Explore every root through the crash-tolerant dynamic frontier.

    Returns one merged summary dict per root, in root order — the same
    shape :func:`repro.explore.frontier.run_frontier` produces, plus an
    ``incidents`` list and a ``frontier`` accounting block (workers,
    respawns, recoveries, quarantines, coordination counters).
    ``store`` may be a :class:`~repro.store.db.ResultStore`, a path, or
    None (a private store under a temp directory, deleted with it).

    ``shard_depth=None`` (the default) is adaptive mode: each root is
    enqueued as one bare item and workers re-split on demand until the
    pending queue holds about ``shard_budget`` claimable shards per
    worker (see the module docstring).  An integer ``shard_depth`` is
    the legacy fixed pre-split override.  ``claim_limit`` caps how many
    items one claim transaction may lease.

    ``chaos_kill_rate`` arms :class:`repro.chaos.workers.WorkerKiller`
    against our own fleet — the CI smoke proof that recovery works.
    """
    import tempfile

    from repro.chaos.workers import WorkerKiller
    from repro.explore.symmetry import resolve_symmetry
    from repro.sim.perf import PerfCounters
    from repro.store.db import ResultStore, drain_busy_retries
    from repro.store.exchange import FingerprintExchange, exchange_scope

    token = os.urandom(8).hex()
    queue_scope = _queue_scope(token)
    tempdir = None
    owned = not isinstance(store, ResultStore)
    if store is None:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-frontier-")
        store = ResultStore(tempdir.name)
    elif owned:
        store = ResultStore(store)

    options = {
        "engine": engine,
        "por": por,
        "dedup": dedup,
        "symmetry": symmetry,
        "fingerprint_mode": fingerprint_mode,
        "workers": workers,
        "lease_ttl": lease_ttl,
        "retry_limit": retry_limit,
        "split_step": split_step,
        "shard_budget": shard_budget,
        "claim_limit": claim_limit,
        "exchange_batch": exchange_batch,
        "sync_interval": sync_interval,
    }
    scopes: List[str] = []
    bases: List[Dict[str, Any]] = []
    incidents: List[Dict[str, Any]] = []
    started = time.perf_counter()
    try:
        # Phase 1 — seed the queue.  Adaptive mode (shard_depth=None)
        # enqueues each root as ONE bare item against an empty base
        # summary: the first worker to claim it provides all splitting
        # on demand, so granularity tracks the worker count instead of
        # a guessed depth.  Legacy mode splits every root in-process
        # (bounded by shard_depth, cheap) and enqueues the subtrees;
        # the splitter's fingerprints publish before any worker seeds —
        # its walk is complete, its deferred subtrees are exactly the
        # items below.
        items: List[Dict[str, Any]] = []
        for index, case in enumerate(roots):
            case_dict = case_to_dict(case)
            scope = "{}:{}".format(
                exchange_scope(
                    case_dict, engine, por, dedup, symmetry, fingerprint_mode
                ),
                token,
            )
            scopes.append(scope)
            if shard_depth is None:
                store.register_scope(scope)
                bases.append(
                    result_to_dict(
                        ExploreResult(
                            case=case,
                            engine=engine,
                            por=por,
                            dedup=dedup,
                            symmetry=resolve_symmetry(case, symmetry),
                            fingerprint_mode=fingerprint_mode,
                        )
                    )
                )
                items.append(
                    {
                        "case": case_dict,
                        "prefix": [],
                        "scope": scope,
                        "case_index": index,
                    }
                )
                continue
            splitter_exchange = FingerprintExchange(
                store, scope, batch=exchange_batch
            )
            shallow, shard_roots = split_case(
                case,
                engine=engine,
                por=por,
                dedup=dedup,
                choice_limit=shard_depth,
                symmetry=symmetry,
                fingerprint_mode=fingerprint_mode,
                exchange=splitter_exchange,
            )
            splitter_exchange.publish_pending()
            bases.append(result_to_dict(shallow))
            items.extend(
                {
                    "case": case_dict,
                    "prefix": list(root),
                    "scope": scope,
                    "case_index": index,
                }
                for root in shard_roots
            )
        store.enqueue_work(queue_scope, items)
        store.flush()

        # Phase 2 — run the fleet against the queue until it drains.
        fleet = _FrontierWorkers(
            str(store.path), queue_scope, workers, options
        )
        killer = WorkerKiller(chaos_kill_rate, seed=chaos_seed)
        if items:
            fleet.spawn(workers)
        # Ramping poll: start fast so short runs are not taxed a fixed
        # lease_ttl/4 before the drain is even noticed, back off toward
        # lease_ttl/4 so long runs cost the store a few polls per TTL.
        poll = 0.05
        poll_cap = max(0.05, lease_ttl / 4.0)
        last_poll = time.monotonic()
        recoveries = 0
        try:
            while items:
                time.sleep(poll)
                poll = min(poll_cap, poll * 1.6)
                now = time.monotonic()
                expired = store.requeue_expired(
                    queue_scope, retry_limit=retry_limit
                )
                recoveries += len(expired)
                incidents.extend(expired)
                status = store.work_status(queue_scope)
                if status["pending"] == 0 and status["leased"] == 0:
                    break
                killer.maybe_kill(
                    fleet.processes,
                    store.leased_workers(queue_scope),
                    now - last_poll,
                )
                last_poll = now
                fleet.reap_and_respawn()
        finally:
            fleet.shutdown()

        # Phase 3 — merge per root; quarantined shards degrade the
        # verdict to complete=False instead of discarding siblings.
        by_case: Dict[int, List[Dict[str, Any]]] = {}
        coordination = PerfCounters()
        for _, item, summary in store.work_results(queue_scope):
            by_case.setdefault(item["case_index"], []).append(summary)
            coordination.merge(summary.get("counters") or {})
        quarantined = store.work_quarantined(queue_scope)
        # work_quarantined is the authoritative quarantine list (it also
        # covers worker-exception quarantines the poll loop never saw);
        # drop the poll loop's own quarantine records to avoid doubles.
        incidents = [
            i for i in incidents if i["kind"] != "shard-quarantined"
        ]
        incidents.extend(quarantined)
        summaries = []
        frontier_block = {
            "workers": workers,
            "lease_ttl": lease_ttl,
            "shard_mode": "adaptive" if shard_depth is None else "fixed",
            "shard_depth": shard_depth,
            "shard_budget": shard_budget,
            "claim_limit": claim_limit,
            "recoveries": recoveries,
            "kills": len(killer.kills),
            "respawns": fleet.respawns,
            "quarantined": len(quarantined),
            # Coordination traffic, summed over every accepted batch —
            # the amortization evidence BENCH_explore's frontier
            # section records (claims per round trip, heartbeats and
            # pulls per run).
            "claims": coordination.frontier_claims,
            "claim_round_trips": coordination.frontier_claim_round_trips,
            "heartbeats": coordination.frontier_heartbeats,
            "exchange_pulls": coordination.exchange_pulls,
            "store_busy_retries": drain_busy_retries(),
            "wall_clock": round(time.perf_counter() - started, 3),
        }
        for index in range(len(bases)):
            merged = merge_summaries(bases[index], by_case.get(index, []))
            case_incidents = [
                incident
                for incident in incidents
                if incident.get("item", {}).get("case_index") == index
                or "item" not in incident
            ]
            merged["incidents"] = (
                merged.get("incidents", []) + case_incidents
            )
            if any(
                q["item"]["case_index"] == index for q in quarantined
            ):
                merged["complete"] = False
            merged["frontier"] = frontier_block
            summaries.append(merged)
        return summaries
    finally:
        store.clear_work(queue_scope)
        for scope in scopes:
            store.release_scope(scope)
        if owned:
            store.close()
        if tempdir is not None:
            tempdir.cleanup()


def explore_case_dynamic(
    case: ExploreCase,
    engine: str = "indexed",
    workers: int = 2,
    por: bool = True,
    dedup: bool = True,
    symmetry: Any = None,
    fingerprint_mode: str = "incremental",
    store: Any = None,
    shard_depth: Optional[int] = None,
    **kwargs: Any,
) -> ExploreResult:
    """One case through the dynamic frontier, as an ExploreResult.

    The API twin of :func:`repro.explore.shard.explore_case_sharded`
    with crash-tolerant workers; equivalent to
    :func:`~repro.explore.engine.explore_case` in decision vectors,
    violations and completeness whenever nothing was quarantined.
    """
    summaries = run_frontier_dynamic(
        [case],
        engine=engine,
        workers=workers,
        por=por,
        dedup=dedup,
        symmetry=symmetry,
        fingerprint_mode=fingerprint_mode,
        store=store,
        shard_depth=shard_depth,
        **kwargs,
    )
    result = _result_from_summary(case, summaries[0])
    result.frontier = dict(summaries[0].get("frontier", {}))
    return result
