"""``python -m repro.explore`` — the bounded model checker's front door.

Recipes (see ``docs/EXPLORER.md`` for the full tour):

Exhaust one clean target at its pinned smoke depth::

    python -m repro.explore --target paxos --stats

Everything clean, shallower, on the reference engine::

    python -m repro.explore --target all --depth 6 --engine reference

Hunt a seeded bug and keep the shrunk witness::

    python -m repro.explore --target submajority --expect-violation \\
        --stop-on-first --out artifacts/

Measure what the reductions buy::

    python -m repro.explore --target ct --depth 7 --stats --no-por
    python -m repro.explore --target ct --depth 7 --stats

Exhaust the n=3 NBAC frontier, every reduction on, and insist on it::

    python -m repro.explore --target nbac --procs 3 --symmetry \\
        --require-complete --stats

The same frontier on crash-tolerant work-stealing workers, with the
chaos injector SIGKILLing them mid-shard to prove recovery::

    python -m repro.explore --target nbac --procs 3 --symmetry \\
        --frontier dynamic --workers 4 --lease-ttl 2 \\
        --chaos-kill-rate 0.3 --require-complete --stats

The exit code is 0 when every explored target matched expectation —
no violations normally, at least one under ``--expect-violation`` —
and 1 otherwise, so CI can call this directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

from repro.chaos.targets import CLEAN_TARGETS, MUTANT_TARGETS, TARGETS
from repro.explore.cases import ENGINES, case_from_dict
from repro.runner.config import CACHE_BACKENDS, configure
from repro.explore.engine import FINGERPRINT_MODES, Violation
from repro.explore.frontier import (
    SMOKE_DEPTHS,
    SMOKE_DEPTHS_N3,
    SWITCH_MUTANTS,
    enumerate_roots,
    run_frontier,
)
from repro.explore.frontierd import DEFAULT_SHARD_BUDGET
from repro.explore.symmetry import collapse_symmetric_roots


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Exhaustively explore bounded schedules of a target.",
    )
    parser.add_argument(
        "--target",
        default="all",
        help=(
            "target name, 'all' (every clean target) or 'mutants' "
            f"(every seeded bug); targets: {', '.join(sorted(TARGETS))}"
        ),
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=None,
        help="step budget per run (default: the target's pinned smoke depth)",
    )
    parser.add_argument(
        "--procs", type=int, default=2, help="system size n (default 2)"
    )
    parser.add_argument(
        "--crashes",
        type=int,
        default=0,
        help="max crashes enumerated at the frontier (default 0)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES + ("both",),
        default="indexed",
        help=(
            "network engine to drive (default indexed; 'both' = the "
            "two pure-Python engines; 'native' needs the compiled core "
            "or silently degrades to indexed)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="campaign worker processes (default: runner's choice)",
    )
    parser.add_argument(
        "--frontier",
        choices=("static", "dynamic"),
        default="static",
        help=(
            "how roots are executed: 'static' (one campaign cell per "
            "root) or 'dynamic' (crash-tolerant work-stealing workers "
            "pulling shard roots from a store-backed queue under "
            "expiring leases; see docs/EXPLORER.md)"
        ),
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=5.0,
        help=(
            "dynamic frontier: seconds before a silent worker's lease "
            "expires and its shard is requeued (default 5)"
        ),
    )
    parser.add_argument(
        "--shard-budget",
        type=int,
        default=None,
        help=(
            "dynamic frontier: adaptive sizing target — workers "
            "re-split their claims while the pending queue holds fewer "
            f"than this many shards per worker (default {DEFAULT_SHARD_BUDGET})"
        ),
    )
    parser.add_argument(
        "--shard-depth",
        type=int,
        default=None,
        help=(
            "dynamic frontier: legacy override — pre-split every root "
            "at this fixed choice depth instead of adaptive on-demand "
            "splitting (default: adaptive)"
        ),
    )
    parser.add_argument(
        "--chaos-kill-rate",
        type=float,
        default=0.0,
        help=(
            "dynamic frontier: SIGKILL lease-holding workers at this "
            "expected rate per worker-second — the recovery smoke test "
            "(default 0, off)"
        ),
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the worker-killer schedule (default 0)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="campaign cache directory for finished subtrees (default off)",
    )
    parser.add_argument(
        "--cache-backend",
        choices=CACHE_BACKENDS,
        default=None,
        help=(
            "what --cache resolves to: per-entry JSON files or the "
            "persistent SQLite store (default: json, or "
            "$REPRO_RUNNER_CACHE_BACKEND)"
        ),
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help=(
            "campaign database to file violation witnesses into "
            "(directory or .sqlite path; see docs/STORE.md)"
        ),
    )
    parser.add_argument(
        "--max-runs",
        type=int,
        default=None,
        help="truncate each root after this many runs (default unbounded)",
    )
    parser.add_argument(
        "--stop-on-first",
        action="store_true",
        help="stop each root at its first violation",
    )
    parser.add_argument(
        "--expect-violation",
        action="store_true",
        help="invert the verdict: fail unless a violation is found",
    )
    parser.add_argument(
        "--detector-switches",
        action="store_true",
        help=(
            "enumerate detector history scripts (branch switches, leader "
            "changes, FS reddening) as extra roots whose switch times "
            "become in-tree choice points; auto-enabled for mutants "
            "that need it (redcommit)"
        ),
    )
    parser.add_argument(
        "--no-por", action="store_true", help="disable partial-order pruning"
    )
    parser.add_argument(
        "--no-dedup", action="store_true", help="disable state deduplication"
    )
    parser.add_argument(
        "--symmetry",
        action="store_true",
        help=(
            "enable pid-symmetry reduction where sound (auto-gated per "
            "target) and collapse symmetric frontier roots"
        ),
    )
    parser.add_argument(
        "--fingerprint-mode",
        choices=FINGERPRINT_MODES,
        default="incremental",
        help="dedup fingerprint engine (default incremental)",
    )
    parser.add_argument(
        "--require-complete",
        action="store_true",
        help="fail unless every root's tree was exhausted (no truncation)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-root and aggregate search statistics",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for shrunk violation artifacts (default: none kept)",
    )
    return parser.parse_args(argv)


def _targets(name: str) -> List[str]:
    if name == "all":
        return list(CLEAN_TARGETS)
    if name == "mutants":
        return list(MUTANT_TARGETS)
    if name not in TARGETS:
        raise SystemExit(
            f"unknown target {name!r}; have {sorted(TARGETS)}, 'all', 'mutants'"
        )
    return [name]


def _emit_artifacts(
    summaries: List[Dict[str, Any]],
    out: Path = None,
    store: Any = None,
) -> List[Path]:
    """Shrink every violation; file it to ``out`` and/or ``store``."""
    from repro.explore.artifact import build_document, write_artifact
    from repro.explore.shrink import shrink_violation

    written = []
    index = -1
    for summary in summaries:
        for raw in summary["violations"]:
            # Numbered across summaries: two roots convicting the same
            # target on the same clause must not overwrite each other.
            index += 1
            violation = Violation(
                case=case_from_dict(summary["case"]),
                engine=summary["engine"],
                choices=tuple(raw["choices"]),
                violated=tuple(raw["violated"]),
                metrics={},
                decisions=tuple(tuple(d) for d in raw["decisions"]),
                final_time=raw["final_time"],
                por=summary["por"],
            )
            case, choices, stats = shrink_violation(violation)
            if out is not None:
                path = out / (
                    f"{case.target}-{violation.violated[0]}-{index}.json"
                )
                document = write_artifact(
                    path,
                    case,
                    choices,
                    violation.violated,
                    engine=violation.engine,
                    por=violation.por,
                    shrink_stats=stats,
                )
                written.append(path)
            else:
                document = build_document(
                    case,
                    choices,
                    violation.violated,
                    engine=violation.engine,
                    por=violation.por,
                    shrink_stats=stats,
                )
            if store is not None:
                store.record_witness(document)
    return written


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    engines = ["indexed", "reference"] if args.engine == "both" else [args.engine]
    if args.cache_backend is not None:
        configure(cache_backend=args.cache_backend)
    if args.frontier == "dynamic" and (
        args.stop_on_first or args.max_runs is not None
    ):
        raise SystemExit(
            "--frontier dynamic always exhausts its roots; it does not "
            "combine with --stop-on-first or --max-runs"
        )
    store = None
    if args.store is not None:
        from repro.store import ResultStore

        store = ResultStore(args.store)
    failures = 0
    for target in _targets(args.target):
        if args.depth is not None:
            depth = args.depth
        elif args.procs >= 3 and target in SMOKE_DEPTHS_N3:
            depth = SMOKE_DEPTHS_N3[target]
        else:
            depth = SMOKE_DEPTHS.get(target, 8)
        switches = args.detector_switches
        crashes = args.crashes
        if target in SWITCH_MUTANTS:
            # Undetectable without the switch dimension and a crash to
            # gate the FS-red script on; forcing both keeps
            # `--target <mutant> --expect-violation` meaningful.
            switches = True
            crashes = max(crashes, 1)
        roots = enumerate_roots(
            target,
            args.procs,
            depth=depth,
            max_crashes=crashes,
            detector_switches=switches,
        )
        if args.symmetry:
            roots = collapse_symmetric_roots(roots)
        for engine in engines:
            if args.frontier == "dynamic":
                from repro.explore.frontierd import run_frontier_dynamic

                summaries = run_frontier_dynamic(
                    roots,
                    engine=engine,
                    workers=args.workers or 2,
                    por=not args.no_por,
                    dedup=not args.no_dedup,
                    symmetry="auto" if args.symmetry else None,
                    fingerprint_mode=args.fingerprint_mode,
                    store=store,
                    shard_depth=args.shard_depth,
                    shard_budget=(
                        args.shard_budget
                        if args.shard_budget is not None
                        else DEFAULT_SHARD_BUDGET
                    ),
                    lease_ttl=args.lease_ttl,
                    chaos_kill_rate=args.chaos_kill_rate,
                    chaos_seed=args.chaos_seed,
                )
            else:
                summaries = run_frontier(
                    roots,
                    engine=engine,
                    workers=args.workers,
                    cache=args.cache if args.cache is not None else False,
                    por=not args.no_por,
                    dedup=not args.no_dedup,
                    stop_on_first_violation=args.stop_on_first,
                    max_runs=args.max_runs,
                    symmetry="auto" if args.symmetry else None,
                    fingerprint_mode=args.fingerprint_mode,
                )
            totals = {
                "runs": 0,
                "states": 0,
                "dedup_hits": 0,
                "por_pruned": 0,
                "violations": 0,
                "replay_steps": 0,
                "fp_nodes": 0,
                "opaque_tokens": 0,
            }
            complete = True
            for summary in summaries:
                for key in totals:
                    totals[key] += summary["stats"][key]
                complete = complete and summary["complete"]
                if args.stats:
                    case = summary["case"]
                    print(
                        f"  root {case['target']} seed={case['seed']} "
                        f"crashes={case['crashes']} "
                        f"assignment={json.dumps(case['assignment'])}: "
                        f"{summary['stats']}"
                    )
            found = totals["violations"] > 0
            verdict = (
                ("VIOLATION FOUND" if found else "no violation (UNEXPECTED)")
                if args.expect_violation
                else ("VIOLATIONS" if found else "ok")
            )
            bad = found != args.expect_violation
            if args.require_complete and not complete:
                bad = True
                verdict += " INCOMPLETE"
            failures += bad
            print(
                f"{target} [{engine}] depth={depth} roots={len(roots)}: "
                f"{verdict}"
                + ("" if complete else " (truncated)")
                + (
                    f" — runs={totals['runs']} states={totals['states']} "
                    f"dedup_hits={totals['dedup_hits']} "
                    f"por_pruned={totals['por_pruned']} "
                    f"replay_steps={totals['replay_steps']} "
                    f"fp_nodes={totals['fp_nodes']} "
                    f"opaque_tokens={totals['opaque_tokens']}"
                    if args.stats
                    else ""
                )
            )
            if args.frontier == "dynamic" and summaries:
                block = summaries[0].get("frontier", {})
                incident_count = sum(
                    len(s.get("incidents", [])) for s in summaries
                )
                print(
                    f"  frontier: workers={block.get('workers')} "
                    f"mode={block.get('shard_mode')} "
                    f"recoveries={block.get('recoveries')} "
                    f"kills={block.get('kills')} "
                    f"respawns={block.get('respawns')} "
                    f"quarantined={block.get('quarantined')} "
                    f"incidents={incident_count} "
                    f"wall_clock={block.get('wall_clock')}s"
                )
                print(
                    "  coordination: "
                    f"claims={block.get('claims')} "
                    f"claim_round_trips={block.get('claim_round_trips')} "
                    f"heartbeats={block.get('heartbeats')} "
                    f"exchange_pulls={block.get('exchange_pulls')} "
                    f"store_busy_retries={block.get('store_busy_retries')}"
                )
            if (args.out is not None or store is not None) and found:
                for path in _emit_artifacts(summaries, args.out, store):
                    print(f"  wrote {path}")
                if store is not None:
                    print(f"  filed witnesses into {store.path}")
    if store is not None:
        store.close()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
