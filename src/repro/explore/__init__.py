"""Bounded model checking of the simulator's nondeterminism.

The chaos layer (:mod:`repro.chaos`) *samples* adversarial runs; this
package *enumerates* them.  A :class:`~repro.explore.control
.ChoiceController` drives the stock :class:`~repro.sim.system.System`
through its scheduler/delivery extension points, turning every
scheduler pick and message-delivery pick into an explicit indexed
choice; :func:`~repro.explore.engine.explore_case` exhausts the
resulting bounded tree by replay-based DFS with partial-order,
state-dedup and pid-symmetry reductions (the incremental fingerprint
engine behind dedup lives in :mod:`repro.explore.state`, the symmetry
group in :mod:`repro.explore.symmetry`); the frontier
(:mod:`repro.explore.frontier`) enumerates detector assignments and
crash schedules across subtree roots and fans the work out as a
:mod:`repro.runner` campaign, :mod:`repro.explore.shard` splits a
single oversized case into campaign cells of its own, and
:mod:`repro.explore.frontierd` runs the crash-tolerant work-stealing
variant: long-lived workers pulling shard roots from a store-backed
queue under expiring leases, surviving SIGKILL mid-shard.
Violating leaves are judged by the chaos targets' own property hooks,
shrunk (:mod:`repro.explore.shrink`), and frozen as replayable
artifacts (:mod:`repro.explore.artifact`).

See ``docs/EXPLORER.md`` for the search strategy, the soundness
arguments behind the reductions, and the performance notes.
"""

from repro.explore.assignments import (
    assignment_requires_crash,
    assignments_for,
    decode_value,
    default_assignment,
    fs_prefix_admissible,
    psi_fs_prefix_admissible,
    psi_prefix_admissible,
    script_stages_coherent,
    switch_scripts_for,
)
from repro.explore.cases import (
    ENGINES,
    ExploreCase,
    build_system,
    case_from_dict,
    case_to_dict,
    resolve_parts,
    run_controlled,
)
from repro.explore.control import (
    ChoiceController,
    ChoicePoint,
    ExploringDelivery,
    ExploringScheduler,
)
from repro.explore.engine import (
    FINGERPRINT_MODES,
    ExploreResult,
    Violation,
    explore_case,
)
from repro.explore.frontier import (
    DEFAULT_SEEDS,
    SMOKE_DEPTHS,
    SMOKE_DEPTHS_N3,
    SWITCH_MUTANTS,
    crash_schedules,
    enumerate_roots,
    frontier_campaign,
    run_frontier,
)
from repro.explore.frontierd import (
    explore_case_dynamic,
    run_frontier_dynamic,
)
from repro.explore.shard import (
    explore_case_sharded,
    explore_shard,
    merge_summaries,
    split_case,
)
from repro.explore.state import FingerprintEngine, fingerprint, sanitize
from repro.explore.symmetry import (
    SYMMETRY_SAFE_TARGETS,
    admissible_perms,
    collapse_symmetric_roots,
    resolve_symmetry,
)

__all__ = [
    "ENGINES",
    "DEFAULT_SEEDS",
    "FINGERPRINT_MODES",
    "SMOKE_DEPTHS",
    "SMOKE_DEPTHS_N3",
    "SWITCH_MUTANTS",
    "SYMMETRY_SAFE_TARGETS",
    "ChoiceController",
    "ChoicePoint",
    "ExploreCase",
    "ExploreResult",
    "ExploringDelivery",
    "ExploringScheduler",
    "FingerprintEngine",
    "Violation",
    "admissible_perms",
    "assignment_requires_crash",
    "assignments_for",
    "build_system",
    "case_from_dict",
    "case_to_dict",
    "collapse_symmetric_roots",
    "crash_schedules",
    "decode_value",
    "default_assignment",
    "enumerate_roots",
    "explore_case",
    "explore_case_dynamic",
    "explore_case_sharded",
    "explore_shard",
    "fingerprint",
    "frontier_campaign",
    "fs_prefix_admissible",
    "merge_summaries",
    "psi_fs_prefix_admissible",
    "psi_prefix_admissible",
    "resolve_parts",
    "resolve_symmetry",
    "run_controlled",
    "run_frontier",
    "run_frontier_dynamic",
    "sanitize",
    "script_stages_coherent",
    "split_case",
    "switch_scripts_for",
]
