"""Bounded model checking of the simulator's nondeterminism.

The chaos layer (:mod:`repro.chaos`) *samples* adversarial runs; this
package *enumerates* them.  A :class:`~repro.explore.control
.ChoiceController` drives the stock :class:`~repro.sim.system.System`
through its scheduler/delivery extension points, turning every
scheduler pick and message-delivery pick into an explicit indexed
choice; :func:`~repro.explore.engine.explore_case` exhausts the
resulting bounded tree by replay-based DFS with partial-order and
state-dedup reductions; the frontier (:mod:`repro.explore.frontier`)
enumerates detector assignments and crash schedules across subtree
roots and fans the work out as a :mod:`repro.runner` campaign.
Violating leaves are judged by the chaos targets' own property hooks,
shrunk (:mod:`repro.explore.shrink`), and frozen as replayable
artifacts (:mod:`repro.explore.artifact`).

See ``docs/EXPLORER.md`` for the search strategy and the soundness
arguments behind the two reductions.
"""

from repro.explore.assignments import (
    assignments_for,
    decode_value,
    default_assignment,
)
from repro.explore.cases import (
    ENGINES,
    ExploreCase,
    build_system,
    case_from_dict,
    case_to_dict,
    resolve_parts,
    run_controlled,
)
from repro.explore.control import (
    ChoiceController,
    ChoicePoint,
    ExploringDelivery,
    ExploringScheduler,
)
from repro.explore.engine import ExploreResult, Violation, explore_case
from repro.explore.frontier import (
    DEFAULT_SEEDS,
    SMOKE_DEPTHS,
    crash_schedules,
    enumerate_roots,
    frontier_campaign,
    run_frontier,
)
from repro.explore.state import fingerprint, sanitize

__all__ = [
    "ENGINES",
    "DEFAULT_SEEDS",
    "SMOKE_DEPTHS",
    "ChoiceController",
    "ChoicePoint",
    "ExploreCase",
    "ExploreResult",
    "ExploringDelivery",
    "ExploringScheduler",
    "Violation",
    "assignments_for",
    "build_system",
    "case_from_dict",
    "case_to_dict",
    "crash_schedules",
    "decode_value",
    "default_assignment",
    "enumerate_roots",
    "explore_case",
    "fingerprint",
    "frontier_campaign",
    "resolve_parts",
    "run_controlled",
    "run_frontier",
    "sanitize",
]
