"""Sharded subtree search: one case's tree as a runner campaign.

A single deep case can dwarf every other frontier root (nbac at n=3 is
thousands of replays), and one :func:`~repro.explore.engine
.explore_case` call is inherently serial.  The shard layer splits the
case's choice tree at a configurable *choice-frontier* depth and runs
the subtrees as independent :class:`~repro.runner.campaign.Campaign`
cells:

1. **Split** (:func:`split_case`): a bounded "splitter" DFS explores
   the tree with ``choice_limit`` set — any run whose recorded choice
   log reaches the limit is halted at the start of the next tick and
   its taken prefix becomes a shard root.  Leaves shallower than the
   limit are judged inline by the splitter itself.  Shard roots are
   pairwise disjoint subtrees: any two sibling prefixes differ at some
   recorded position, so no leaf is double-judged.
2. **Work** (:func:`explore_shard`): each shard re-enters
   ``explore_case`` with ``initial_stack=[root]`` — replaying into the
   subtree and exhausting it.  Module-level with primitive arguments,
   so campaign workers can import it and the result cache can
   fingerprint it.
3. **Merge** (:func:`merge_summaries`): stats are summed, decision
   vectors unioned, violations concatenated, ``complete`` AND-ed.

**Cross-shard dedup.**  Without a store, each shard deduplicates
against states recorded inside its own subtree only.  A state reached
in shard A that was already explored in shard B is *not* merged — the
walk degrades toward plain DFS across the shard boundary, re-exploring
work but never skipping it.  Passing ``store=`` to
:func:`explore_case_sharded` recovers the lost dedup: the splitter and
every shard share one visited set through the campaign database's
``fingerprints`` table (:class:`repro.store.exchange
.FingerprintExchange`) — each shard seeds its visited dict from the
table, publishes its states **once its walk completes** (deferred
publication; a cell that dies mid-walk publishes nothing, so retries
never dedup against unexhausted subtrees), and pulls the delta other
shards inserted since its last sync.  With sequential shards
(``workers=1``) the recovery is exact: the merged walk visits no more
states than the single-process one (``tests/explore/test_shared_dedup
.py`` and the BENCH_explore sharded gate pin this); parallel shards
may re-explore states a sibling has not yet published — redundancy,
never lost coverage.

The splitter's own dedup may drop a would-be shard root whose cutoff
state an earlier splitter run already recorded with at least as many
ticks remaining — sound for the same reason dedup is always sound: the
recording path's subtree (be it splitter-inline or inside the earlier
shard) covers the dropped one's continuations.  Shard roots can sit
slightly deeper than the nominal cutoff: a popped prefix that already
exceeds the limit halts at its first post-replay tick, never
mid-replay, so the deferred subtree is re-entered exactly where the
splitter left it.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.explore.cases import ExploreCase, case_from_dict, case_to_dict
from repro.explore.engine import ExploreResult, Violation, explore_case
from repro.explore.frontier import result_to_dict
from repro.runner import Campaign, call, fn_spec
from repro.sim.perf import PerfCounters


def split_case(
    case: ExploreCase,
    engine: str = "indexed",
    por: bool = True,
    dedup: bool = True,
    choice_limit: int = 6,
    symmetry: Any = None,
    fingerprint_mode: str = "incremental",
    exchange: Any = None,
) -> Tuple[ExploreResult, List[Tuple[int, ...]]]:
    """Phase 1: judge the shallow leaves, collect the shard roots."""
    shard_roots: List[Tuple[int, ...]] = []
    shallow = explore_case(
        case,
        engine=engine,
        por=por,
        dedup=dedup,
        symmetry=symmetry,
        fingerprint_mode=fingerprint_mode,
        choice_limit=choice_limit,
        shard_roots=shard_roots,
        exchange=exchange,
    )
    return shallow, shard_roots


def explore_shard(
    case_dict: Dict[str, Any],
    prefix: Sequence[int],
    engine: str = "indexed",
    por: bool = True,
    dedup: bool = True,
    symmetry: Any = None,
    fingerprint_mode: str = "incremental",
    store_path: Optional[str] = None,
    scope: Optional[str] = None,
    exchange_batch: int = 256,
) -> Dict[str, Any]:
    """One campaign cell: exhaust one shard subtree, return its summary.

    ``store_path``/``scope`` (both or neither) join the shard to the
    shared visited set: states other shards published are dedup hits
    here, and this shard's new states are published back.
    """
    from repro.sim.perf import PerfCounters
    from repro.store.exchange import open_exchange

    # The exchange shares the walk's counter bag so its store read
    # round-trips surface as ``exchange_pulls`` in the cell's summary.
    counters = PerfCounters()
    exchange = open_exchange(
        store_path, scope, batch=exchange_batch, counters=counters
    )
    try:
        result = explore_case(
            case_from_dict(case_dict),
            engine=engine,
            por=por,
            dedup=dedup,
            counters=counters,
            symmetry=symmetry,
            fingerprint_mode=fingerprint_mode,
            initial_stack=[tuple(prefix)],
            exchange=exchange,
        )
        if exchange is not None:
            # Deferred publication (see repro.store.exchange): only a
            # walk that ran to completion may claim coverage.  A cell
            # that dies mid-walk publishes nothing, so its retry (or a
            # sibling shard) never dedup-halts on unexhausted states.
            exchange.publish_pending()
    finally:
        if exchange is not None:
            exchange.store.close()
    return result_to_dict(result)


def merge_summaries(
    base: Dict[str, Any], shard_summaries: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """Fold shard summaries into the splitter's summary dict.

    ``states``/``dedup_hits`` are per-visited-set figures, so the sums
    can double-count states reached in several shards — documented
    cost of the independent visited sets, never a soundness issue.
    """
    merged = dict(base)
    merged["stats"] = dict(base["stats"])
    counters = PerfCounters()
    counters.merge(base.get("counters", {}))
    vectors = {tuple(tuple(entry) for entry in v) for v in base["decision_vectors"]}
    violations = list(base["violations"])
    incidents = list(base.get("incidents", []))
    complete = base["complete"]
    for summary in shard_summaries:
        for key, value in summary["stats"].items():
            merged["stats"][key] = merged["stats"].get(key, 0) + value
        counters.merge(summary.get("counters", {}))
        vectors.update(
            tuple(tuple(entry) for entry in v)
            for v in summary["decision_vectors"]
        )
        violations.extend(summary["violations"])
        incidents.extend(summary.get("incidents", []))
        complete = complete and summary["complete"]
    counters.explore_shards += len(shard_summaries)
    merged["stats"]["shards"] = counters.explore_shards
    merged["stats"]["violations"] = len(violations)
    merged["stats"]["decision_vectors"] = len(vectors)
    merged["counters"] = counters.as_dict()
    merged["decision_vectors"] = sorted([list(e) for e in v] for v in vectors)
    merged["violations"] = violations
    merged["incidents"] = incidents
    merged["complete"] = complete
    merged["shards"] = len(shard_summaries)
    return merged


def _result_from_summary(case: ExploreCase, summary: Dict[str, Any]) -> ExploreResult:
    """Rehydrate a merged summary into an ExploreResult for API users."""
    counters = PerfCounters()
    counters.merge(summary.get("counters", {}))
    result = ExploreResult(
        case=case,
        engine=summary["engine"],
        por=summary["por"],
        dedup=summary["dedup"],
        runs=summary["stats"]["runs"],
        states=summary["stats"]["states"],
        dedup_hits=summary["stats"]["dedup_hits"],
        por_pruned=summary["stats"]["por_pruned"],
        complete=summary["complete"],
        counters=counters,
        symmetry=summary.get("symmetry", False),
        fingerprint_mode=summary.get("fingerprint_mode", "incremental"),
    )
    result.incidents = list(summary.get("incidents", []))
    result.decision_vectors = {
        tuple(tuple(entry) for entry in vector)
        for vector in summary["decision_vectors"]
    }
    for raw in summary["violations"]:
        result.violations.append(
            Violation(
                case=case,
                engine=summary["engine"],
                choices=tuple(raw["choices"]),
                violated=tuple(raw["violated"]),
                metrics={},
                decisions=tuple(tuple(d) for d in raw["decisions"]),
                final_time=raw["final_time"],
                por=summary["por"],
            )
        )
    return result


def explore_case_sharded(
    case: ExploreCase,
    engine: str = "indexed",
    por: bool = True,
    dedup: bool = True,
    shard_depth: int = 6,
    workers: Optional[int] = None,
    cache: Any = False,
    symmetry: Any = None,
    fingerprint_mode: str = "incremental",
    store: Any = None,
    exchange_batch: int = 256,
) -> ExploreResult:
    """Exhaust one case with its subtrees fanned out as campaign cells.

    ``shard_depth`` is the choice-frontier cutoff (counted in recorded
    choices, ≈ two per tick).  Equivalent to :func:`explore_case` in
    decision vectors, violations and completeness; ``runs``/``states``
    may exceed the serial walk's by the cross-shard redundancy the
    module doc describes.

    ``store`` (a :class:`~repro.store.db.ResultStore`, a store
    directory, or a ``.sqlite`` path) turns on the shared visited set:
    splitter and shards exchange fingerprints through the store, and
    with ``workers=1`` the merged ``states`` never exceeds the
    single-process walk's.  The exchange scope is salted with a fresh
    per-invocation token and its rows are cleared once the search
    merges — the shared set coordinates shards *within* one search; a
    later independent search must not dedup against a finished one
    (it would skip subtrees whose results live in the earlier run's
    report, not its own).
    """
    store_path: Optional[str] = None
    scope: Optional[str] = None
    splitter_exchange = None
    opened = None
    owned = False
    if store is not None:
        from repro.store.db import ResultStore
        from repro.store.exchange import FingerprintExchange, exchange_scope

        owned = not isinstance(store, ResultStore)
        opened = ResultStore(store) if owned else store
        store_path = str(opened.path)
        scope = "{}:{}".format(
            exchange_scope(
                case_to_dict(case), engine, por, dedup, symmetry,
                fingerprint_mode,
            ),
            os.urandom(8).hex(),
        )
        splitter_exchange = FingerprintExchange(
            opened, scope, batch=exchange_batch
        )
    try:
        shallow, shard_roots = split_case(
            case,
            engine=engine,
            por=por,
            dedup=dedup,
            choice_limit=shard_depth,
            symmetry=symmetry,
            fingerprint_mode=fingerprint_mode,
            exchange=splitter_exchange,
        )
        if splitter_exchange is not None:
            # The splitter's walk is complete (its deferred subtrees are
            # exactly the shard roots dispatched below), so its states
            # may claim coverage now — before any shard seeds its
            # visited set.
            splitter_exchange.publish_pending()
            splitter_exchange.store.flush()
        base = result_to_dict(shallow)
        if not shard_roots:
            merged = merge_summaries(base, [])
            return _result_from_summary(case, merged)
        extra: Dict[str, Any] = {}
        if store_path is not None:
            # Only present when a store is in play, so cache fingerprints
            # of store-less sharded runs are unchanged from earlier
            # releases.
            extra = {
                "store_path": store_path,
                "scope": scope,
                "exchange_batch": exchange_batch,
            }
        jobs = [
            fn_spec(
                call(
                    explore_shard,
                    case_to_dict(case),
                    list(root),
                    engine=engine,
                    por=por,
                    dedup=dedup,
                    symmetry=symmetry,
                    fingerprint_mode=fingerprint_mode,
                    **extra,
                ),
                target=case.target,
                shard=index,
                engine=engine,
            )
            for index, root in enumerate(shard_roots)
        ]
        campaign = Campaign(jobs, name="explore-shards")
        outcome = campaign.run(workers=workers, cache=cache)
        # Partial-merge semantics: a shard cell that failed even after
        # the executor's retries must not discard its siblings' finished
        # work.  Completed summaries merge as usual; each failure
        # becomes a structured incident and forces complete=False — the
        # honest verdict, since that subtree was not exhausted.
        done = [s.value for s in outcome.summaries if not s.failed]
        merged = merge_summaries(base, done)
        incidents = list(merged.get("incidents", []))
        incidents.extend(outcome.incidents)
        for failure in outcome.failures:
            incidents.append(
                {
                    "kind": "shard-failed",
                    "shard": failure.tags.get("shard"),
                    "failure_kind": failure.kind,
                    "error_type": failure.error_type,
                    "message": failure.message,
                    "attempts": failure.attempts,
                }
            )
        merged["incidents"] = incidents
        if not outcome.ok:
            merged["complete"] = False
        return _result_from_summary(case, merged)
    finally:
        if opened is not None:
            opened.release_scope(scope)
            if owned:
                opened.close()
