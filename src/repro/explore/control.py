"""The choice controller: turning the sim's nondeterminism into a log.

The simulator exposes its per-tick nondeterminism at three points — the
scheduler's process pick, the network's delivery pick, and (for roots
whose assignment is a history *script*) the detector's stage advance.
Two further families are enumerated once per exploration root rather
than per step (detector assignments/scripts and crash schedules; see
:mod:`repro.explore.assignments` and :mod:`repro.explore.frontier`).

:class:`ChoiceController` replaces both per-tick picks with a *choice
log* replay: a prefix of option indices is consumed verbatim, and every
decision beyond the prefix takes option 0 while recording how many
options existed.  The DFS engine re-runs the system once per explored
path and pushes the untaken siblings of every recorded decision — the
standard stateless-model-checking loop, which is the only sound option
here because component state includes live generator frames that cannot
be snapshotted.

The controller also implements the partial-order reduction's *enabled
set* filtering (see ``docs/EXPLORER.md`` for the soundness argument):
when the previous step was taken by process ``q``, a process ``p < q``
may only be scheduled to deliver a message *sent during* that step —
any other step of ``p`` commutes with ``q``'s, and the swapped schedule
(the class representative with the lexicographically smaller pid
sequence) is explored separately.

:class:`ExploringScheduler` and :class:`ExploringDelivery` are thin
adapters plugging the controller into the unmodified
:class:`~repro.sim.system.System` run loop via the existing
``Scheduler`` / ``DeliveryPolicy`` extension points — no engine fork.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

from repro.sim.network import DeliveryPolicy, Message
from repro.sim.scheduler import Scheduler


@dataclass(frozen=True, slots=True)
class ChoicePoint:
    """One recorded decision: what kind, what was taken, out of how many."""

    kind: str  # "sched", "deliv" or "detector"
    time: int
    chosen: int
    options: int


class DetectorScript:
    """Per-process detector script cursors — the third choice dimension.

    One instance per controlled run (installed by
    :func:`~repro.explore.cases.build_system` when the case's assignment
    contains scripts).  ``values[p]`` holds process ``p``'s decoded
    stage values, ``gated[p][j]`` whether stage ``j`` claims a failure
    (see :func:`~repro.explore.assignments.stage_requires_crash`), and
    ``cursors[p]`` the stage ``p`` currently outputs.  The detector
    providers read ``value(p)`` live, so a cursor advance rebinds every
    subsequent read of that process.

    Advances happen through :meth:`ChoiceController.pick_pid`: right
    after the scheduler picks the acting process — and before its step,
    where all its detector reads occur — the controller asks
    :meth:`targets` for the admissible cursor positions at this tick
    and, when there is more than one, records a ``"detector"`` choice.
    Staying put is always option 0, so the default path is the
    constant-prefix behaviour and switches are explored as siblings.
    Skipping stages is allowed (a skipped stage's value window has
    length zero, so its admissibility side condition is moot); a
    crash-gated stage only becomes a target from the first crash tick
    onwards.  Crashed processes never advance (they are never picked),
    which is sound: a crashed process has no further detector reads.
    """

    __slots__ = ("values", "gated", "first_crash", "cursors")

    def __init__(
        self,
        values: Sequence[Tuple[Any, ...]],
        gated: Sequence[Tuple[bool, ...]],
        first_crash: Optional[int],
    ):
        self.values = tuple(values)
        self.gated = tuple(gated)
        self.first_crash = first_crash
        self.cursors: List[int] = [0] * len(self.values)

    def value(self, pid: int) -> Any:
        return self.values[pid][self.cursors[pid]]

    def targets(self, pid: int, now: int) -> List[int]:
        """Admissible cursor positions for ``pid`` at tick ``now``,
        current position first."""
        cursor = self.cursors[pid]
        stages = self.values[pid]
        gates = self.gated[pid]
        crashed = self.first_crash is not None and now >= self.first_crash
        return [cursor] + [
            j
            for j in range(cursor + 1, len(stages))
            if crashed or not gates[j]
        ]

    def advance(self, pid: int, cursor: int) -> None:
        self.cursors[pid] = cursor


class ChoiceController:
    """Replays a choice prefix, then takes defaults while recording.

    One controller drives one run.  ``prefix`` is the path to replay;
    decisions past its end take index 0.  After the run, :attr:`log`
    holds every decision made with its option count — the engine reads
    it to push sibling prefixes.

    ``tick_hook`` (installed by the engine) runs at the start of every
    scheduler pick — i.e. right after the previous tick's atomic step
    completed — and is where state fingerprinting and dedup live.
    Returning False halts the run: the scheduler then returns None and
    the run loop winds down cleanly as a ``scheduler-halt``.
    """

    def __init__(self, prefix: Sequence[int] = ()):
        self.prefix: Tuple[int, ...] = tuple(prefix)
        self.log: List[ChoicePoint] = []
        self.tick_hook: Optional[Callable[[int], bool]] = None
        #: The actor of the tick currently executing (engine reads it
        #: from the next tick's hook to build the POR context).
        self.last_actor: Optional[int] = None
        # POR context for the upcoming tick, installed via
        # :meth:`set_step_context` by the engine's tick hook.
        self.prev_pid: Optional[int] = None
        self.fresh: List[Message] = []
        self.fresh_ids: Set[int] = set()
        self.boundary: bool = False  # crash event at this tick
        self.por_enabled: bool = True
        self.por_pruned: int = 0
        self._deliver_fresh_only: bool = False
        #: Script cursors when the case's assignment is scripted
        #: (installed by ``build_system``); None for constant roots.
        self.scripts: Optional[DetectorScript] = None

    @property
    def replaying(self) -> bool:
        """Whether the next decision still comes from the prefix."""
        return len(self.log) < len(self.prefix)

    # -- the core decision primitive -----------------------------------
    def choose(self, kind: str, time: int, options: int) -> int:
        """Record one decision with ``options`` alternatives; return the
        option index this run takes."""
        if options < 1:
            raise ValueError(f"{kind} choice at t={time} with no options")
        position = len(self.log)
        if position < len(self.prefix):
            chosen = self.prefix[position]
            if not 0 <= chosen < options:
                raise ValueError(
                    f"replay mismatch: prefix[{position}]={chosen} but "
                    f"{kind} choice at t={time} has {options} options"
                )
        else:
            chosen = 0
        self.log.append(
            ChoicePoint(kind=kind, time=time, chosen=chosen, options=options)
        )
        return chosen

    # -- scheduler-side ------------------------------------------------
    def pick_pid(self, alive: Sequence[int], now: int) -> int:
        """The scheduler decision: which alive process steps at ``now``.

        With the POR on, processes with a pid below the previous step's
        actor are only eligible when they can consume a message that
        step just sent (a *dependent* continuation); their independent
        steps are pruned because the swapped interleaving reaches the
        same state and is explored under an earlier sibling.  Crash
        boundaries (a crash event at this tick) disable the filter —
        the alive set changed between the two steps, so the swap
        argument does not apply.  If the filter would empty the enabled
        set it is skipped entirely (exploring a redundant interleaving
        is sound; halting the run here would not be judged).

        The detector dimension preserves the swap argument: a process's
        advance menu depends only on its own cursor, the tick, and the
        crash schedule, and it only ever *changes* between adjacent
        ticks at the first crash tick (where a gated stage becomes
        admissible) — which is a crash boundary, exactly where the
        filter is already disabled.  Away from boundaries the swapped
        interleaving offers both processes identical detector menus, so
        every advance combination pruned here is reachable under the
        representative schedule; the soundness matrix verifies this on
        scripted roots.
        """
        restricted = False
        allowed = list(alive)
        prev = self.prev_pid
        if self.por_enabled and prev is not None and not self.boundary:
            fresh_dests = {m.dest for m in self.fresh}
            filtered = [
                pid for pid in alive if pid >= prev or pid in fresh_dests
            ]
            if filtered:
                restricted = True
                self.por_pruned += len(allowed) - len(filtered)
                allowed = filtered
        index = self.choose("sched", now, len(allowed))
        pid = allowed[index]
        self._deliver_fresh_only = (
            restricted and prev is not None and pid < prev
        )
        scripts = self.scripts
        if scripts is not None:
            # The detector decision for the acting process: how far its
            # script cursor advances before the step (where all of its
            # detector reads happen).  Only recorded when there is a
            # real alternative — staying put is always admissible and
            # always option 0, so constant-prefix behaviour remains the
            # default path and the menu is deterministic in
            # (cursor, now, crash schedule) for replay.
            targets = scripts.targets(pid, now)
            if len(targets) > 1:
                chosen = self.choose("detector", now, len(targets))
                scripts.advance(pid, targets[chosen])
        self.last_actor = pid
        return pid

    # -- delivery-side -------------------------------------------------
    def pick_message(
        self, ready: List[Message], now: int
    ) -> Optional[Message]:
        """The delivery decision: which ready message (or λ = None).

        Options are the ready list in ascending ``msg_id`` order — the
        order both network engines guarantee — with λ appended last, so
        the default (index 0) is the oldest message and progress is the
        first path explored.  Under the POR's fresh-only restriction
        the λ option and every stale message are pruned (both commute
        with the previous step).
        """
        if self._deliver_fresh_only:
            options = [m for m in ready if m.msg_id in self.fresh_ids]
            if options:
                self.por_pruned += len(ready) + 1 - len(options)
                index = self.choose("deliv", now, len(options))
                return options[index]
            # The pid was admitted by the scheduler filter, so a fresh
            # message is buffered for it — but messages sent during the
            # previous tick only become ready one tick later, and here
            # the actor followed the sender after a gap.  Fall back to
            # the unrestricted menu (sound, merely redundant).
        index = self.choose("deliv", now, len(ready) + 1)
        if index == len(ready):
            return None  # λ-step chosen despite ready messages
        return ready[index]

    # -- POR context handoff (engine tick hook calls this) -------------
    def set_step_context(
        self,
        prev_pid: Optional[int],
        fresh: List[Message],
        boundary: bool,
    ) -> None:
        """Install the previous step's POR context for the next tick.

        The caller hands over ownership of ``fresh`` (both call sites
        build a fresh list per tick), so no defensive copy is taken on
        this per-tick path.
        """
        self.prev_pid = prev_pid
        self.fresh = fresh
        self.fresh_ids = {m.msg_id for m in fresh}
        self.boundary = boundary


class ExploringScheduler(Scheduler):
    """Scheduler adapter: delegates every pick to the controller.

    Declared unfair — the explorer enumerates adversarial schedules, so
    nothing downstream may assume fairness (and the quiescence
    time-leap, gated on ``fair``, stays off).
    """

    fair = False

    def __init__(self, controller: ChoiceController):
        self.controller = controller

    def pick(
        self, alive: Sequence[int], now: int, rng: random.Random
    ) -> Optional[int]:
        controller = self.controller
        hook = controller.tick_hook
        if hook is not None and not hook(now):
            return None  # dedup halt: the run loop winds down cleanly
        return controller.pick_pid(alive, now)


class ExploringDelivery(DeliveryPolicy):
    """Delivery-policy adapter: delegates every pick to the controller."""

    fair = False
    oldest_first_selection = False

    def __init__(self, controller: ChoiceController):
        self.controller = controller

    def choose(
        self, ready: List[Message], now: int, rng: random.Random
    ) -> Optional[Message]:
        return self.controller.pick_message(ready, now)
