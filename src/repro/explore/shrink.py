"""Shrinking explorer violations down to readable witnesses.

A violation straight out of the DFS carries whatever the search
happened to walk through first: a choice at every tick, the full case
depth, any crash schedule the frontier pinned.  This module reuses the
chaos shrinker's greedy fixpoint loop
(:func:`repro.chaos.shrink.greedy_shrink`) over a different state shape
— ``(case, choices)`` — with edits tuned to choice traces:

* strip trailing zeros (free: beyond the recorded prefix the controller
  takes index 0 anyway, so the run is identical);
* lower the step budget toward the violation's actual final time;
* drop crashes, all at once and then one victim at a time;
* zero a choice position (collapse a subtree back to its default path);
* decrement a choice position (smaller menu index, same tree level).

Acceptance re-executes the candidate (controlled runs are deterministic
in ``(case, choices, engine)``) and keeps it iff the required clauses
still break.  A candidate whose choices no longer fit its tree — a
shorter depth can remove choice points — simply fails acceptance via
the controller's replay-mismatch error.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Sequence, Tuple

from repro.chaos.shrink import greedy_shrink
from repro.explore.cases import ExploreCase
from repro.explore.engine import Violation

State = Tuple[ExploreCase, Tuple[int, ...]]


def _still_violates(
    state: State, required: Sequence[str], engine: str, por: bool
) -> bool:
    from repro.explore.artifact import judge

    case, choices = state
    try:
        verdict = judge(case, choices, engine, por=por)
    except ValueError:
        return False  # replay mismatch: edit invalidated the trace
    return set(required) <= set(verdict["violated"])


def _candidates(state: State) -> Iterator[Tuple[str, State]]:
    case, choices = state

    stripped = len(choices)
    while stripped and choices[stripped - 1] == 0:
        stripped -= 1
    if stripped < len(choices):
        yield "strip-trailing-zeros", (case, choices[:stripped])

    if case.depth > 1:
        yield "halve-depth", (
            case.with_(depth=max(1, case.depth // 2)),
            choices,
        )
        yield "dec-depth", (case.with_(depth=case.depth - 1), choices)

    if case.crashes:
        yield "drop-all-crashes", (case.with_(crashes=()), choices)
        for i in range(len(case.crashes)):
            reduced = case.crashes[:i] + case.crashes[i + 1 :]
            yield f"drop-crash-{case.crashes[i][0]}", (
                case.with_(crashes=reduced),
                choices,
            )

    for i in range(len(choices)):
        if choices[i] != 0:
            yield f"zero-{i}", (case, choices[:i] + (0,) + choices[i + 1 :])
    for i in range(len(choices)):
        if choices[i] > 1:
            yield f"dec-{i}", (
                case,
                choices[:i] + (choices[i] - 1,) + choices[i + 1 :],
            )


def shrink_violation(
    violation: Violation,
    budget: int = 64,
) -> Tuple[ExploreCase, Tuple[int, ...], Dict[str, Any]]:
    """Greedy fixpoint shrink preserving the violation's clauses.

    Returns the shrunk case, the shrunk choice trace, and the shared
    shrinker's stats dict.  The input is assumed violating (the DFS just
    judged it) and is never re-checked.
    """
    (case, choices), stats = greedy_shrink(
        (violation.case, tuple(violation.choices)),
        _candidates,
        lambda state: _still_violates(
            state, violation.violated, violation.engine, violation.por
        ),
        budget,
    )
    return case, choices, stats
