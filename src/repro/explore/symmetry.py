"""Process-id symmetry: the explorer's fourth reduction.

Our targets are (almost) pid-equivariant: relabeling the processes of
an execution by a permutation ``π`` yields another execution of the
same algorithm, provided the *inputs* — the crash schedule, the
detector assignment, and any seed-derived per-pid data — are relabeled
along with it.  Two states that differ only by such a relabeling have
π-corresponding futures, so exploring one subtree covers the
observable outcomes of both (decision vectors modulo π, violation
verdicts exactly).  :class:`~repro.explore.state.FingerprintEngine`
exploits this by hashing the lexicographic minimum of the state's
canonical bytes over the case's *admissible group* — computed here.

Admissibility has three layers, all conservative:

* **Case level** (:func:`admissible_perms`): ``π`` must map the crash
  schedule onto itself (same victims at the same times, as a set),
  must leave the detector assignment semantically unchanged
  (:func:`relabel_assignment` — assignment encodings are fully
  pid-tagged, so semantic relabeling is mechanical; for scripted
  roots this is the *commuting* condition: ``π`` must map the switch
  script vector onto itself stage by stage, so the relabeled run
  advances through the same stage values under the same crash-gate
  thresholds — which are ``π``-invariant because ``π`` fixes the
  crash schedule), and must fix
  every pid the target builder treats specially for this seed
  (:func:`build_fixed_pids` — e.g. odd NBAC seeds give pid 0 the lone
  No vote).
* **State level** (enforced by the fingerprint engine): ``π`` must fix
  every *ambiguous* int — any ``int`` in ``[0, n)`` encountered at a
  position not structurally known to be a pid (component attributes,
  tasklet locals, payload internals, decision values).  Positions that
  *are* structurally pids (host slots, buffer destinations/senders,
  decision and operation pids, the POR context) are relabeled; for
  everything else the engine cannot distinguish a pid reference from a
  round number, so it only accepts permutations that make the question
  moot.  Missed merges, never wrong ones.
* **Target level** (:data:`SYMMETRY_SAFE_TARGETS`): the int guard
  cannot see pids baked into *strings* (e.g. the consensus proposals
  ``"v0"``, ``"v1"``), so the reduction is only available for targets
  whose per-pid inputs are pid-free.  NBAC's votes are ``YES``/``NO``
  strings, commit verdicts are ``COMMIT``/``ABORT`` — safe, and
  exactly the n=3 frontier the ROADMAP wants tractable.  The soundness
  suite additionally verifies the on/off decision-vector sets agree on
  every gated target (closure under the group included).

The same group also collapses whole exploration roots: two roots whose
crash schedules and assignments are π-images of each other explore
π-corresponding trees, so the frontier keeps one representative
(:func:`collapse_symmetric_roots`) when the reduction is enabled.
"""

from __future__ import annotations

from itertools import permutations
from typing import Any, FrozenSet, Iterable, List, Sequence, Tuple

#: Targets whose seed-derived inputs and decision values are free of
#: pid-derived data (see module doc).  Proposals are seed-derived
#: pid-free strings ("v"/"w", odd seeds pinning pid 0 — mirroring the
#: NBAC vote convention), so the whole consensus family qualifies.
#: Still excluded: ct (the rotating coordinator — round mod n — is not
#: pid-equivariant) and register (workload writes are tagged
#: ``(pid, seq)``, baking pids into register values).
SYMMETRY_SAFE_TARGETS = frozenset(
    {
        "paxos",
        "qc",
        "nbac",
        "submajority",
        "eagerquit",
        "hastycommit",
        "redcommit",
    }
)

Perm = Tuple[int, ...]


def identity(n: int) -> Perm:
    return tuple(range(n))


def build_fixed_pids(target: str, n: int, seed: int) -> FrozenSet[int]:
    """Pids the target builder singles out for this seed.

    The whole target table derives its per-pid inputs from the seed
    with one convention: even seeds are uniform (all-Yes votes, equal
    proposals — fully symmetric), odd seeds give pid 0 the lone
    distinct input (the single No vote, the distinct proposal) — so
    odd-seed permutations must fix 0.  Register workloads ignore the
    convention (their per-pid values are pid-tagged regardless, which
    is why the target sits outside :data:`SYMMETRY_SAFE_TARGETS`).
    """
    if target != "register" and seed % 2 == 1:
        return frozenset({0})
    return frozenset()


def relabel_encoded(enc: Tuple[Any, ...], perm: Perm) -> Tuple[Any, ...]:
    """One encoded detector constant under ``perm``, canonically sorted."""
    kind = enc[0]
    if kind == "os":  # (Ω, Σ): (leader, quorum)
        return ("os", perm[enc[1]], tuple(sorted(perm[q] for q in enc[2])))
    if kind in ("susp", "sigma"):
        return (kind, tuple(sorted(perm[q] for q in enc[1])))
    if kind == "pf":  # (Ψ, FS) product
        return ("pf", relabel_encoded(enc[1], perm), enc[2])
    if kind == "script":  # history script: relabel stage by stage
        return ("script",) + tuple(
            relabel_encoded(stage, perm) for stage in enc[1:]
        )
    if kind in ("bot", "fsv"):  # ⊥ / FS-branch values carry no pids
        return enc
    raise ValueError(f"unknown assignment encoding {enc!r}")


def relabel_assignment(
    assignment: Sequence[Tuple[Any, ...]], perm: Perm
) -> Tuple[Tuple[Any, ...], ...]:
    """The assignment of the π-relabeled system: process ``π(p)`` reads
    the relabeled constant process ``p`` read."""
    out: List[Any] = [None] * len(assignment)
    for pid, enc in enumerate(assignment):
        out[perm[pid]] = relabel_encoded(enc, perm)
    return tuple(out)


def relabel_crashes(
    crashes: Iterable[Tuple[int, int]], perm: Perm
) -> Tuple[Tuple[int, int], ...]:
    return tuple(sorted((perm[pid], t) for pid, t in crashes))


def admissible_perms(case: Any) -> Tuple[Perm, ...]:
    """The case's admissible group, identity first.

    Closed under composition and inverse: each condition is "π fixes
    this structure", and stabilizers are subgroups.
    """
    n = case.n
    ident = identity(n)
    fixed = build_fixed_pids(case.target, n, case.seed)
    assignment = relabel_assignment(case.resolved_assignment, ident)
    crashes = relabel_crashes(case.crashes, ident)
    group: List[Perm] = []
    for perm in permutations(range(n)):  # identity enumerates first
        if any(perm[p] != p for p in fixed):
            continue
        if relabel_crashes(case.crashes, perm) != crashes:
            continue
        if relabel_assignment(case.resolved_assignment, perm) != assignment:
            continue
        group.append(perm)
    return tuple(group)


def resolve_symmetry(case: Any, symmetry: Any) -> bool:
    """Normalise the ``symmetry`` knob of :func:`explore_case`.

    ``False``/``None`` — off.  ``"auto"`` — on iff the target is in
    :data:`SYMMETRY_SAFE_TARGETS`.  ``True`` — on, and an unsafe target
    is a hard error (silently degrading a requested reduction would
    mask a misconfiguration).
    """
    if symmetry in (False, None):
        return False
    if symmetry == "auto":
        return case.target in SYMMETRY_SAFE_TARGETS
    if symmetry is True:
        if case.target not in SYMMETRY_SAFE_TARGETS:
            raise ValueError(
                f"target {case.target!r} carries pid-derived values; "
                f"symmetry reduction is only sound for "
                f"{sorted(SYMMETRY_SAFE_TARGETS)}"
            )
        return True
    raise ValueError(f"symmetry must be True/False/None/'auto', got {symmetry!r}")


def symmetric_root_key(case: Any) -> Tuple[Any, ...]:
    """A canonical key equal for π-related roots of one target family.

    Minimises (relabeled crashes, relabeled assignment) over every
    permutation fixing the seed-pinned pids — the case-level conditions
    without the "fixes this very root" restriction, which is exactly
    what makes two *different* roots compare equal.
    """
    n = case.n
    fixed = build_fixed_pids(case.target, n, case.seed)
    best = None
    for perm in permutations(range(n)):
        if any(perm[p] != p for p in fixed):
            continue
        key = (
            relabel_crashes(case.crashes, perm),
            relabel_assignment(case.resolved_assignment, perm),
        )
        if best is None or key < best:
            best = key
    return (case.target, case.n, case.depth, case.seed) + best


def collapse_symmetric_roots(roots: Sequence[Any]) -> List[Any]:
    """One representative per symmetry class of roots, original order.

    Roots of targets outside :data:`SYMMETRY_SAFE_TARGETS` pass through
    untouched.  Violation verdicts are preserved exactly (a root is
    clean iff its π-images are); decision vectors of dropped roots are
    the π-images of the representative's.
    """
    seen = set()
    out = []
    for root in roots:
        if root.target not in SYMMETRY_SAFE_TARGETS:
            out.append(root)
            continue
        key = symmetric_root_key(root)
        if key in seen:
            continue
        seen.add(key)
        out.append(root)
    return out
