"""Explore cases: one pinned subtree root, and its controlled runs.

An :class:`ExploreCase` is to the explorer what
:class:`~repro.chaos.targets.FuzzCase` is to the fuzzer: the frozen,
JSON-able coordinate of one unit of work.  It pins the target
algorithm, the system size, the step budget (``depth`` doubles as the
sim horizon — one tick is one step), the crash schedule, and one
constant detector assignment (:mod:`repro.explore.assignments`).  What
it deliberately does *not* pin is the schedule: the whole point is that
:func:`run_controlled` executes one *chosen path* of the case's tree,
as directed by a :class:`~repro.explore.control.ChoiceController`.

The algorithm stacks come straight from the chaos target table
(:data:`repro.chaos.targets.TARGETS`) so the explorer and the fuzzer
judge the very same code with the very same property hooks.  Only two
deviations:

* the oracle detector is discarded — every process's
  ``ctx._detector_provider`` is rebound to the case's constant value
  (or, for script assignments, to a live read of the run's
  :class:`~repro.explore.control.DetectorScript` cursor, which the
  controller advances through enumerable ``"detector"`` choices);
* the register workload is swapped for a one-op-per-process variant
  (the default 3-op workload pushes exhaustive depth out of reach; one
  concurrent read/write pair per process is already the smallest
  history with a nontrivial linearization order).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaos.knobs import ChaosKnobs
from repro.chaos.targets import TARGETS
from repro.core.failure_pattern import FailurePattern
from repro.explore.assignments import (
    decode_value,
    default_assignment,
    is_script,
    script_stages,
    stage_requires_crash,
)
from repro.explore.control import (
    ChoiceController,
    DetectorScript,
    ExploringDelivery,
    ExploringScheduler,
)
from repro.registers.workload import RegisterWorkload
from repro.runner import call
from repro.sim.network import ConstantDelay, resolve_network_engine
from repro.sim.system import System, network_implementation

#: The buffer engines the explorer can drive; the controlled runs are
#: bit-identical across them (all hand ``choose`` the ready list in
#: ascending msg_id order), which a tier-1 property test pins.
#: ``native`` resolves to the compiled core when built, silently
#: degrading to ``indexed`` otherwise (still digest-identical).
ENGINES = ("indexed", "reference", "native")


def explore_register_workload_factory(seed: int):
    """The shrunk register workload used under exploration (see module
    doc); module-level so specs and artifacts can reference it."""
    return lambda pid: RegisterWorkload(
        registers=("x",), ops_per_process=1, think_steps=1, seed=seed
    )


@dataclass(frozen=True)
class ExploreCase:
    """One exploration root, fully pinned and JSON-able.

    ``depth`` is the step budget: controlled runs use it as the sim
    horizon, so every explored path has at most ``depth`` steps.
    ``assignment`` is a per-pid tuple of encoded detector constants
    (empty = the target family's default).  ``seed`` only reaches the
    target builder (it selects e.g. the NBAC vote vector) — no RNG
    influences a controlled run's choices.
    """

    target: str
    n: int
    depth: int
    seed: int = 0
    crashes: Tuple[Tuple[int, int], ...] = ()
    assignment: Tuple[Tuple[Any, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise ValueError(
                f"unknown target {self.target!r}; have {sorted(TARGETS)}"
            )
        if self.depth < 1:
            raise ValueError("depth must be >= 1")

    def with_(self, **changes: Any) -> "ExploreCase":
        return replace(self, **changes)

    @property
    def pattern(self) -> FailurePattern:
        return FailurePattern(self.n, dict(self.crashes))

    @property
    def resolved_assignment(self) -> Tuple[Tuple[Any, ...], ...]:
        return self.assignment or default_assignment(self.target, self.n)

    def describe(self) -> str:
        return (
            f"{self.target}(n={self.n}, depth={self.depth}, "
            f"seed={self.seed}, crashes={dict(self.crashes)})"
        )


def _tuplify(value: Any) -> Any:
    """JSON round-trips lists; cases are frozen around nested tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(_tuplify(v) for v in value)
    return value


def case_to_dict(case: ExploreCase) -> Dict[str, Any]:
    return {
        "target": case.target,
        "n": case.n,
        "depth": case.depth,
        "seed": case.seed,
        "crashes": [list(c) for c in case.crashes],
        "assignment": [list(_listify(enc)) for enc in case.assignment],
    }


def _listify(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return [_listify(v) for v in value]
    return value


def case_from_dict(data: Dict[str, Any]) -> ExploreCase:
    return ExploreCase(
        target=data["target"],
        n=int(data["n"]),
        depth=int(data["depth"]),
        seed=int(data.get("seed", 0)),
        crashes=_tuplify(data.get("crashes", ())),
        assignment=_tuplify(data.get("assignment", ())),
    )


@dataclass
class CaseParts:
    """The resolved pieces of a case's algorithm stack."""

    components: List[Tuple[str, Callable[[int], Any]]]
    stop: Callable[[System], bool]
    summarize: Callable[[System, Any], Dict[str, Any]]
    safety_clauses: Tuple[str, ...]
    component_name: str = field(default="")


@lru_cache(maxsize=32)
def resolve_parts(case: ExploreCase) -> CaseParts:
    """Resolve the target's component stack and hooks for this case.

    Memoized: the resolved parts are deterministic in the (frozen,
    hashable) case and stateless across runs — ``explore_case`` already
    shares one ``CaseParts`` across thousands of replays, and the
    shrinker/judge replay paths call this once per replay, so the memo
    removes the per-replay target.build cost.
    """
    target = TARGETS[case.target]
    built = target.build(case.n, case.seed, case.depth, ChaosKnobs())
    components = []
    for name, spec in built["components"]:
        if case.target == "register" and name == "workload":
            spec = call(explore_register_workload_factory, case.seed)
        components.append((name, spec.resolve()))
    return CaseParts(
        components=components,
        stop=built["stop"].resolve(),
        summarize=built["summarize"].resolve(),
        safety_clauses=target.safety_clauses,
        component_name=components[0][0],
    )


def build_system(
    case: ExploreCase,
    controller: ChoiceController,
    parts: Optional[CaseParts] = None,
    engine: str = "indexed",
) -> System:
    """One fully-wired controlled system for this case.

    The system is the stock :class:`~repro.sim.system.System` — the
    controller plugs in through the scheduler/delivery extension points,
    the delay model is pinned to ``ConstantDelay(1)`` (delivery *order*
    is the controller's to choose, so variable delays would only
    duplicate schedules the delivery choice already covers), and the
    detector providers are rebound to the case's constants.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; have {ENGINES}")
    if parts is None:
        parts = resolve_parts(case)
    impl = resolve_network_engine(engine)
    with network_implementation(impl):
        system = System(
            n=case.n,
            seed=case.seed,
            horizon=case.depth,
            pattern=case.pattern,
            component_factories=parts.components,
            detector=None,
            scheduler=ExploringScheduler(controller),
            delay_model=ConstantDelay(1),
            delivery_policy=ExploringDelivery(controller),
            trace_mode="full",
        )
    assignment = case.resolved_assignment
    if any(is_script(enc) for enc in assignment):
        crash_times = [t for _, t in case.crashes]
        scripts = DetectorScript(
            values=[
                tuple(decode_value(stage) for stage in script_stages(enc))
                for enc in assignment
            ],
            gated=[
                tuple(stage_requires_crash(stage) for stage in script_stages(enc))
                for enc in assignment
            ],
            first_crash=min(crash_times) if crash_times else None,
        )
        controller.scripts = scripts
        for pid, host in enumerate(system.hosts):
            host.ctx._detector_provider = (
                lambda p=pid, s=scripts: s.value(p)
            )
        return system
    for host, enc in zip(system.hosts, assignment):
        value = decode_value(enc)
        host.ctx._detector_provider = lambda v=value: v
    return system


def run_controlled(
    case: ExploreCase,
    prefix: Tuple[int, ...] = (),
    engine: str = "indexed",
    parts: Optional[CaseParts] = None,
    tick_hook: Optional[Callable[[int], bool]] = None,
    por: bool = True,
) -> Tuple[System, ChoiceController]:
    """Execute one path of the case's choice tree.

    Replays ``prefix``, then takes default choices to the end of the
    step budget (or the target's stop condition).  Returns the finished
    system and the controller whose :attr:`log` describes the path
    actually taken.  Deterministic in ``(case, prefix, engine, por)`` —
    the replay-regression suite pins this.

    ``por`` must match the setting under which the prefix was recorded:
    a choice index names a position in the controller's *menu*, and the
    POR filter shapes the menu, so the step context (previous actor,
    freshly sent messages, crash boundary) is re-tracked here exactly as
    the exploration engine tracks it.  ``tick_hook`` chains after that
    bookkeeping.
    """
    if parts is None:
        parts = resolve_parts(case)
    controller = ChoiceController(prefix)
    controller.por_enabled = por
    system = build_system(case, controller, parts=parts, engine=engine)

    sent_this_tick = []
    for host in system.hosts:
        host.ctx.add_outgoing_hook(sent_this_tick.append)
    crash_times = {t for _, t in case.crashes}

    def context_hook(now: int) -> bool:
        fresh = list(sent_this_tick)
        sent_this_tick.clear()
        controller.set_step_context(
            controller.last_actor, fresh, now in crash_times
        )
        return True if tick_hook is None else tick_hook(now)

    controller.tick_hook = context_hook
    system.run(stop_when=parts.stop)
    return system, controller
