"""FS from NBAC (Theorem 8b, second half, after [5, 11]).

"Processes use the given NBAC algorithm repeatedly (forever), voting
Yes in each instance.  At each process, the output of FS is initially
green, and becomes permanently red if and when an instance of NBAC
returns Abort."

* **Accuracy** — with every process voting Yes in every instance, NBAC
  validity(b) says an Abort certifies that a failure occurred, so red
  is only ever output after a failure.
* **Completeness** — consider an instance started after some process
  crashed: the crashed process never votes in it, so by validity(a) it
  cannot Commit, and by Termination it decides — hence Aborts — at
  every correct process, turning every correct process permanently red.

Each process launches instance ``k + 1`` as soon as its instance ``k``
decided; instances are hosted by a
:class:`~repro.protocols.multi.MultiInstanceCore`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.detector import GREEN, RED
from repro.nbac.spec import ABORT, YES
from repro.protocols.base import ProtocolCore
from repro.protocols.multi import MultiInstanceCore
from repro.sim.tasklets import WaitSteps


class FSFromNBACCore(ProtocolCore):
    """Emulates FS by running NBAC instances forever.

    Parameters
    ----------
    nbac_factory:
        Builds one NBAC instance (called per instance key).
    pace:
        Local steps between the decision of one instance and the start
        of the next (keeps message volume bounded).
    max_instances:
        Safety valve for tests (0 = run forever).
    """

    INSTANCES_TAG = "insts"

    def __init__(
        self,
        nbac_factory: Callable[[str], ProtocolCore],
        pace: int = 4,
        max_instances: int = 0,
    ):
        super().__init__()
        self.nbac_factory = nbac_factory
        self.pace = pace
        self.max_instances = max_instances
        self._output = GREEN
        self.instances_run = 0

    def output(self) -> str:
        """The emulated FS value of this process's module."""
        return self._output

    def start(self) -> None:
        self.add_child(
            self.INSTANCES_TAG, MultiInstanceCore(self.nbac_factory)
        )
        self.spawn(self._run(), name=f"fs-from-nbac@{self.pid}")

    def on_message(self, sender: int, payload: Any) -> None:
        if not self.route_to_children(sender, payload):
            raise ValueError(f"unknown FS-from-NBAC message {payload!r}")

    def _run(self):
        multi: MultiInstanceCore = self.child(self.INSTANCES_TAG)  # type: ignore[assignment]
        k = 0
        while self.max_instances == 0 or k < self.max_instances:
            inst = multi.instance(k)
            inst.vote_value(YES)  # type: ignore[attr-defined]
            _, decision = yield inst.wait_decided()
            self.instances_run = k + 1
            if decision == ABORT:
                self._output = RED
                return
            k += 1
            yield WaitSteps(self.pace)
