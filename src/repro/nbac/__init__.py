"""Non-blocking atomic commit (Section 7).

* :mod:`repro.nbac.spec` — the NBAC problem vocabulary;
* :mod:`repro.nbac.from_qc` — Figure 4: NBAC from QC + FS (Thm 8a);
* :mod:`repro.nbac.to_qc` — Figure 5: QC from NBAC (Thm 8b);
* :mod:`repro.nbac.to_fs` — FS from NBAC (Thm 8b, after [5, 11]);
* :mod:`repro.nbac.psi_fs_nbac` — end-to-end NBAC from (Ψ, FS), the
  weakest-detector composition of Corollary 10.
"""

from repro.nbac.spec import YES, NO, COMMIT, ABORT
from repro.nbac.from_qc import NBACFromQCCore
from repro.nbac.to_qc import QCFromNBACCore
from repro.nbac.to_fs import FSFromNBACCore
from repro.nbac.psi_fs_nbac import psi_fs_nbac_core, psi_fs_oracle

__all__ = [
    "YES",
    "NO",
    "COMMIT",
    "ABORT",
    "NBACFromQCCore",
    "QCFromNBACCore",
    "FSFromNBACCore",
    "psi_fs_nbac_core",
    "psi_fs_oracle",
]
