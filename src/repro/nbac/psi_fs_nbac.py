"""End-to-end NBAC from (Ψ, FS) — Corollary 10's sufficiency direction.

The composition is exactly the paper's: (Ψ, FS) includes Ψ, which
solves QC (Figure 2 / Theorem 5); it also includes FS, so Figure 4
turns that QC solution into NBAC (Theorem 8a).  This module provides
the pre-wired core and the matching oracle:

* the detector value is the product ``(psi_value, fs_value)``;
* the QC child is a :class:`~repro.qc.psi_qc.PsiQCCore` reading the
  first component;
* the Figure 4 shell reads the second component.
"""

from __future__ import annotations

from typing import Optional

from repro.core.detectors.combined import ProductOracle
from repro.core.detectors.fs import FSOracle
from repro.core.detectors.psi import PsiOracle
from repro.nbac.from_qc import NBACFromQCCore
from repro.qc.psi_qc import PsiQCCore


def psi_fs_oracle(
    branch: Optional[str] = None, noisy: bool = True
) -> ProductOracle:
    """The (Ψ, FS) oracle — the weakest failure detector for NBAC."""
    return ProductOracle(PsiOracle(branch=branch, noisy=noisy), FSOracle())


def psi_fs_nbac_core(vote: Optional[str] = None) -> NBACFromQCCore:
    """An NBAC core solving the problem with (Ψ, FS).

    Wire it to a system whose detector is :func:`psi_fs_oracle`.
    """
    return NBACFromQCCore(
        vote=vote,
        qc_factory=lambda: PsiQCCore(psi_extract=lambda d: d[0]),
        fs_extract=lambda d: d[1],
    )
