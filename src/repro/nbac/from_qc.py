"""Figure 4: using FS to transform QC into NBAC (Theorem 8a).

Transcription of Figure 4, per process ``p``:

1. send the vote to all;
2. wait until a vote from every process arrived, or FS = red;
3. propose 1 to QC if all votes arrived and all are Yes, else 0;
4. Commit iff QC decided 1 (a decision of 0 or Q yields Abort).

Validity follows from QC validity: deciding 1 means some process
proposed 1, which means that process saw all-Yes votes; deciding 0
means some process proposed 0, i.e. it saw a No vote or its FS turned
red — and FS only turns red after a real failure; Q likewise certifies
a failure.  Termination: a vote from a crashed process may never
arrive, but then FS eventually turns red at every correct process.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.detector import RED
from repro.nbac.spec import ABORT, COMMIT, NO, YES
from repro.protocols.base import ProtocolCore
from repro.qc.spec import Q
from repro.sim.tasklets import WaitUntil


def _identity_fs(d: Any) -> Any:
    return d


class NBACFromQCCore(ProtocolCore):
    """NBAC built from a QC core and the failure detector FS.

    Parameters
    ----------
    vote:
        "Yes" or "No"; may be supplied later via :meth:`vote_value`.
    qc_factory:
        Builds the QC core to run as a child (e.g. a
        :class:`~repro.qc.psi_qc.PsiQCCore`, or a QC algorithm obtained
        from another reduction — the theorem quantifies over *any*
        solution to QC).
    fs_extract:
        Pulls the FS component out of the detector value (identity for
        a plain FS oracle; ``d[1]`` under a (D, FS) product).
    """

    QC_TAG = "qc"

    def __init__(
        self,
        vote: Optional[str] = None,
        qc_factory: Callable[[], ProtocolCore] = None,  # type: ignore[assignment]
        fs_extract: Callable[[Any], Any] = _identity_fs,
    ):
        super().__init__()
        if vote is not None and vote not in (YES, NO):
            raise ValueError(f"vote must be Yes/No, got {vote!r}")
        if qc_factory is None:
            raise ValueError("an NBAC-from-QC core needs a qc_factory")
        self.vote = vote
        self.qc_factory = qc_factory
        self.fs_extract = fs_extract
        self._votes: Dict[int, str] = {}
        #: What this process proposed to QC (for tests/experiments).
        self.qc_proposal: Optional[int] = None

    def vote_value(self, vote: str) -> None:
        if vote not in (YES, NO):
            raise ValueError(f"vote must be Yes/No, got {vote!r}")
        if self.vote is None:
            self.vote = vote

    def start(self) -> None:
        self.add_child(self.QC_TAG, self.qc_factory())
        self.spawn(self._run(), name=f"nbac@{self.pid}")

    def on_message(self, sender: int, payload: Any) -> None:
        if self.route_to_children(sender, payload):
            return
        kind = payload[0]
        if kind == "VOTE":
            self._votes.setdefault(sender, payload[1])
        else:
            raise ValueError(f"unknown NBAC message {payload!r}")

    def _fs_red(self) -> bool:
        return self.fs_extract(self.detector()) == RED

    def _run(self):
        # Wait for the local vote, then line 1: send it to all.
        yield WaitUntil(lambda: self.vote is not None)
        self.broadcast(("VOTE", self.vote))
        # Line 2: wait for all votes or FS = red.
        yield WaitUntil(lambda: len(self._votes) == self.n or self._fs_red())
        # Lines 3-6.
        if len(self._votes) == self.n and all(
            v == YES for v in self._votes.values()
        ):
            self.qc_proposal = 1
        else:
            self.qc_proposal = 0
        # Line 7: run the QC algorithm.
        qc = self.child(self.QC_TAG)
        qc.propose(self.qc_proposal)  # type: ignore[attr-defined]
        _, decision = yield qc.wait_decided()
        # Lines 8-11.
        if decision == 1:
            self.decide(COMMIT)
        else:  # 0 or Q
            self.decide(ABORT)
