"""Figure 5: transforming NBAC into QC (Theorem 8b, first half).

Transcription of Figure 5, per process ``p``:

1. send the QC proposal to all;
2. vote Yes in an instance of the given NBAC algorithm;
3. if NBAC returned Abort, return Q — valid because with all-Yes votes,
   NBAC validity(b) says Abort certifies that a failure occurred;
4. otherwise (Commit) wait for every process's proposal and return the
   smallest.  Commit certifies all processes voted Yes, hence all sent
   their proposals first (sends precede votes and links are reliable),
   so the wait terminates and everyone computes the same minimum.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.nbac.spec import ABORT, YES
from repro.protocols.base import ProtocolCore
from repro.qc.spec import Q
from repro.sim.tasklets import WaitUntil


def _order_key(value: Any):
    """Total order on proposals ("smallest proposal received").

    Proposals are arbitrary hashable values in the multivalued setting,
    so sort by type name then repr — any fixed total order shared by all
    processes does the job the paper's "smallest" does for binary
    values.
    """
    return (type(value).__name__, repr(value))


class QCFromNBACCore(ProtocolCore):
    """QC built from any NBAC algorithm.

    Parameters
    ----------
    proposal:
        This process's QC proposal; may be supplied later via
        :meth:`propose`.
    nbac_factory:
        Builds the NBAC core run as a child — the theorem quantifies
        over any solution to NBAC.
    """

    NBAC_TAG = "nbac"

    def __init__(
        self,
        proposal: Any = None,
        nbac_factory: Callable[[], ProtocolCore] = None,  # type: ignore[assignment]
    ):
        super().__init__()
        if nbac_factory is None:
            raise ValueError("a QC-from-NBAC core needs an nbac_factory")
        self.proposal = proposal
        self.nbac_factory = nbac_factory
        self._proposals: Dict[int, Any] = {}

    def propose(self, value: Any) -> None:
        if value is None:
            raise ValueError("proposals must be non-None")
        if self.proposal is None:
            self.proposal = value

    def start(self) -> None:
        self.add_child(self.NBAC_TAG, self.nbac_factory())
        self.spawn(self._run(), name=f"qc-from-nbac@{self.pid}")

    def on_message(self, sender: int, payload: Any) -> None:
        if self.route_to_children(sender, payload):
            return
        kind = payload[0]
        if kind == "PROP":
            self._proposals.setdefault(sender, payload[1])
        else:
            raise ValueError(f"unknown QC-from-NBAC message {payload!r}")

    def _run(self):
        yield WaitUntil(lambda: self.proposal is not None)
        # Line 1: send v to all.
        self.broadcast(("PROP", self.proposal))
        # Line 2: d := VOTE(Yes).
        nbac = self.child(self.NBAC_TAG)
        nbac.vote_value(YES)  # type: ignore[attr-defined]
        _, decision = yield nbac.wait_decided()
        # Lines 3-4.
        if decision == ABORT:
            self.decide(Q)
            return
        # Lines 5-7: Commit ⇒ everyone voted Yes ⇒ everyone's proposal
        # was already sent; wait for all and take the smallest.
        proposals = yield WaitUntil(
            lambda: len(self._proposals) == self.n
            and (True, dict(self._proposals))
        )
        _, received = proposals
        self.decide(min(received.values(), key=_order_key))
