"""The non-blocking atomic commit problem (Section 7.1).

Each process invokes VOTE(v), v ∈ {Yes, No}, which returns Commit or
Abort, subject to:

* **Termination** — if every correct process votes, every correct
  process eventually returns;
* **Uniform Agreement** — no two processes return different values;
* **Validity** — (a) Commit requires that all processes previously
  voted Yes; (b) Abort requires that some process voted No or a failure
  previously occurred.

Note the asymmetries against QC the paper stresses (§1): votes are not
symmetric (one No forces Abort), Abort is sometimes *inevitable* (a
process crashing before voting), and Abort does not certify a failure
(it may just mean a No vote) — which is why NBAC and QC are equivalent
only *modulo* FS (Theorem 8).
"""

from __future__ import annotations

YES = "Yes"
NO = "No"
COMMIT = "Commit"
ABORT = "Abort"
