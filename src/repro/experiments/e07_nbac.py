"""E7 — Corollary 10: NBAC from (Ψ, FS), crash-timing sweep.

NBAC's interesting axis is *when* a crash lands relative to voting:

* crash before any vote circulates ⇒ the victim's vote never arrives,
  FS reddens, everyone aborts;
* crash long after all votes circulated ⇒ the outcome depends on Ψ's
  branch — Commit stays possible (failure does not force Abort);
* no crash, all Yes ⇒ Commit is *mandatory* (non-triviality).
"""

from __future__ import annotations

from typing import List

from repro.consensus.interface import consensus_component
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.experiments.hooks import agreement_summary
from repro.nbac import ABORT, COMMIT, NO, YES, psi_fs_nbac_core, psi_fs_oracle
from repro.runner import Campaign, call, run_spec
from repro.sim.system import decided


def _nbac_factory(votes_items):
    votes = dict(votes_items)
    return consensus_component(lambda pid: psi_fs_nbac_core(votes[pid]))


def case_spec(votes, pattern, seed, branch=None, horizon=90_000):
    items = tuple(sorted(votes.items()))
    return run_spec(
        n=len(votes),
        seed=seed,
        horizon=horizon,
        pattern=pattern,
        detector=psi_fs_oracle(branch=branch),
        components=[("nbac", call(_nbac_factory, items))],
        stop=call(decided, "nbac"),
        summarize=call(agreement_summary, "nbac", "nbac", items),
    )


@experiment("E7")
def run(seed: int = 0, n: int = 4) -> ExperimentResult:
    headers = [
        "votes", "crash time", "Psi branch", "valid", "outcome",
        "latency", "as expected",
    ]
    rows: List[list] = []
    ok = True

    all_yes = {p: YES for p in range(n)}
    one_no = {0: NO, **{p: YES for p in range(1, n)}}

    cases = [
        # (votes, crash time or None, forced branch, outcome constraint)
        (all_yes, None, None, {COMMIT}),
        (one_no, None, None, {ABORT}),
        (all_yes, 0, None, {ABORT}),  # crash before voting
        (all_yes, 50, None, None),  # crash during vote exchange
        (all_yes, 5_000, "omega-sigma", {COMMIT}),  # crash long after
        (one_no, 5_000, "omega-sigma", {ABORT}),
    ]

    def _pattern(crash_time):
        if crash_time is None:
            return FailurePattern.crash_free(n)
        return FailurePattern(n, {n - 1: crash_time})

    campaign = Campaign(
        (
            case_spec(votes, _pattern(crash_time), seed, branch)
            for votes, crash_time, branch, _ in cases
        ),
        name="E7",
    )
    for (votes, crash_time, branch, required), summary in zip(
        cases, campaign.run()
    ):
        m = summary.metrics
        outcomes = m["outcomes"]
        required_reprs = sorted(map(repr, required)) if required else None
        expected = m["ok"] and (required is None or outcomes == required_reprs)
        ok = ok and expected
        rows.append(
            [
                "".join(v[0] for v in votes.values()),
                crash_time if crash_time is not None else "-",
                branch or "oracle-chosen",
                verdict_cell(m["ok"]),
                ",".join(o.strip("'") for o in outcomes),
                summary.latency("nbac"),
                verdict_cell(expected),
            ]
        )

    return ExperimentResult(
        experiment_id="E7",
        title=f"Corollary 10: NBAC from (Psi, FS), crash-timing sweep (n={n})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "Crash-before-vote forces Abort (validity-compatible: a failure "
            "occurred); crash-after-commit-window leaves Commit reachable — "
            "the asymmetry distinguishing NBAC's Abort from QC's Q.",
        ],
    )
