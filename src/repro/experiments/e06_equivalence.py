"""E6 — Theorem 8, Figures 4-5: NBAC ⇔ QC modulo FS.

Three sections, one per arrow of the equivalence:

* Figure 4 — QC + FS → NBAC: vote/crash sweep with NBAC verdicts;
* Figure 5 — NBAC → QC: proposal sweep with QC verdicts (Abort ↦ Q);
* repeated NBAC → FS: emitted green/red streams against FS's spec.
"""

from __future__ import annotations

from typing import List

from repro.analysis.properties import check_nbac, check_qc
from repro.consensus.interface import consensus_component
from repro.core.failure_pattern import FailurePattern
from repro.core.specs import check_fs
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.nbac import (
    ABORT,
    COMMIT,
    FSFromNBACCore,
    NO,
    QCFromNBACCore,
    YES,
    psi_fs_nbac_core,
    psi_fs_oracle,
)
from repro.protocols.base import CoreComponent
from repro.sim.probes import OutputRecorder
from repro.sim.system import SystemBuilder, decided


def _fig4_row(votes, pattern, seed, horizon=90_000):
    trace = (
        SystemBuilder(n=len(votes), seed=seed, horizon=horizon)
        .pattern(pattern)
        .detector(psi_fs_oracle())
        .component(
            "nbac",
            consensus_component(lambda pid: psi_fs_nbac_core(votes[pid])),
        )
        .build()
        .run(stop_when=decided("nbac"))
    )
    verdict = check_nbac(trace, votes, "nbac")
    outcomes = {d.value for d in trace.decisions}
    return verdict, outcomes


def _fig5_row(proposals, pattern, seed, horizon=110_000):
    trace = (
        SystemBuilder(n=len(proposals), seed=seed, horizon=horizon)
        .pattern(pattern)
        .detector(psi_fs_oracle())
        .component(
            "qc",
            consensus_component(
                lambda pid: QCFromNBACCore(
                    proposals[pid], nbac_factory=lambda: psi_fs_nbac_core()
                )
            ),
        )
        .build()
        .run(stop_when=decided("qc"))
    )
    verdict = check_qc(trace, proposals, "qc")
    outcomes = {repr(d.value) for d in trace.decisions}
    return verdict, outcomes


def _fs_row(pattern, seed, horizon=60_000):
    trace = (
        SystemBuilder(n=pattern.n, seed=seed, horizon=horizon)
        .pattern(pattern)
        .detector(psi_fs_oracle())
        .component(
            "xfs",
            lambda pid: CoreComponent(
                FSFromNBACCore(lambda tag: psi_fs_nbac_core())
            ),
        )
        .component("probe", lambda pid: OutputRecorder("xfs", "fs-x"))
        .build()
        .run()
    )
    return check_fs(trace.annotations["fs-x"], pattern)


@experiment("E6")
def run(seed: int = 0) -> ExperimentResult:
    headers = ["direction", "scenario", "valid", "outcome", "as expected"]
    rows: List[list] = []
    ok = True

    # Figure 4: QC + FS -> NBAC.
    fig4_cases = [
        ({p: YES for p in range(3)}, FailurePattern.crash_free(3), {COMMIT}),
        ({0: NO, 1: YES, 2: YES}, FailurePattern.crash_free(3), {ABORT}),
        ({p: YES for p in range(3)}, FailurePattern(3, {0: 1}), {ABORT}),
    ]
    for votes, pattern, expected_outcomes in fig4_cases:
        verdict, outcomes = _fig4_row(votes, pattern, seed)
        expected = verdict.ok and outcomes == expected_outcomes
        ok = ok and expected
        scenario = (
            f"votes={''.join(v[0] for v in votes.values())} "
            f"crashes={len(pattern.faulty)}"
        )
        rows.append(
            ["Fig4 QC+FS->NBAC", scenario, verdict_cell(verdict.ok),
             ",".join(sorted(outcomes)), verdict_cell(expected)]
        )

    # Figure 5: NBAC -> QC.
    fig5_cases = [
        ({p: f"v{p}" for p in range(3)}, FailurePattern.crash_free(3)),
        ({p: f"v{p}" for p in range(3)}, FailurePattern(3, {0: 1})),
    ]
    for proposals, pattern in fig5_cases:
        verdict, outcomes = _fig5_row(proposals, pattern, seed)
        ok = ok and verdict.ok
        scenario = f"crashes={len(pattern.faulty)}"
        rows.append(
            ["Fig5 NBAC->QC", scenario, verdict_cell(verdict.ok),
             ",".join(sorted(outcomes)), verdict_cell(verdict.ok)]
        )

    # NBAC -> FS.
    for pattern in (FailurePattern.crash_free(3), FailurePattern(3, {1: 400})):
        verdict = _fs_row(pattern, seed)
        ok = ok and verdict.ok
        scenario = f"crashes={len(pattern.faulty)}"
        rows.append(
            ["NBAC->FS", scenario, verdict_cell(verdict.ok),
             f"holds_from={verdict.holds_from}", verdict_cell(verdict.ok)]
        )

    return ExperimentResult(
        experiment_id="E6",
        title="Theorem 8: NBAC is equivalent to QC modulo FS (n=3)",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "All three arrows of the equivalence run as real systems; the "
            "NBAC black box in the last two is itself the (Psi,FS)-based "
            "stack of Corollary 10.",
        ],
    )
