"""E6 — Theorem 8, Figures 4-5: NBAC ⇔ QC modulo FS.

Three sections, one per arrow of the equivalence:

* Figure 4 — QC + FS → NBAC: vote/crash sweep with NBAC verdicts;
* Figure 5 — NBAC → QC: proposal sweep with QC verdicts (Abort ↦ Q);
* repeated NBAC → FS: emitted green/red streams against FS's spec.
"""

from __future__ import annotations

from typing import List

from repro.consensus.interface import consensus_component
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.experiments.hooks import (
    agreement_summary,
    annotation_check,
    probe_factory,
)
from repro.nbac import (
    ABORT,
    COMMIT,
    FSFromNBACCore,
    NO,
    QCFromNBACCore,
    YES,
    psi_fs_nbac_core,
    psi_fs_oracle,
)
from repro.protocols.base import CoreComponent
from repro.runner import Campaign, call, run_spec
from repro.sim.system import decided


def _nbac_factory(votes_items):
    votes = dict(votes_items)
    return consensus_component(lambda pid: psi_fs_nbac_core(votes[pid]))


def _qc_from_nbac_factory(proposals_items):
    proposals = dict(proposals_items)
    return consensus_component(
        lambda pid: QCFromNBACCore(
            proposals[pid], nbac_factory=lambda: psi_fs_nbac_core()
        )
    )


def _xfs_factory():
    return lambda pid: CoreComponent(
        FSFromNBACCore(lambda tag: psi_fs_nbac_core())
    )


def _fig4_spec(votes, pattern, seed, horizon=90_000):
    items = tuple(sorted(votes.items()))
    return run_spec(
        n=len(votes),
        seed=seed,
        horizon=horizon,
        pattern=pattern,
        detector=psi_fs_oracle(),
        components=[("nbac", call(_nbac_factory, items))],
        stop=call(decided, "nbac"),
        summarize=call(agreement_summary, "nbac", "nbac", items),
        tags={"direction": "fig4"},
    )


def _fig5_spec(proposals, pattern, seed, horizon=110_000):
    items = tuple(sorted(proposals.items()))
    return run_spec(
        n=len(proposals),
        seed=seed,
        horizon=horizon,
        pattern=pattern,
        detector=psi_fs_oracle(),
        components=[("qc", call(_qc_from_nbac_factory, items))],
        stop=call(decided, "qc"),
        summarize=call(agreement_summary, "qc", "qc", items),
        tags={"direction": "fig5"},
    )


def _fs_spec(pattern, seed, horizon=60_000):
    return run_spec(
        n=pattern.n,
        seed=seed,
        horizon=horizon,
        pattern=pattern,
        detector=psi_fs_oracle(),
        components=[
            ("xfs", call(_xfs_factory)),
            ("probe", call(probe_factory, "xfs", "fs-x")),
        ],
        summarize=call(annotation_check, "fs", "fs-x"),
        tags={"direction": "fs"},
    )


@experiment("E6")
def run(seed: int = 0) -> ExperimentResult:
    headers = ["direction", "scenario", "valid", "outcome", "as expected"]
    rows: List[list] = []
    ok = True

    # Figure 4: QC + FS -> NBAC.
    fig4_cases = [
        ({p: YES for p in range(3)}, FailurePattern.crash_free(3), {COMMIT}),
        ({0: NO, 1: YES, 2: YES}, FailurePattern.crash_free(3), {ABORT}),
        ({p: YES for p in range(3)}, FailurePattern(3, {0: 1}), {ABORT}),
    ]
    fig5_cases = [
        ({p: f"v{p}" for p in range(3)}, FailurePattern.crash_free(3)),
        ({p: f"v{p}" for p in range(3)}, FailurePattern(3, {0: 1})),
    ]
    fs_cases = [FailurePattern.crash_free(3), FailurePattern(3, {1: 400})]

    campaign = Campaign(
        [_fig4_spec(votes, pattern, seed) for votes, pattern, _ in fig4_cases]
        + [_fig5_spec(props, pattern, seed) for props, pattern in fig5_cases]
        + [_fs_spec(pattern, seed) for pattern in fs_cases],
        name="E6",
    )
    summaries = campaign.run().summaries
    fig4 = summaries[: len(fig4_cases)]
    fig5 = summaries[len(fig4_cases):len(fig4_cases) + len(fig5_cases)]
    fs = summaries[len(fig4_cases) + len(fig5_cases):]

    for (votes, pattern, expected_outcomes), summary in zip(fig4_cases, fig4):
        m = summary.metrics
        outcomes = m["outcomes"]
        expected = m["ok"] and outcomes == sorted(map(repr, expected_outcomes))
        ok = ok and expected
        scenario = (
            f"votes={''.join(v[0] for v in votes.values())} "
            f"crashes={len(pattern.faulty)}"
        )
        rows.append(
            ["Fig4 QC+FS->NBAC", scenario, verdict_cell(m["ok"]),
             ",".join(o.strip("'") for o in outcomes), verdict_cell(expected)]
        )

    for (proposals, pattern), summary in zip(fig5_cases, fig5):
        m = summary.metrics
        ok = ok and m["ok"]
        scenario = f"crashes={len(pattern.faulty)}"
        rows.append(
            ["Fig5 NBAC->QC", scenario, verdict_cell(m["ok"]),
             ",".join(m["outcomes"]), verdict_cell(m["ok"])]
        )

    for pattern, summary in zip(fs_cases, fs):
        m = summary.metrics
        ok = ok and m["ok"]
        scenario = f"crashes={len(pattern.faulty)}"
        rows.append(
            ["NBAC->FS", scenario, verdict_cell(m["ok"]),
             f"holds_from={m['holds_from']}", verdict_cell(m["ok"])]
        )

    return ExperimentResult(
        experiment_id="E6",
        title="Theorem 8: NBAC is equivalent to QC modulo FS (n=3)",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "All three arrows of the equivalence run as real systems; the "
            "NBAC black box in the last two is itself the (Psi,FS)-based "
            "stack of Corollary 10.",
        ],
    )
