"""Worker-side summarize hooks shared by the experiment campaigns.

Every experiment routes its runs through :mod:`repro.runner`, and the
property checking happens *inside the worker* — while the full
:class:`~repro.sim.system.System` and trace are still in scope — via a
``summarize`` hook.  The hook's return dict must be picklable and
seed-stable; it lands in ``RunSummary.metrics`` and is all the parent
process sees of the run beyond the standard counters.

The makers here are module-level (importable) so specs can reference
them with :func:`repro.runner.call`; the hooks they *return* are
closures, which is fine — resolution happens worker-side.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple

from repro.analysis.properties import check_consensus, check_nbac, check_qc
from repro.core.specs import (
    check_fs,
    check_omega,
    check_perfect,
    check_psi,
    check_sigma,
)
from repro.sim.probes import OutputRecorder

_AGREEMENT_CHECKERS = {
    "consensus": check_consensus,
    "qc": check_qc,
    "nbac": check_nbac,
}

_SPEC_CHECKERS = {
    "sigma": check_sigma,
    "omega": check_omega,
    "fs": check_fs,
    "perfect": check_perfect,
    "psi": check_psi,
}


def agreement_summary(kind: str, component: str, inputs: Iterable[Tuple[int, Any]]):
    """Hook maker: check one agreement problem and report its clauses.

    ``kind`` picks the checker (consensus / qc / nbac); ``inputs`` are
    the per-pid proposals or votes as ``(pid, value)`` pairs (a spec
    cannot hold a bare dict of unhashable values, and pairs fingerprint
    canonically).
    """
    checker = _AGREEMENT_CHECKERS[kind]
    inputs = dict(inputs)

    def hook(system, trace) -> Dict[str, Any]:
        verdict = checker(trace, inputs, component)
        outcomes = sorted(
            {repr(d.value) for d in trace.decisions if d.component == component}
        )
        return {
            "ok": verdict.ok,
            "termination": verdict.termination,
            "agreement": verdict.agreement,
            "validity": verdict.validity,
            "outcomes": outcomes,
        }

    return hook


def annotation_check(checker: str, key: str):
    """Hook maker: run a detector spec checker on a trace annotation.

    The annotation at ``key`` must be the emitted history object the
    extraction/heartbeat components publish; the verdict's clause data
    comes back as plain fields.
    """
    check = _SPEC_CHECKERS[checker]

    def hook(system, trace) -> Dict[str, Any]:
        verdict = check(trace.annotations[key], trace.pattern)
        return {
            "ok": verdict.ok,
            "holds_from": verdict.holds_from,
            "violations": list(verdict.violations),
        }

    return hook


def probe_factory(component: str, key: str):
    """Component-factory maker for the standard output probe."""
    return lambda pid: OutputRecorder(component, key)
