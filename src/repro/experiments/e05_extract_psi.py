"""E5 — Theorem 6, Figure 3: extracting Ψ from a QC algorithm.

The heaviest experiment: per scenario it runs the complete Figure 3
pipeline (sample DAG gossip, the n+1-tree simulation forest with real
executions of A inside a virtual runtime, the real branch-agreement
execution of A, then the Ω and Σ extraction loops) and checks the
emitted per-process output streams against Ψ's specification.
"""

from __future__ import annotations

from typing import List

from repro.core.detectors import PsiOracle
from repro.core.detectors.psi import FS_BRANCH, OMEGA_SIGMA_BRANCH
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.experiments.hooks import probe_factory
from repro.protocols.base import CoreComponent
from repro.qc.extract_psi import PsiExtraction
from repro.qc.psi_qc import PsiQCCore
from repro.runner import Campaign, call, ref, run_spec


def _xpsi_factory(prefix_stride):
    return lambda pid: CoreComponent(
        PsiExtraction(
            qc_factory=lambda: PsiQCCore(), prefix_stride=prefix_stride
        )
    )


def _summarize(system, trace):
    from repro.core.specs import check_psi

    verdict = check_psi(trace.annotations["psi-x"], trace.pattern)
    branches = {
        system.component_at(p, "xpsi").core.branch
        for p in trace.pattern.correct
    }
    branches.discard(None)
    sigma_rounds = sum(
        system.component_at(p, "xpsi").core.sigma_rounds
        for p in trace.pattern.correct
    )
    return {
        "ok": verdict.ok,
        "branches": sorted(branches),
        "sigma_rounds": sigma_rounds,
    }


def case_spec(branch, pattern, seed, horizon, prefix_stride=10):
    return run_spec(
        n=3,
        seed=seed,
        horizon=horizon,
        pattern=pattern,
        detector=PsiOracle(branch=branch),
        components=[
            ("xpsi", call(_xpsi_factory, prefix_stride)),
            ("probe", call(probe_factory, "xpsi", "psi-x")),
        ],
        summarize=ref(_summarize),
        tags={"branch": branch},
    )


@experiment("E5")
def run(seed: int = 1) -> ExperimentResult:
    headers = [
        "oracle branch", "crashes", "psi valid", "extracted branch",
        "sigma rounds", "as expected",
    ]
    rows: List[list] = []
    ok = True

    cases = [
        (OMEGA_SIGMA_BRANCH, FailurePattern.crash_free(3), 14_000,
         "omega-sigma"),
        (OMEGA_SIGMA_BRANCH, FailurePattern(3, {1: 300}), 16_000,
         "omega-sigma"),
        (FS_BRANCH, FailurePattern(3, {2: 300}), 8_000, "fs"),
        (FS_BRANCH, FailurePattern(3, {0: 150, 1: 250}), 8_000, "fs"),
    ]
    campaign = Campaign(
        (
            case_spec(branch, pattern, seed, horizon)
            for branch, pattern, horizon, _ in cases
        ),
        name="E5",
    )
    for (branch, pattern, _, expected_branch), summary in zip(
        cases, campaign.run()
    ):
        m = summary.metrics
        branch_ok = m["branches"] == [expected_branch]
        expected = m["ok"] and branch_ok
        ok = ok and expected
        rows.append(
            [
                branch,
                len(pattern.faulty),
                verdict_cell(m["ok"]),
                ",".join(m["branches"]) or "-",
                m["sigma_rounds"],
                verdict_cell(expected),
            ]
        )

    return ExperimentResult(
        experiment_id="E5",
        title="Figure 3: extracting Psi from QC algorithm A (n=3, "
        "A = Figure 2's Psi-based QC)",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "All correct processes commit to one branch, matching the "
            "underlying detector's behaviour; on the (Omega,Sigma) branch "
            "the line 24-32 Sigma loop produces intersecting, eventually "
            "all-correct quorums.",
            "Bounded substitution: the line-22 Omega gadget walk is "
            "replaced by a convergent election over the DAG + real "
            "executions of A (see extract_psi.py docstring).",
        ],
    )
