"""E8 — the §1 remark: Σ ex nihilo under a correct majority.

Runs the join-quorum implementation across environments and checks the
emitted quorum streams against Σ's two clauses separately: Intersection
must hold unconditionally (all outputs are majorities); Completeness
must hold exactly when a majority is correct.
"""

from __future__ import annotations

from typing import List

from repro.core.failure_pattern import FailurePattern
from repro.core.specs import check_sigma
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.ex_nihilo.sigma_majority import SigmaFromMajority
from repro.sim.probes import OutputRecorder
from repro.sim.system import SystemBuilder


def _run(pattern, seed, horizon=20_000):
    system = (
        SystemBuilder(n=pattern.n, seed=seed, horizon=horizon)
        .pattern(pattern)
        .component("sigma-impl", lambda pid: SigmaFromMajority())
        .component("probe", lambda pid: OutputRecorder("sigma-impl", "s"))
        .build()
    )
    trace = system.run()
    verdict = check_sigma(trace.annotations["s"], pattern)
    intersection_ok = not any(
        "Intersection" in v for v in verdict.violations
    )
    completeness_ok = not any(
        "Completeness" in v for v in verdict.violations
    )
    rounds = min(
        system.component_at(p, "sigma-impl").rounds_completed
        for p in pattern.correct
    )
    return verdict, intersection_ok, completeness_ok, rounds


@experiment("E8")
def run(seed: int = 0, n: int = 5) -> ExperimentResult:
    headers = [
        "crashes f", "majority correct", "intersection", "completeness",
        "full sigma", "min rounds", "as expected",
    ]
    rows: List[list] = []
    ok = True
    majority_limit = (n - 1) // 2

    for f in range(n):
        pattern = FailurePattern(n, {pid: 100 + 30 * pid for pid in range(f)})
        has_majority = f <= majority_limit
        verdict, inter, compl, rounds = _run(pattern, seed)
        expected = inter and (compl == has_majority) and (
            verdict.ok == has_majority
        )
        ok = ok and expected
        rows.append(
            [
                f,
                verdict_cell(has_majority),
                verdict_cell(inter),
                verdict_cell(compl),
                verdict_cell(verdict.ok),
                rounds,
                verdict_cell(expected),
            ]
        )

    return ExperimentResult(
        experiment_id="E8",
        title="Sigma ex nihilo: join-quorum majorities "
        f"(n={n}, crashes 0..{n-1})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "Intersection never breaks (majorities always intersect); "
            "Completeness — and hence full Sigma — holds exactly while a "
            "majority is correct.  That is why (Omega,Sigma) degenerates to "
            "the classical Omega result in majority environments.",
        ],
    )
