"""E8 — the §1 remark: Σ ex nihilo under a correct majority.

Runs the join-quorum implementation across environments and checks the
emitted quorum streams against Σ's two clauses separately: Intersection
must hold unconditionally (all outputs are majorities); Completeness
must hold exactly when a majority is correct.
"""

from __future__ import annotations

from typing import List

from repro.core.failure_pattern import FailurePattern
from repro.ex_nihilo.sigma_majority import SigmaFromMajority
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.experiments.hooks import probe_factory
from repro.runner import Campaign, call, ref, run_spec


def _sigma_impl_factory():
    return lambda pid: SigmaFromMajority()


def _summarize(system, trace):
    from repro.core.specs import check_sigma

    verdict = check_sigma(trace.annotations["s"], trace.pattern)
    return {
        "ok": verdict.ok,
        "intersection": not any(
            "Intersection" in v for v in verdict.violations
        ),
        "completeness": not any(
            "Completeness" in v for v in verdict.violations
        ),
        "min_rounds": min(
            system.component_at(p, "sigma-impl").rounds_completed
            for p in trace.pattern.correct
        ),
    }


def case_spec(n, f, seed, horizon=20_000):
    return run_spec(
        n=n,
        seed=seed,
        horizon=horizon,
        pattern=FailurePattern(n, {pid: 100 + 30 * pid for pid in range(f)}),
        components=[
            ("sigma-impl", call(_sigma_impl_factory)),
            ("probe", call(probe_factory, "sigma-impl", "s")),
        ],
        summarize=ref(_summarize),
        tags={"f": f},
    )


@experiment("E8")
def run(seed: int = 0, n: int = 5) -> ExperimentResult:
    headers = [
        "crashes f", "majority correct", "intersection", "completeness",
        "full sigma", "min rounds", "as expected",
    ]
    rows: List[list] = []
    ok = True
    majority_limit = (n - 1) // 2

    campaign = Campaign.grid(
        lambda f: case_spec(n, f, seed), name="E8", f=range(n)
    )
    for summary in campaign.run():
        f = summary.tags["f"]
        has_majority = f <= majority_limit
        m = summary.metrics
        expected = m["intersection"] and (
            m["completeness"] == has_majority
        ) and (m["ok"] == has_majority)
        ok = ok and expected
        rows.append(
            [
                f,
                verdict_cell(has_majority),
                verdict_cell(m["intersection"]),
                verdict_cell(m["completeness"]),
                verdict_cell(m["ok"]),
                m["min_rounds"],
                verdict_cell(expected),
            ]
        )

    return ExperimentResult(
        experiment_id="E8",
        title="Sigma ex nihilo: join-quorum majorities "
        f"(n={n}, crashes 0..{n-1})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "Intersection never breaks (majorities always intersect); "
            "Completeness — and hence full Sigma — holds exactly while a "
            "majority is correct.  That is why (Omega,Sigma) degenerates to "
            "the classical Omega result in majority environments.",
        ],
    )
