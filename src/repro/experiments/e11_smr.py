"""E11 — the [17, 21] substrate: registers from consensus via SMR.

Corollary 3 needs "consensus implements registers"; this experiment
drives scripted clients against the replicated register, certifies the
recorded history with the linearizability checker, and confirms log
convergence across replicas.
"""

from __future__ import annotations

from typing import List

from repro.consensus.replicated_object import SMRRegisterComponent
from repro.core.detectors import omega_sigma_oracle
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.registers.linearizability import check_linearizable
from repro.runner import Campaign, call, ref, run_spec


def _script(p):
    return [
        ("write", f"w{p}-1"), ("read", None), ("write", f"w{p}-2"),
        ("read", None),
    ]


def _smr_factory(n):
    scripts = {p: _script(p) for p in range(n)}
    return lambda pid: SMRRegisterComponent(scripts[pid])


def _all_clients_done():
    return lambda s: all(
        s.component_at(p, "smrreg").core.done for p in s.pattern.correct
    )


def _summarize(system, trace):
    lin = check_linearizable(trace.operations)
    logs = [
        system.component_at(p, "smrreg").core.child("smr").log
        for p in trace.pattern.correct
    ]
    shortest = min(len(log) for log in logs)
    prefix_equal = all(logs[0][:shortest] == log[:shortest] for log in logs)
    return {
        "linearizable": lin.ok,
        "converge": prefix_equal,
        "log_len": shortest,
    }


def case_spec(n, pattern, seed, horizon=250_000):
    return run_spec(
        n=n,
        seed=seed,
        horizon=horizon,
        pattern=pattern,
        detector=omega_sigma_oracle(),
        components=[("smrreg", call(_smr_factory, n))],
        stop=call(_all_clients_done),
        summarize=ref(_summarize),
    )


@experiment("E11")
def run(seed: int = 0, n: int = 3) -> ExperimentResult:
    headers = [
        "scenario", "crashes", "linearizable", "logs converge",
        "log length", "slots/sec proxy (msgs)",
    ]
    rows: List[list] = []
    ok = True

    cases = [
        ("crash-free", FailurePattern.crash_free(n)),
        ("one crash", FailurePattern(n, {0: 120})),
        ("two crashes", FailurePattern(n, {0: 120, 1: 200})),
    ]
    campaign = Campaign(
        (case_spec(n, pattern, seed) for _, pattern in cases), name="E11"
    )
    for (label, pattern), summary in zip(cases, campaign.run()):
        m = summary.metrics
        expected = m["linearizable"] and m["converge"]
        ok = ok and expected
        rows.append(
            [
                label,
                len(pattern.faulty),
                verdict_cell(m["linearizable"]),
                verdict_cell(m["converge"]),
                m["log_len"],
                summary.messages_sent,
            ]
        )

    return ExperimentResult(
        experiment_id="E11",
        title="[17, 21]: a linearizable register from per-slot consensus "
        f"(n={n})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "This is the object-from-consensus leg of Corollary 3: any "
            "detector solving consensus thereby implements registers, and "
            "so (via Figure 1) yields Sigma.",
        ],
    )
