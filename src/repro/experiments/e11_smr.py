"""E11 — the [17, 21] substrate: registers from consensus via SMR.

Corollary 3 needs "consensus implements registers"; this experiment
drives scripted clients against the replicated register, certifies the
recorded history with the linearizability checker, and confirms log
convergence across replicas.
"""

from __future__ import annotations

from typing import List

from repro.consensus.replicated_object import SMRRegisterComponent
from repro.core.detectors import omega_sigma_oracle
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.registers.linearizability import check_linearizable
from repro.sim.system import SystemBuilder


def _run(scripts, pattern, seed, horizon=250_000):
    builder = (
        SystemBuilder(n=len(scripts), seed=seed, horizon=horizon)
        .pattern(pattern)
        .detector(omega_sigma_oracle())
        .component("smrreg", lambda pid: SMRRegisterComponent(scripts[pid]))
    )
    system = builder.build()
    trace = system.run(
        stop_when=lambda s: all(
            s.component_at(p, "smrreg").core.done for p in s.pattern.correct
        )
    )
    lin = check_linearizable(trace.operations)
    logs = [
        system.component_at(p, "smrreg").core.child("smr").log
        for p in pattern.correct
    ]
    shortest = min(len(log) for log in logs)
    prefix_equal = all(
        logs[0][:shortest] == log[:shortest] for log in logs
    )
    return lin, prefix_equal, shortest, trace


@experiment("E11")
def run(seed: int = 0, n: int = 3) -> ExperimentResult:
    headers = [
        "scenario", "crashes", "linearizable", "logs converge",
        "log length", "slots/sec proxy (msgs)",
    ]
    rows: List[list] = []
    ok = True

    base_script = lambda p: [  # noqa: E731
        ("write", f"w{p}-1"), ("read", None), ("write", f"w{p}-2"),
        ("read", None),
    ]
    cases = [
        ("crash-free", FailurePattern.crash_free(n)),
        ("one crash", FailurePattern(n, {0: 120})),
        ("two crashes", FailurePattern(n, {0: 120, 1: 200})),
    ]
    for label, pattern in cases:
        scripts = {p: base_script(p) for p in range(n)}
        lin, converge, log_len, trace = _run(scripts, pattern, seed)
        expected = lin.ok and converge
        ok = ok and expected
        rows.append(
            [
                label,
                len(pattern.faulty),
                verdict_cell(lin.ok),
                verdict_cell(converge),
                log_len,
                trace.messages_sent,
            ]
        )

    return ExperimentResult(
        experiment_id="E11",
        title="[17, 21]: a linearizable register from per-slot consensus "
        f"(n={n})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "This is the object-from-consensus leg of Corollary 3: any "
            "detector solving consensus thereby implements registers, and "
            "so (via Figure 1) yields Sigma.",
        ],
    )
