"""CLI: regenerate the paper's experiment tables.

Usage::

    python -m repro.experiments                  # all experiments
    python -m repro.experiments E1 E3 E7         # a selection
    python -m repro.experiments --seed 7 E4      # different seed
    python -m repro.experiments --jobs 4 E1 E3   # 4 worker processes
    python -m repro.experiments --cache .cache   # reuse cached runs
    python -m repro.experiments --cache .repro-store \\
        --cache-backend sqlite                   # persistent campaign DB
    python -m repro.experiments --fail-fast      # stop at first mismatch
    python -m repro.experiments --profile E1     # dump hot-path counters

``--jobs``/``--cache`` configure the campaign engine every experiment
routes its runs through (see :mod:`repro.runner`): ``--jobs 0`` uses
every core, ``--cache`` with no path uses the default on-disk store.
``--profile`` collects each campaign's aggregated perf counters (see
``docs/PERF.md``) and writes them as JSON (default ``PROFILE_sim.json``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import all_experiments
from repro.runner import configure, profile
from repro.runner.config import CACHE_BACKENDS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the experiment tables of the reproduction.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (E1..E13); default: all",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per campaign (0 = all cores; default serial)",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=True,
        default=None,
        metavar="DIR",
        help="cache run results on disk (optional directory)",
    )
    parser.add_argument(
        "--cache-backend",
        choices=CACHE_BACKENDS,
        default=None,
        metavar="NAME",
        help=(
            "what --cache resolves to: 'json' per-entry files or "
            "'sqlite', the persistent campaign database "
            "(docs/STORE.md; default json or $REPRO_RUNNER_CACHE_BACKEND)"
        ),
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop at the first experiment whose verdict mismatches",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="PROFILE_sim.json",
        default=None,
        metavar="PATH",
        help="dump per-campaign perf counters as JSON (see docs/PERF.md)",
    )
    args = parser.parse_args(argv)

    registry = all_experiments()
    wanted = args.experiments or list(registry)
    unknown = [e for e in wanted if e not in registry]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; have {list(registry)}")

    configure(
        workers=args.jobs,
        cache=args.cache,
        cache_backend=args.cache_backend,
    )
    if args.profile:
        profile.enable()

    failures = []
    for experiment_id in wanted:
        started = time.time()
        result = registry[experiment_id](seed=args.seed)
        elapsed = time.time() - started
        print(result.render())
        print(f"({elapsed:.1f}s)\n")
        if not result.ok:
            failures.append(experiment_id)
            if args.fail_fast:
                remaining = wanted[wanted.index(experiment_id) + 1 :]
                if remaining:
                    print(f"--fail-fast: skipping {remaining}", file=sys.stderr)
                break

    if args.profile:
        payload = profile.dump(args.profile)
        total = payload["total"]
        scanned = total.get("messages_scanned", 0)
        delivered = total.get("messages_delivered", 0)
        per_delivery = scanned / delivered if delivered else 0.0
        print(
            f"profile: {len(payload['campaigns'])} campaigns -> "
            f"{args.profile} (scanned/delivery {per_delivery:.2f})"
        )

    if failures:
        print(f"MISMATCHES: {failures}", file=sys.stderr)
        return 1
    print("all experiment tables match the paper's claims")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
