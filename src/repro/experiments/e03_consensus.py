"""E3 — Corollaries 2-4: consensus from (Ω, Σ) in every environment.

Two tables in one:

* the sweep — (Ω, Σ) consensus across f = 0 .. n-1 crashes with
  property verdicts and costs;
* the crossover — Ω with ex-nihilo majority quorums (the classical
  Chandra-Toueg setting [4]) vs the full (Ω, Σ): the former loses
  liveness once a majority can crash, the latter doesn't — precisely
  why (Ω, Σ) generalises the classical result.
"""

from __future__ import annotations

from typing import List

from repro.analysis.properties import check_consensus
from repro.consensus.chandra_toueg import ChandraTouegConsensusCore
from repro.consensus.interface import consensus_component
from repro.consensus.paxos import OmegaSigmaConsensusCore, omega_of
from repro.core.detectors import OmegaOracle, omega_sigma_oracle
from repro.core.detectors.eventually_strong import EventuallyStrongOracle
from repro.core.detectors.strong import StrongOracle
from repro.consensus.strong_detector import StrongConsensusCore
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.sim.system import SystemBuilder, decided


def _omega_only_core(proposal, n):
    """Consensus attempt from Ω alone + ex-nihilo majority quorums."""
    core = OmegaSigmaConsensusCore(
        proposal=proposal,
        omega_extract=omega_of,
        sigma_extract=lambda d: None,
    )
    core._quorum_reached = lambda responders: len(responders) >= n // 2 + 1
    return core


def _run(n, f, detector, core_factory, seed, horizon=60_000):
    # Crashes land at the very start of the run: that is the regime in
    # which quorum availability, not mere crash count, decides liveness
    # (late crashes let any algorithm finish before losing its quorum).
    pattern = FailurePattern(n, {pid: 1 + 2 * pid for pid in range(f)})
    proposals = {p: f"v{p}" for p in range(n)}
    trace = (
        SystemBuilder(n=n, seed=seed, horizon=horizon)
        .pattern(pattern)
        .detector(detector)
        .component(
            "consensus",
            consensus_component(lambda pid: core_factory(proposals[pid])),
        )
        .build()
        .run(stop_when=decided("consensus"))
    )
    verdict = check_consensus(trace, proposals)
    return trace, verdict


@experiment("E3")
def run(seed: int = 0, n: int = 5) -> ExperimentResult:
    headers = [
        "detector", "crashes f", "terminated", "agreement+validity",
        "latency", "messages", "as expected",
    ]
    rows: List[list] = []
    ok = True
    majority_limit = (n - 1) // 2

    for f in range(n):
        for label, detector, factory in (
            (
                "(Omega,Sigma)",
                omega_sigma_oracle(),
                lambda v: OmegaSigmaConsensusCore(v),
            ),
            (
                "Omega+majorities",
                OmegaOracle(),
                lambda v: _omega_only_core(v, n),
            ),
            (
                "CT <>S [4]",
                EventuallyStrongOracle(),
                lambda v: ChandraTouegConsensusCore(v),
            ),
            (
                "CT S [4]",
                StrongOracle(),
                lambda v: StrongConsensusCore(v),
            ),
        ):
            trace, verdict = _run(n, f, detector, factory, seed)
            safe = verdict.agreement and verdict.validity
            if label in ("(Omega,Sigma)", "CT S [4]"):
                # Both tolerate any number of crashes — but S's
                # perpetual accuracy is unimplementable, (Omega,Sigma)
                # is the *weakest* such detector.
                expected = verdict.ok
            else:
                # Both majority-based baselines share the crossover.
                expected = safe and (
                    verdict.termination == (f <= majority_limit)
                )
            ok = ok and expected
            rows.append(
                [
                    label, f,
                    verdict_cell(verdict.termination),
                    verdict_cell(safe),
                    trace.decision_latency("consensus"),
                    trace.messages_sent,
                    verdict_cell(expected),
                ]
            )

    return ExperimentResult(
        experiment_id="E3",
        title="Consensus: (Omega,Sigma) vs the classical baselines "
        f"(Omega+majorities, CT <>S, CT S) (n={n})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            f"Expected crossover at f > {majority_limit}: Omega alone (with "
            "free majority quorums) and the classical Chandra-Toueg <>S "
            "algorithm [4] both block; (Omega,Sigma) still terminates — "
            "the generalisation the paper proves.",
            "CT's S-based algorithm also survives every f, but S's "
            "perpetual weak accuracy is unimplementable under asynchrony; "
            "(Omega,Sigma) is the *weakest* detector with this resilience.",
        ],
    )
