"""E3 — Corollaries 2-4: consensus from (Ω, Σ) in every environment.

Two tables in one:

* the sweep — (Ω, Σ) consensus across f = 0 .. n-1 crashes with
  property verdicts and costs;
* the crossover — Ω with ex-nihilo majority quorums (the classical
  Chandra-Toueg setting [4]) vs the full (Ω, Σ): the former loses
  liveness once a majority can crash, the latter doesn't — precisely
  why (Ω, Σ) generalises the classical result.
"""

from __future__ import annotations

from typing import List

from repro.consensus.chandra_toueg import ChandraTouegConsensusCore
from repro.consensus.interface import consensus_component
from repro.consensus.paxos import OmegaSigmaConsensusCore, omega_of
from repro.core.detectors import OmegaOracle, omega_sigma_oracle
from repro.core.detectors.eventually_strong import EventuallyStrongOracle
from repro.core.detectors.strong import StrongOracle
from repro.consensus.strong_detector import StrongConsensusCore
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.experiments.hooks import agreement_summary
from repro.runner import Campaign, call, run_spec
from repro.sim.system import decided


def _omega_only_core(proposal, n):
    """Consensus attempt from Ω alone + ex-nihilo majority quorums."""
    core = OmegaSigmaConsensusCore(
        proposal=proposal,
        omega_extract=omega_of,
        sigma_extract=lambda d: None,
    )
    core._quorum_reached = lambda responders: len(responders) >= n // 2 + 1
    return core


#: label -> (detector maker, core maker taking (proposal, n))
_ALGORITHMS = {
    "(Omega,Sigma)": (
        omega_sigma_oracle,
        lambda v, n: OmegaSigmaConsensusCore(v),
    ),
    "Omega+majorities": (OmegaOracle, _omega_only_core),
    "CT <>S [4]": (
        EventuallyStrongOracle,
        lambda v, n: ChandraTouegConsensusCore(v),
    ),
    "CT S [4]": (StrongOracle, lambda v, n: StrongConsensusCore(v)),
}


def _proposals(n):
    return {p: f"v{p}" for p in range(n)}


def _core_factory(label, n):
    proposals = _proposals(n)
    _, maker = _ALGORITHMS[label]
    return consensus_component(lambda pid: maker(proposals[pid], n))


def case_spec(n, f, label, seed, horizon=60_000):
    # Crashes land at the very start of the run: that is the regime in
    # which quorum availability, not mere crash count, decides liveness
    # (late crashes let any algorithm finish before losing its quorum).
    detector_maker, _ = _ALGORITHMS[label]
    return run_spec(
        n=n,
        seed=seed,
        horizon=horizon,
        pattern=FailurePattern(n, {pid: 1 + 2 * pid for pid in range(f)}),
        detector=detector_maker(),
        components=[("consensus", call(_core_factory, label, n))],
        stop=call(decided, "consensus"),
        summarize=call(
            agreement_summary,
            "consensus",
            "consensus",
            tuple(sorted(_proposals(n).items())),
        ),
        tags={"f": f, "label": label},
    )


@experiment("E3")
def run(seed: int = 0, n: int = 5) -> ExperimentResult:
    headers = [
        "detector", "crashes f", "terminated", "agreement+validity",
        "latency", "messages", "as expected",
    ]
    rows: List[list] = []
    ok = True
    majority_limit = (n - 1) // 2

    campaign = Campaign.grid(
        lambda f, label: case_spec(n, f, label, seed),
        name="E3",
        f=range(n),
        label=tuple(_ALGORITHMS),
    )
    for summary in campaign.run():
        f, label = summary.tags["f"], summary.tags["label"]
        m = summary.metrics
        safe = m["agreement"] and m["validity"]
        if label in ("(Omega,Sigma)", "CT S [4]"):
            # Both tolerate any number of crashes — but S's
            # perpetual accuracy is unimplementable, (Omega,Sigma)
            # is the *weakest* such detector.
            expected = m["ok"]
        else:
            # Both majority-based baselines share the crossover.
            expected = safe and (m["termination"] == (f <= majority_limit))
        ok = ok and expected
        rows.append(
            [
                label, f,
                verdict_cell(m["termination"]),
                verdict_cell(safe),
                summary.latency("consensus"),
                summary.messages_sent,
                verdict_cell(expected),
            ]
        )

    return ExperimentResult(
        experiment_id="E3",
        title="Consensus: (Omega,Sigma) vs the classical baselines "
        f"(Omega+majorities, CT <>S, CT S) (n={n})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            f"Expected crossover at f > {majority_limit}: Omega alone (with "
            "free majority quorums) and the classical Chandra-Toueg <>S "
            "algorithm [4] both block; (Omega,Sigma) still terminates — "
            "the generalisation the paper proves.",
            "CT's S-based algorithm also survives every f, but S's "
            "perpetual weak accuracy is unimplementable under asynchrony; "
            "(Omega,Sigma) is the *weakest* detector with this resilience.",
        ],
    )
