"""E1 — Theorem 1 (sufficiency): atomic registers from Σ.

Regenerates the paper's register story as a table: the same ABD code
with majority quorums vs. Σ quorums, across environments from crash-free
to wait-free (n-1 crashes).  Expected shape:

* Σ-ABD: live and linearizable in *every* environment;
* majority-ABD: live and linearizable while a majority is correct,
  *blocked* (liveness lost, safety intact) beyond — the crossover at
  f >= ceil(n/2) that makes Σ the interesting detector.
"""

from __future__ import annotations

from typing import List

from repro.core.detectors import SigmaOracle
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.registers.abd import RegisterBank
from repro.registers.linearizability import check_linearizable
from repro.registers.quorums import MajorityQuorums, SigmaQuorums
from repro.registers.workload import RegisterWorkload, workload_quiescent
from repro.runner import Campaign, call, ref, run_spec


def _identity(d):
    return d


def _bank_factory(kind):
    """One quorum system per run, shared by every process's bank."""
    quorums = (
        MajorityQuorums() if kind == "majority" else SigmaQuorums(_identity)
    )
    return lambda pid: RegisterBank(quorums, record_ops=True)


def _workload_factory(seed):
    return lambda pid: RegisterWorkload(
        registers=("x", "y"), ops_per_process=4, seed=seed
    )


def _summarize(system, trace):
    completed = len(trace.completed_operations("reg"))
    return {
        "live": trace.stop_reason == "stop-condition",
        "linearizable": check_linearizable(trace.operations).ok,
        "completed": completed,
        "total": len(trace.operations),
        "msgs_per_op": trace.messages_sent / max(1, completed),
    }


def case_spec(n, f, kind, seed, horizon=80_000):
    """One E1 cell: ABD over ``kind`` quorums under ``f`` early crashes."""
    return run_spec(
        n=n,
        seed=seed,
        horizon=horizon,
        pattern=FailurePattern(n, {pid: 150 + 40 * pid for pid in range(f)}),
        detector=SigmaOracle() if kind == "sigma" else None,
        components=[
            ("reg", call(_bank_factory, kind)),
            ("workload", call(_workload_factory, seed)),
        ],
        stop=call(workload_quiescent),
        summarize=ref(_summarize),
        tags={"f": f, "kind": kind},
    )


@experiment("E1")
def run(seed: int = 0, n: int = 5) -> ExperimentResult:
    headers = [
        "quorums", "crashes f", "live", "linearizable", "ops done",
        "msgs/op", "as expected",
    ]
    rows: List[list] = []
    ok = True
    majority_limit = (n - 1) // 2

    campaign = Campaign.grid(
        lambda f, kind: case_spec(n, f, kind, seed),
        name="E1",
        f=range(n),
        kind=("majority", "sigma"),
    )
    for summary in campaign.run():
        f, kind = summary.tags["f"], summary.tags["kind"]
        m = summary.metrics
        live, lin = m["live"], m["linearizable"]
        if kind == "sigma":
            expected = live and lin
        else:
            # Majorities: live iff a majority stayed correct; always safe.
            expected = lin and (live == (f <= majority_limit))
        ok = ok and expected
        rows.append(
            [
                kind, f, verdict_cell(live), verdict_cell(lin),
                f"{m['completed']}/{m['total']}", round(m["msgs_per_op"], 1),
                verdict_cell(expected),
            ]
        )

    return ExperimentResult(
        experiment_id="E1",
        title="Atomic registers: ABD over majorities vs over Sigma "
        f"(n={n}, crashes 0..{n-1})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "Expected crossover: majority-ABD loses liveness (never safety) "
            f"once f > {majority_limit}; Sigma-ABD stays live through f={n-1}.",
        ],
    )
