"""E1 — Theorem 1 (sufficiency): atomic registers from Σ.

Regenerates the paper's register story as a table: the same ABD code
with majority quorums vs. Σ quorums, across environments from crash-free
to wait-free (n-1 crashes).  Expected shape:

* Σ-ABD: live and linearizable in *every* environment;
* majority-ABD: live and linearizable while a majority is correct,
  *blocked* (liveness lost, safety intact) beyond — the crossover at
  f >= ceil(n/2) that makes Σ the interesting detector.
"""

from __future__ import annotations

from typing import List

from repro.core.detectors import SigmaOracle
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.registers.abd import RegisterBank
from repro.registers.linearizability import check_linearizable
from repro.registers.quorums import MajorityQuorums, SigmaQuorums
from repro.registers.workload import RegisterWorkload, workload_quiescent
from repro.sim.system import SystemBuilder


def _run_case(n, f, quorums, detector, seed, horizon=80_000):
    crash_times = {pid: 150 + 40 * pid for pid in range(f)}
    pattern = FailurePattern(n, crash_times)
    builder = (
        SystemBuilder(n=n, seed=seed, horizon=horizon)
        .pattern(pattern)
        .component("reg", lambda pid: RegisterBank(quorums, record_ops=True))
        .component(
            "workload",
            lambda pid: RegisterWorkload(
                registers=("x", "y"), ops_per_process=4, seed=seed
            ),
        )
    )
    if detector is not None:
        builder.detector(detector)
    system = builder.build()
    trace = system.run(stop_when=workload_quiescent())
    completed = len(trace.completed_operations("reg"))
    total = len(trace.operations)
    live = trace.stop_reason == "stop-condition"
    linearizable = check_linearizable(trace.operations).ok
    msgs_per_op = trace.messages_sent / max(1, completed)
    return live, linearizable, completed, total, msgs_per_op


@experiment("E1")
def run(seed: int = 0, n: int = 5) -> ExperimentResult:
    headers = [
        "quorums", "crashes f", "live", "linearizable", "ops done",
        "msgs/op", "as expected",
    ]
    rows: List[list] = []
    ok = True
    majority_limit = (n - 1) // 2

    for f in range(n):
        for label, quorums, detector in (
            ("majority", MajorityQuorums(), None),
            ("sigma", SigmaQuorums(lambda d: d), SigmaOracle()),
        ):
            live, lin, done, total, mpo = _run_case(
                n, f, quorums, detector, seed
            )
            if label == "sigma":
                expected = live and lin
            else:
                # Majorities: live iff a majority stayed correct;
                # always safe.
                expected = lin and (live == (f <= majority_limit))
            ok = ok and expected
            rows.append(
                [
                    label, f, verdict_cell(live), verdict_cell(lin),
                    f"{done}/{total}", round(mpo, 1), verdict_cell(expected),
                ]
            )

    return ExperimentResult(
        experiment_id="E1",
        title="Atomic registers: ABD over majorities vs over Sigma "
        f"(n={n}, crashes 0..{n-1})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "Expected crossover: majority-ABD loses liveness (never safety) "
            f"once f > {majority_limit}; Sigma-ABD stays live through f={n-1}.",
        ],
    )
