"""E4 — Theorem 5, Figure 2: solving quittable consensus with Ψ.

Sweeps the branch Ψ commits to and the crash pattern; checks QC's
Termination / Uniform Agreement / Validity and reports which outcomes
materialise — proposals on the (Ω, Σ) branch, Q on the FS branch.
"""

from __future__ import annotations

from typing import List

from repro.consensus.interface import consensus_component
from repro.core.detectors import PsiOracle
from repro.core.detectors.psi import FS_BRANCH, OMEGA_SIGMA_BRANCH
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.experiments.hooks import agreement_summary
from repro.qc.psi_qc import PsiQCCore
from repro.qc.spec import Q
from repro.runner import Campaign, call, run_spec
from repro.sim.system import decided


def _proposals(n):
    return {p: f"v{p}" for p in range(n)}


def _qc_factory(n):
    proposals = _proposals(n)
    return consensus_component(lambda pid: PsiQCCore(proposals[pid]))


def case_spec(n, branch, pattern, seed, horizon=60_000):
    return run_spec(
        n=n,
        seed=seed,
        horizon=horizon,
        pattern=pattern,
        detector=PsiOracle(branch=branch),
        components=[("qc", call(_qc_factory, n))],
        stop=call(decided, "qc"),
        summarize=call(
            agreement_summary, "qc", "qc", tuple(sorted(_proposals(n).items()))
        ),
        tags={"branch": branch or "oracle-chosen"},
    )


@experiment("E4")
def run(seed: int = 0, n: int = 4) -> ExperimentResult:
    headers = [
        "Psi branch", "crashes", "qc valid", "outcome", "latency",
        "as expected",
    ]
    rows: List[list] = []
    ok = True

    cases = [
        (OMEGA_SIGMA_BRANCH, FailurePattern.crash_free(n), "proposal"),
        (OMEGA_SIGMA_BRANCH, FailurePattern(n, {0: 100, 1: 140}), "proposal"),
        (FS_BRANCH, FailurePattern(n, {0: 100}), "Q"),
        (FS_BRANCH, FailurePattern(n, {p: 80 + 20 * p for p in range(n - 1)}),
         "Q"),
        (None, FailurePattern.crash_free(n), "proposal"),
    ]
    campaign = Campaign(
        (case_spec(n, branch, pattern, seed) for branch, pattern, _ in cases),
        name="E4",
    )
    proposal_reprs = {repr(v) for v in _proposals(n).values()}
    for (branch, pattern, expected_kind), summary in zip(cases, campaign.run()):
        m = summary.metrics
        outcomes = m["outcomes"]
        if expected_kind == "Q":
            shape_ok = outcomes == [repr(Q)]
            outcome = "Q (quit)"
        else:
            shape_ok = all(v in proposal_reprs for v in outcomes)
            outcome = ", ".join(outcomes)
        expected = m["ok"] and shape_ok
        ok = ok and expected
        rows.append(
            [
                branch or "oracle-chosen",
                len(pattern.faulty),
                verdict_cell(m["ok"]),
                outcome,
                summary.latency("qc"),
                verdict_cell(expected),
            ]
        )

    return ExperimentResult(
        experiment_id="E4",
        title=f"Figure 2: quittable consensus from Psi (n={n})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "FS branch ⇒ everyone returns Q (legitimately: a failure "
            "occurred); (Omega,Sigma) branch ⇒ consensus on a proposal, "
            "crashes notwithstanding — quitting is an option, never forced.",
        ],
    )
