"""E4 — Theorem 5, Figure 2: solving quittable consensus with Ψ.

Sweeps the branch Ψ commits to and the crash pattern; checks QC's
Termination / Uniform Agreement / Validity and reports which outcomes
materialise — proposals on the (Ω, Σ) branch, Q on the FS branch.
"""

from __future__ import annotations

from typing import List

from repro.analysis.properties import check_qc
from repro.consensus.interface import consensus_component
from repro.core.detectors import PsiOracle
from repro.core.detectors.psi import FS_BRANCH, OMEGA_SIGMA_BRANCH
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.qc.psi_qc import PsiQCCore
from repro.qc.spec import Q
from repro.sim.system import SystemBuilder, decided


def _run(n, branch, pattern, seed, horizon=60_000):
    proposals = {p: f"v{p}" for p in range(n)}
    trace = (
        SystemBuilder(n=n, seed=seed, horizon=horizon)
        .pattern(pattern)
        .detector(PsiOracle(branch=branch))
        .component(
            "qc", consensus_component(lambda pid: PsiQCCore(proposals[pid]))
        )
        .build()
        .run(stop_when=decided("qc"))
    )
    return trace, check_qc(trace, proposals, "qc"), proposals


@experiment("E4")
def run(seed: int = 0, n: int = 4) -> ExperimentResult:
    headers = [
        "Psi branch", "crashes", "qc valid", "outcome", "latency",
        "as expected",
    ]
    rows: List[list] = []
    ok = True

    cases = [
        (OMEGA_SIGMA_BRANCH, FailurePattern.crash_free(n), "proposal"),
        (OMEGA_SIGMA_BRANCH, FailurePattern(n, {0: 100, 1: 140}), "proposal"),
        (FS_BRANCH, FailurePattern(n, {0: 100}), "Q"),
        (FS_BRANCH, FailurePattern(n, {p: 80 + 20 * p for p in range(n - 1)}),
         "Q"),
        (None, FailurePattern.crash_free(n), "proposal"),
    ]
    for branch, pattern, expected_kind in cases:
        trace, verdict, proposals = _run(n, branch, pattern, seed)
        outcomes = {d.value for d in trace.decisions}
        if expected_kind == "Q":
            shape_ok = outcomes == {Q}
            outcome = "Q (quit)"
        else:
            shape_ok = all(v in proposals.values() for v in outcomes)
            outcome = ", ".join(sorted(repr(v) for v in outcomes))
        expected = verdict.ok and shape_ok
        ok = ok and expected
        rows.append(
            [
                branch or "oracle-chosen",
                len(pattern.faulty),
                verdict_cell(verdict.ok),
                outcome,
                trace.decision_latency("qc"),
                verdict_cell(expected),
            ]
        )

    return ExperimentResult(
        experiment_id="E4",
        title=f"Figure 2: quittable consensus from Psi (n={n})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "FS branch ⇒ everyone returns Q (legitimately: a failure "
            "occurred); (Omega,Sigma) branch ⇒ consensus on a proposal, "
            "crashes notwithstanding — quitting is an option, never forced.",
        ],
    )
