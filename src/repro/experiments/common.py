"""Shared experiment plumbing: results, registry, rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

from repro.analysis.stats import format_table


@dataclass
class ExperimentResult:
    """One experiment's regenerated table plus its overall verdict.

    ``ok`` means every property clause the experiment checks held —
    the reproduction's analogue of "the figure looks like the paper's".
    Rows where a *negative* result is expected (e.g. majority-ABD
    blocking in a minority-correct environment) count as ok when the
    expected failure occurred.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]]
    ok: bool
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            format_table(self.headers, self.rows),
            f"verdict: {'OK' if self.ok else 'MISMATCH'}",
        ]
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def experiment(experiment_id: str):
    """Decorator registering a ``run(seed=...) -> ExperimentResult``."""

    def decorate(fn):
        _REGISTRY[experiment_id] = fn
        fn.experiment_id = experiment_id
        return fn

    return decorate


def all_experiments() -> Dict[str, Callable[..., ExperimentResult]]:
    """The registry, importing every experiment module first."""
    # Imports are deferred so `import repro` stays light.
    from repro.experiments import (  # noqa: F401
        e01_register,
        e02_extract_sigma,
        e03_consensus,
        e04_qc,
        e05_extract_psi,
        e06_equivalence,
        e07_nbac,
        e08_sigma_ex_nihilo,
        e09_heartbeats,
        e10_multivalued,
        e11_smr,
        e12_flp,
        e13_hierarchy,
    )

    return dict(
        sorted(_REGISTRY.items(), key=lambda kv: (len(kv[0]), kv[0]))
    )


def verdict_cell(ok: bool) -> str:
    return "yes" if ok else "NO"
