"""E2 — Theorem 1 (necessity), Figure 1: extracting Σ from registers.

Runs the Figure 1 transformation against two register black boxes and
checks the emitted Σ-output histories against Σ's specification:

* ABD-over-Σ (a detector-using implementation) in wait-free
  environments, and
* majority-ABD with *no detector anywhere* in majority-correct
  environments — simultaneously the "Σ for free" demonstration.
"""

from __future__ import annotations

from typing import List

from repro.core.detectors import SigmaOracle
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.registers.abd import RegisterBank
from repro.registers.extract_sigma import SigmaExtraction, initial_registers
from repro.registers.participants import ParticipantTracker
from repro.registers.quorums import MajorityQuorums, SigmaQuorums
from repro.runner import Campaign, call, ref, run_spec


def _identity(d):
    return d


def _ptrack_factory():
    return lambda pid: ParticipantTracker()


def _bank_factory(kind, n):
    quorums = (
        MajorityQuorums() if kind == "majority" else SigmaQuorums(_identity)
    )
    return lambda pid: RegisterBank(quorums, initial=initial_registers(n))


def _xsigma_factory():
    return lambda pid: SigmaExtraction()


def _summarize(system, trace):
    from repro.core.specs import check_sigma

    verdict = check_sigma(trace.annotations["sigma-extraction"], trace.pattern)
    rounds = [
        system.component_at(p, "xsigma").rounds_completed
        for p in trace.pattern.correct
    ]
    return {
        "ok": verdict.ok,
        "holds_from": verdict.holds_from,
        "min_rounds": min(rounds) if rounds else 0,
    }


def case_spec(n, kind, pattern, seed, horizon=20_000):
    """One Figure 1 extraction run over ``kind`` quorums."""
    return run_spec(
        n=n,
        seed=seed,
        horizon=horizon,
        pattern=pattern,
        detector=SigmaOracle() if kind == "sigma" else None,
        components=[
            ("ptrack", call(_ptrack_factory)),
            ("reg", call(_bank_factory, kind, n)),
            ("xsigma", call(_xsigma_factory)),
        ],
        summarize=ref(_summarize),
        tags={"kind": kind, "crashes": len(pattern.faulty)},
    )


@experiment("E2")
def run(seed: int = 0, n: int = 4) -> ExperimentResult:
    headers = [
        "register impl", "detector", "crashes", "sigma valid",
        "holds from", "min rounds", "messages",
    ]
    rows: List[list] = []
    ok = True

    cases = [
        ("ABD/Sigma", "sigma", FailurePattern.crash_free(n)),
        ("ABD/Sigma", "sigma",
         FailurePattern(n, {pid: 150 + 50 * pid for pid in range(n - 1)})),
        ("ABD/majority", "majority", FailurePattern.crash_free(n)),
        ("ABD/majority", "majority", FailurePattern(n, {n - 1: 200})),
    ]
    campaign = Campaign(
        (case_spec(n, kind, pattern, seed) for _, kind, pattern in cases),
        name="E2",
    )
    for (label, kind, pattern), summary in zip(cases, campaign.run()):
        m = summary.metrics
        ok = ok and m["ok"]
        rows.append(
            [
                label,
                "Sigma oracle" if kind == "sigma" else "none (ex nihilo)",
                len(pattern.faulty),
                verdict_cell(m["ok"]),
                m["holds_from"],
                m["min_rounds"],
                summary.messages_sent,
            ]
        )

    return ExperimentResult(
        experiment_id="E2",
        title="Figure 1: emulating Sigma from any register implementation "
        f"(n={n})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "Rows 3-4 extract a full Sigma from a detector-free majority-ABD "
            "— the paper's 'something we can get for free' remark, executed.",
        ],
    )
