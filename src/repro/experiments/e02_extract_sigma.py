"""E2 — Theorem 1 (necessity), Figure 1: extracting Σ from registers.

Runs the Figure 1 transformation against two register black boxes and
checks the emitted Σ-output histories against Σ's specification:

* ABD-over-Σ (a detector-using implementation) in wait-free
  environments, and
* majority-ABD with *no detector anywhere* in majority-correct
  environments — simultaneously the "Σ for free" demonstration.
"""

from __future__ import annotations

from typing import List

from repro.core.detectors import SigmaOracle
from repro.core.failure_pattern import FailurePattern
from repro.core.specs import check_sigma
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.registers.abd import RegisterBank
from repro.registers.extract_sigma import SigmaExtraction, initial_registers
from repro.registers.participants import ParticipantTracker
from repro.registers.quorums import MajorityQuorums, SigmaQuorums
from repro.sim.system import SystemBuilder


def _run_case(n, pattern, quorums, detector, seed, horizon=20_000):
    builder = (
        SystemBuilder(n=n, seed=seed, horizon=horizon)
        .pattern(pattern)
        .component("ptrack", lambda pid: ParticipantTracker())
        .component(
            "reg",
            lambda pid: RegisterBank(quorums, initial=initial_registers(n)),
        )
        .component("xsigma", lambda pid: SigmaExtraction())
    )
    if detector is not None:
        builder.detector(detector)
    system = builder.build()
    trace = system.run()
    verdict = check_sigma(trace.annotations["sigma-extraction"], pattern)
    rounds = [
        system.component_at(p, "xsigma").rounds_completed
        for p in pattern.correct
    ]
    return verdict, min(rounds) if rounds else 0, trace.messages_sent


@experiment("E2")
def run(seed: int = 0, n: int = 4) -> ExperimentResult:
    headers = [
        "register impl", "detector", "crashes", "sigma valid",
        "holds from", "min rounds", "messages",
    ]
    rows: List[list] = []
    ok = True

    cases = [
        ("ABD/Sigma", SigmaQuorums(lambda d: d), SigmaOracle(),
         FailurePattern.crash_free(n)),
        ("ABD/Sigma", SigmaQuorums(lambda d: d), SigmaOracle(),
         FailurePattern(n, {pid: 150 + 50 * pid for pid in range(n - 1)})),
        ("ABD/majority", MajorityQuorums(), None,
         FailurePattern.crash_free(n)),
        ("ABD/majority", MajorityQuorums(), None,
         FailurePattern(n, {n - 1: 200})),
    ]
    for label, quorums, detector, pattern in cases:
        verdict, rounds, msgs = _run_case(n, pattern, quorums, detector, seed)
        ok = ok and verdict.ok
        rows.append(
            [
                label,
                "Sigma oracle" if detector else "none (ex nihilo)",
                len(pattern.faulty),
                verdict_cell(verdict.ok),
                verdict.holds_from,
                rounds,
                msgs,
            ]
        )

    return ExperimentResult(
        experiment_id="E2",
        title="Figure 1: emulating Sigma from any register implementation "
        f"(n={n})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "Rows 3-4 extract a full Sigma from a detector-free majority-ABD "
            "— the paper's 'something we can get for free' remark, executed.",
        ],
    )
