"""E9 — heartbeat detectors: stabilisation vs irreducibility.

Two series:

* under benign timing (narrow uniform delays) the heartbeat
  implementations of Ω, FS and P all satisfy their specs — eventual
  detectors are *implementable* under partial synchrony;
* under heavy-tailed delays, shrinking the timeout trades detection
  latency against forged suspicions: the perpetual-accuracy detectors
  (FS, P) break, Ω (eventual accuracy) self-heals via adaptive
  timeouts.  The executable reason FS stays an oracle in (Ψ, FS).
"""

from __future__ import annotations

from typing import List

from repro.core.failure_pattern import FailurePattern
from repro.ex_nihilo.fs_heartbeat import FSFromHeartbeats
from repro.ex_nihilo.omega_heartbeat import OmegaFromHeartbeats
from repro.ex_nihilo.perfect_synchronous import PerfectFromTimeouts
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.experiments.hooks import annotation_check, probe_factory
from repro.runner import Campaign, call, run_spec
from repro.sim.network import SpikeDelay, UniformDelay

_IMPLS = {
    "omega-impl": OmegaFromHeartbeats,
    "fs-impl": FSFromHeartbeats,
    "p-impl": PerfectFromTimeouts,
}


def _impl_factory(name, kwargs_items):
    maker = _IMPLS[name]
    kwargs = dict(kwargs_items)
    return lambda pid: maker(**kwargs)


def case_spec(name, checker, kwargs, delays, pattern, seed, horizon=25_000):
    return run_spec(
        n=3,
        seed=seed,
        horizon=horizon,
        pattern=pattern,
        delay_model=delays,
        components=[
            (name, call(_impl_factory, name, tuple(sorted(kwargs.items())))),
            ("probe", call(probe_factory, name, "h")),
        ],
        summarize=call(annotation_check, checker, "h"),
        tags={"probe_seed": seed},
    )


@experiment("E9")
def run(seed: int = 0) -> ExperimentResult:
    headers = [
        "detector", "timing", "timeout", "crashes", "spec holds",
        "as expected",
    ]
    rows: List[list] = []
    ok = True
    benign = UniformDelay(1, 5)
    hostile = SpikeDelay(base_hi=5, spike_hi=400, spike_probability=0.05)
    crash = FailurePattern(3, {2: 400})
    clean = FailurePattern.crash_free(3)

    cases = [
        ("Omega/hb", {}, "omega", "omega-impl", benign, crash, 60, True),
        ("Omega/hb", {"initial_timeout": 20}, "omega", "omega-impl",
         hostile, clean, 20, True),
        ("FS/hb", {"initial_timeout": 200}, "fs", "fs-impl",
         benign, crash, 200, True),
        ("FS/hb", {"initial_timeout": 15}, "fs", "fs-impl",
         hostile, clean, 15, False),
        ("P/hb", {"timeout": 250}, "perfect", "p-impl",
         benign, crash, 250, True),
        ("P/hb", {"timeout": 12}, "perfect", "p-impl",
         hostile, clean, 12, False),
    ]

    # Positive cases are one cell each; negative (forgery) cases are
    # probabilistic, so they fan out over a handful of probe seeds and
    # count as expected if *any* seed breaks the spec.
    jobs = []
    slices = []
    for label, kwargs, checker, name, delays, pattern, timeout, expect_ok in cases:
        seeds = [seed] if expect_ok else list(range(seed, seed + 6))
        slices.append((len(jobs), len(seeds)))
        jobs.extend(
            case_spec(name, checker, kwargs, delays, pattern, s)
            for s in seeds
        )

    summaries = Campaign(jobs, name="E9").run().summaries
    for case, (start, count) in zip(cases, slices):
        label, kwargs, checker, name, delays, pattern, timeout, expect_ok = case
        verdicts = [s.metrics["ok"] for s in summaries[start:start + count]]
        if expect_ok:
            holds = verdicts[0]
            expected = holds
        else:
            broken = not all(verdicts)
            holds = not broken
            expected = broken
        ok = ok and expected
        rows.append(
            [
                label,
                "benign" if delays is benign else "spiky",
                timeout,
                len(pattern.faulty),
                verdict_cell(bool(holds)),
                verdict_cell(expected),
            ]
        )

    return ExperimentResult(
        experiment_id="E9",
        title="Heartbeat implementations: partial synchrony giveth, "
        "asynchrony taketh away (n=3)",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "Perpetual-accuracy detectors (FS, P) forge outputs under delay "
            "spikes with tight timeouts; Omega's eventual accuracy "
            "self-heals by doubling timeouts.",
        ],
    )
