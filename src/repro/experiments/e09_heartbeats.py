"""E9 — heartbeat detectors: stabilisation vs irreducibility.

Two series:

* under benign timing (narrow uniform delays) the heartbeat
  implementations of Ω, FS and P all satisfy their specs — eventual
  detectors are *implementable* under partial synchrony;
* under heavy-tailed delays, shrinking the timeout trades detection
  latency against forged suspicions: the perpetual-accuracy detectors
  (FS, P) break, Ω (eventual accuracy) self-heals via adaptive
  timeouts.  The executable reason FS stays an oracle in (Ψ, FS).
"""

from __future__ import annotations

from typing import List

from repro.core.failure_pattern import FailurePattern
from repro.core.specs import check_fs, check_omega, check_perfect
from repro.ex_nihilo.fs_heartbeat import FSFromHeartbeats
from repro.ex_nihilo.omega_heartbeat import OmegaFromHeartbeats
from repro.ex_nihilo.perfect_synchronous import PerfectFromTimeouts
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.sim.network import SpikeDelay, UniformDelay
from repro.sim.probes import OutputRecorder
from repro.sim.system import SystemBuilder


def _run(factory, name, checker, pattern, delays, seed, horizon=25_000):
    system = (
        SystemBuilder(n=3, seed=seed, horizon=horizon)
        .pattern(pattern)
        .delays(delays)
        .component(name, factory)
        .component("probe", lambda pid: OutputRecorder(name, "h"))
        .build()
    )
    trace = system.run()
    return checker(trace.annotations["h"], pattern)


@experiment("E9")
def run(seed: int = 0) -> ExperimentResult:
    headers = [
        "detector", "timing", "timeout", "crashes", "spec holds",
        "as expected",
    ]
    rows: List[list] = []
    ok = True
    benign = UniformDelay(1, 5)
    hostile = SpikeDelay(base_hi=5, spike_hi=400, spike_probability=0.05)
    crash = FailurePattern(3, {2: 400})
    clean = FailurePattern.crash_free(3)

    cases = [
        ("Omega/hb", lambda pid: OmegaFromHeartbeats(), check_omega,
         "omega-impl", benign, crash, 60, True),
        ("Omega/hb", lambda pid: OmegaFromHeartbeats(initial_timeout=20),
         check_omega, "omega-impl", hostile, clean, 20, True),
        ("FS/hb", lambda pid: FSFromHeartbeats(initial_timeout=200),
         check_fs, "fs-impl", benign, crash, 200, True),
        ("FS/hb", lambda pid: FSFromHeartbeats(initial_timeout=15),
         check_fs, "fs-impl", hostile, clean, 15, False),
        ("P/hb", lambda pid: PerfectFromTimeouts(timeout=250),
         check_perfect, "p-impl", benign, crash, 250, True),
        ("P/hb", lambda pid: PerfectFromTimeouts(timeout=12),
         check_perfect, "p-impl", hostile, clean, 12, False),
    ]
    for label, factory, checker, name, delays, pattern, timeout, expect_ok in cases:
        holds = None
        if expect_ok:
            verdict = _run(factory, name, checker, pattern, delays, seed)
            holds = verdict.ok
            expected = holds
        else:
            # Forgery is probabilistic: accept the expectation if any of
            # a few seeds breaks the spec.
            broken = False
            for s in range(seed, seed + 6):
                verdict = _run(factory, name, checker, pattern, delays, s)
                if not verdict.ok:
                    broken = True
                    break
            holds = not broken
            expected = broken
        ok = ok and expected
        rows.append(
            [
                label,
                "benign" if delays is benign else "spiky",
                timeout,
                len(pattern.faulty),
                verdict_cell(bool(holds)),
                verdict_cell(expected),
            ]
        )

    return ExperimentResult(
        experiment_id="E9",
        title="Heartbeat implementations: partial synchrony giveth, "
        "asynchrony taketh away (n=3)",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "Perpetual-accuracy detectors (FS, P) forge outputs under delay "
            "spikes with tight timeouts; Omega's eventual accuracy "
            "self-heals by doubling timeouts.",
        ],
    )
