"""The experiment suite: every theorem/figure as a regenerable table.

The paper is theory — its "evaluation" is a set of theorems and five
algorithm figures.  Each module here turns one of them into a runnable
experiment that prints a table of property verdicts and costs (see
DESIGN.md §4 for the index):

====  =========================================================
E1    Theorem 1 (sufficiency): registers from Σ vs. majorities
E2    Theorem 1 (necessity), Figure 1: Σ from registers
E3    Corollaries 2-4: consensus from (Ω, Σ); the Ω-alone crossover
E4    Theorem 5, Figure 2: QC from Ψ
E5    Theorem 6, Figure 3: Ψ from QC
E6    Theorem 8, Figures 4-5: NBAC ⇔ QC + FS
E7    Corollary 10: NBAC from (Ψ, FS), crash-timing sweep
E8    §1 remark: Σ ex nihilo under majority
E9    heartbeat detectors: stabilisation and irreducibility
E10   [20]: binary → multivalued consensus
E11   [17, 21]: registers from consensus (SMR)
E12   FLP [8]: adversarial non-termination without detectors
E13   the detector hierarchy: every reduction, spec-checked
====  =========================================================

Run them all::

    python -m repro.experiments            # every experiment
    python -m repro.experiments E3 E7      # a selection

Each ``run_*`` function is deterministic given its seed and returns an
:class:`~repro.experiments.common.ExperimentResult`; the benchmark
harness under ``benchmarks/`` times the same functions.
"""

from repro.experiments.common import ExperimentResult, all_experiments

__all__ = ["ExperimentResult", "all_experiments"]
