"""E10 — the [20] substrate: binary → multivalued consensus.

Sweeps value domains and crash patterns through the candidate-election
transformation over binary instances, reporting rounds used and
property verdicts.
"""

from __future__ import annotations

from typing import List

from repro.analysis.properties import check_consensus
from repro.consensus.multivalued import MultivaluedFromBinaryCore
from repro.core.detectors import omega_sigma_oracle
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.protocols.base import CoreComponent
from repro.sim.system import SystemBuilder, decided


def _run(proposals, pattern, seed, horizon=150_000):
    cores = {}

    def factory(pid):
        core = MultivaluedFromBinaryCore(proposals[pid])
        cores[pid] = core
        return CoreComponent(core)

    trace = (
        SystemBuilder(n=len(proposals), seed=seed, horizon=horizon)
        .pattern(pattern)
        .detector(omega_sigma_oracle())
        .component("mv", factory)
        .build()
        .run(stop_when=decided("mv"))
    )
    verdict = check_consensus(trace, proposals, "mv")
    rounds = max(
        (cores[p].rounds_used for p in pattern.correct), default=0
    )
    return verdict, rounds, trace


@experiment("E10")
def run(seed: int = 0, n: int = 4) -> ExperimentResult:
    headers = [
        "value domain", "crashes", "valid", "decided", "binary rounds",
        "latency",
    ]
    rows: List[list] = []
    ok = True

    cases = [
        ({p: f"string-{p}" for p in range(n)}, FailurePattern.crash_free(n)),
        ({p: ("tuple", p, p * p) for p in range(n)},
         FailurePattern(n, {0: 80})),
        ({p: "unanimous" for p in range(n)},
         FailurePattern(n, {0: 60, 1: 90})),
        ({p: p for p in range(n)},
         FailurePattern(n, {p: 50 + 20 * p for p in range(n - 1)})),
    ]
    for proposals, pattern in cases:
        verdict, rounds, trace = _run(proposals, pattern, seed)
        ok = ok and verdict.ok
        domain = type(next(iter(proposals.values()))).__name__
        decided_repr = ",".join(
            sorted({repr(v) for v in verdict.decisions.values()})
        )
        rows.append(
            [
                domain,
                len(pattern.faulty),
                verdict_cell(verdict.ok),
                decided_repr[:40],
                rounds,
                trace.decision_latency("mv"),
            ]
        )

    return ExperimentResult(
        experiment_id="E10",
        title="[20]: multivalued consensus from binary instances "
        f"(n={n})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "Footnote 6's enabling technique: QC/consensus algorithms can "
            "be assumed multivalued without loss of generality.",
        ],
    )
