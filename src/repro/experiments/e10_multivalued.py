"""E10 — the [20] substrate: binary → multivalued consensus.

Sweeps value domains and crash patterns through the candidate-election
transformation over binary instances, reporting rounds used and
property verdicts.
"""

from __future__ import annotations

from typing import List

from repro.consensus.multivalued import MultivaluedFromBinaryCore
from repro.core.detectors import omega_sigma_oracle
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.experiments.hooks import agreement_summary
from repro.protocols.base import CoreComponent
from repro.runner import Campaign, call, run_spec
from repro.sim.system import decided


def _mv_factory(proposals_items):
    proposals = dict(proposals_items)
    return lambda pid: CoreComponent(MultivaluedFromBinaryCore(proposals[pid]))


def _summarize(proposals_items):
    base = agreement_summary("consensus", "mv", proposals_items)

    def hook(system, trace):
        metrics = dict(base(system, trace))
        metrics["rounds"] = max(
            (
                system.component_at(p, "mv").core.rounds_used
                for p in trace.pattern.correct
            ),
            default=0,
        )
        return metrics

    return hook


def case_spec(proposals, pattern, seed, horizon=150_000):
    items = tuple(sorted(proposals.items()))
    return run_spec(
        n=len(proposals),
        seed=seed,
        horizon=horizon,
        pattern=pattern,
        detector=omega_sigma_oracle(),
        components=[("mv", call(_mv_factory, items))],
        stop=call(decided, "mv"),
        summarize=call(_summarize, items),
    )


@experiment("E10")
def run(seed: int = 0, n: int = 4) -> ExperimentResult:
    headers = [
        "value domain", "crashes", "valid", "decided", "binary rounds",
        "latency",
    ]
    rows: List[list] = []
    ok = True

    cases = [
        ({p: f"string-{p}" for p in range(n)}, FailurePattern.crash_free(n)),
        ({p: ("tuple", p, p * p) for p in range(n)},
         FailurePattern(n, {0: 80})),
        ({p: "unanimous" for p in range(n)},
         FailurePattern(n, {0: 60, 1: 90})),
        ({p: p for p in range(n)},
         FailurePattern(n, {p: 50 + 20 * p for p in range(n - 1)})),
    ]
    campaign = Campaign(
        (case_spec(proposals, pattern, seed) for proposals, pattern in cases),
        name="E10",
    )
    for (proposals, pattern), summary in zip(cases, campaign.run()):
        m = summary.metrics
        ok = ok and m["ok"]
        domain = type(next(iter(proposals.values()))).__name__
        decided_repr = ",".join(m["outcomes"])
        rows.append(
            [
                domain,
                len(pattern.faulty),
                verdict_cell(m["ok"]),
                decided_repr[:40],
                m["rounds"],
                summary.latency("mv"),
            ]
        )

    return ExperimentResult(
        experiment_id="E10",
        title="[20]: multivalued consensus from binary instances "
        f"(n={n})",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "Footnote 6's enabling technique: QC/consensus algorithms can "
            "be assumed multivalued without loss of generality.",
        ],
    )
