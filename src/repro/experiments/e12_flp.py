"""E12 — FLP context [8]: no detector, no consensus (unless you flip coins).

A simulator cannot prove impossibility, but it can stage the adversary
from the proof: against a *deterministic* detector-free algorithm
(fixed leader + ex-nihilo majority quorums), starving one process —
indistinguishable from a crash — or withholding its messages keeps the
run undecided past any horizon, while the identical scenario with
(Ω, Σ) terminates.  Ben-Or's randomized algorithm completes the
triptych: the other classical escape from FLP, terminating with
probability 1 under the fair schedule with no oracle at all.  Safety is
checked to survive every one of these adversaries.
"""

from __future__ import annotations

import zlib
from typing import List

from repro.consensus.ben_or import BenOrConsensusCore
from repro.consensus.interface import consensus_component
from repro.consensus.paxos import OmegaSigmaConsensusCore
from repro.core.detectors import omega_sigma_oracle
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.runner import Campaign, call, ref, run_spec
from repro.sim.network import HoldingDelivery
from repro.sim.scheduler import StarvationScheduler
from repro.sim.system import decided


def _stable_bit(value) -> int:
    """A session-stable 0/1 from any value (``hash`` is salted)."""
    return zlib.crc32(repr(value).encode()) % 2


def _fixed_leader_core(proposal, n):
    core = OmegaSigmaConsensusCore(
        proposal=proposal,
        omega_extract=lambda d: 0,
        sigma_extract=lambda d: None,
    )
    core._quorum_reached = lambda responders: len(responders) >= n // 2 + 1
    return core


def _proposals(n):
    return {p: f"v{p}" for p in range(n)}


def _fixed_leader_factory(n):
    proposals = _proposals(n)
    return consensus_component(
        lambda pid: _fixed_leader_core(proposals[pid], n)
    )


def _omega_sigma_factory(n):
    proposals = _proposals(n)
    return consensus_component(
        lambda pid: OmegaSigmaConsensusCore(proposals[pid])
    )


def _ben_or_factory(n, coin_seed):
    proposals = _proposals(n)
    return consensus_component(
        lambda pid: BenOrConsensusCore(
            _stable_bit(proposals[pid]), coin_seed=coin_seed
        )
    )


def _starve_leader():
    return StarvationScheduler({0})


def _leader_mail_held():
    return HoldingDelivery(lambda m, now: m.dest == 0)


def _summarize(system, trace):
    return {
        "decided": bool(trace.decisions),
        "agreed": len({repr(d.value) for d in trace.decisions}) <= 1,
    }


def case_spec(n, seed, detector, factory_call, scheduler=None, delivery=None,
              horizon=30_000):
    return run_spec(
        n=n,
        seed=seed,
        horizon=horizon,
        pattern=FailurePattern.crash_free(n),
        detector=detector,
        components=[("consensus", factory_call)],
        stop=call(decided, "consensus"),
        scheduler=scheduler,
        delivery_policy=delivery,
        summarize=ref(_summarize),
    )


@experiment("E12")
def run(seed: int = 0, n: int = 3) -> ExperimentResult:
    headers = ["algorithm", "adversary", "decided", "safe", "as expected"]
    rows: List[list] = []
    ok = True

    adversaries = [
        ("starve leader", call(_starve_leader), None),
        ("hold leader's mail", None, call(_leader_mail_held)),
        ("fair run", None, None),
    ]

    jobs = []
    meta = []  # (algorithm, adversary label, expectation kind)
    for label, scheduler, delivery in adversaries:
        jobs.append(
            case_spec(
                n, seed, None, call(_fixed_leader_factory, n),
                scheduler=scheduler, delivery=delivery,
            )
        )
        meta.append(("ex-nihilo (no detector)", label, "free"))
        # (Omega, Sigma) and coin-flipping Ben-Or: both escape FLP on
        # the fair schedule — one with an oracle, one with randomness.
        if label == "fair run":
            jobs.append(
                case_spec(
                    n, seed, omega_sigma_oracle(),
                    call(_omega_sigma_factory, n),
                    scheduler=scheduler, delivery=delivery, horizon=60_000,
                )
            )
            meta.append(("(Omega,Sigma)", label, "live"))
            jobs.append(
                case_spec(
                    n, seed, None, call(_ben_or_factory, n, seed),
                    scheduler=scheduler, delivery=delivery, horizon=120_000,
                )
            )
            meta.append(("Ben-Or (coins, no detector)", label, "live"))

    for (algorithm, label, kind), summary in zip(
        meta, Campaign(jobs, name="E12").run()
    ):
        m = summary.metrics
        if kind == "free":
            # The deterministic detector-free run decides iff the
            # schedule is fair.
            expected = m["agreed"] and (m["decided"] == (label == "fair run"))
        else:
            expected = m["agreed"] and m["decided"]
        ok = ok and expected
        rows.append(
            [
                algorithm, label, verdict_cell(m["decided"]),
                verdict_cell(m["agreed"]), verdict_cell(expected),
            ]
        )

    return ExperimentResult(
        experiment_id="E12",
        title="FLP staged: detector-free consensus stalls under the "
        f"classic adversary (n={n}, crash-free)",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "A starved process is indistinguishable from a crashed one — "
            "the indistinguishability at the heart of FLP.  Safety never "
            "breaks; liveness without a detector does.",
        ],
    )
