"""E12 — FLP context [8]: no detector, no consensus (unless you flip coins).

A simulator cannot prove impossibility, but it can stage the adversary
from the proof: against a *deterministic* detector-free algorithm
(fixed leader + ex-nihilo majority quorums), starving one process —
indistinguishable from a crash — or withholding its messages keeps the
run undecided past any horizon, while the identical scenario with
(Ω, Σ) terminates.  Ben-Or's randomized algorithm completes the
triptych: the other classical escape from FLP, terminating with
probability 1 under the fair schedule with no oracle at all.  Safety is
checked to survive every one of these adversaries.
"""

from __future__ import annotations

from typing import List

from repro.consensus.interface import consensus_component
from repro.consensus.paxos import OmegaSigmaConsensusCore
from repro.core.detectors import omega_sigma_oracle
from repro.core.failure_pattern import FailurePattern
from repro.experiments.common import ExperimentResult, experiment, verdict_cell
from repro.sim.network import HoldingDelivery
from repro.sim.scheduler import StarvationScheduler
from repro.sim.system import SystemBuilder, decided


def _fixed_leader_core(proposal, n):
    core = OmegaSigmaConsensusCore(
        proposal=proposal,
        omega_extract=lambda d: 0,
        sigma_extract=lambda d: None,
    )
    core._quorum_reached = lambda responders: len(responders) >= n // 2 + 1
    return core


def _run(n, seed, detector, core_factory, scheduler=None, delivery=None,
         horizon=30_000):
    proposals = {p: f"v{p}" for p in range(n)}
    builder = (
        SystemBuilder(n=n, seed=seed, horizon=horizon)
        .pattern(FailurePattern.crash_free(n))
        .component(
            "consensus",
            consensus_component(lambda pid: core_factory(proposals[pid])),
        )
    )
    if detector is not None:
        builder.detector(detector)
    if scheduler is not None:
        builder.scheduler(scheduler)
    if delivery is not None:
        builder.delivery(delivery)
    trace = builder.build().run(stop_when=decided("consensus"))
    agreed = len({repr(d.value) for d in trace.decisions}) <= 1
    return trace, agreed


@experiment("E12")
def run(seed: int = 0, n: int = 3) -> ExperimentResult:
    headers = ["algorithm", "adversary", "decided", "safe", "as expected"]
    rows: List[list] = []
    ok = True

    adversaries = [
        ("starve leader", StarvationScheduler({0}), None),
        ("hold leader's mail", None, HoldingDelivery(lambda m, now: m.dest == 0)),
        ("fair run", None, None),
    ]
    for label, scheduler, delivery in adversaries:
        # Detector-free attempt.
        trace, agreed = _run(
            n, seed, None, lambda v: _fixed_leader_core(v, n),
            scheduler=scheduler, delivery=delivery,
        )
        decided_free = bool(trace.decisions)
        expected_free = agreed and (decided_free == (label == "fair run"))
        ok = ok and expected_free
        rows.append(
            ["ex-nihilo (no detector)", label, verdict_cell(decided_free),
             verdict_cell(agreed), verdict_cell(expected_free)]
        )

        # (Omega, Sigma) and coin-flipping Ben-Or: both escape FLP on
        # the fair schedule — one with an oracle, one with randomness.
        if label == "fair run":
            trace, agreed = _run(
                n, seed, omega_sigma_oracle(),
                lambda v: OmegaSigmaConsensusCore(v),
                scheduler=scheduler, delivery=delivery, horizon=60_000,
            )
            expected = agreed and bool(trace.decisions)
            ok = ok and expected
            rows.append(
                ["(Omega,Sigma)", label,
                 verdict_cell(bool(trace.decisions)),
                 verdict_cell(agreed), verdict_cell(expected)]
            )

            from repro.consensus.ben_or import BenOrConsensusCore

            trace, agreed = _run(
                n, seed, None,
                lambda v: BenOrConsensusCore(hash(v) % 2, coin_seed=seed),
                scheduler=scheduler, delivery=delivery, horizon=120_000,
            )
            expected = agreed and bool(trace.decisions)
            ok = ok and expected
            rows.append(
                ["Ben-Or (coins, no detector)", label,
                 verdict_cell(bool(trace.decisions)),
                 verdict_cell(agreed), verdict_cell(expected)]
            )

    return ExperimentResult(
        experiment_id="E12",
        title="FLP staged: detector-free consensus stalls under the "
        f"classic adversary (n={n}, crash-free)",
        headers=headers,
        rows=rows,
        ok=ok,
        notes=[
            "A starved process is indistinguishable from a crashed one — "
            "the indistinguishability at the heart of FLP.  Safety never "
            "breaks; liveness without a detector does.",
        ],
    )
