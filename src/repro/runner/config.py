"""Process-wide execution defaults for campaigns.

The experiment modules call ``Campaign.run()`` with no executor
arguments; what that means — serial or pooled, cached or not — is
decided here, so one CLI flag (or environment variable, for CI and
benches) threads through every sweep without touching experiment
signatures.

Resolution order for each knob: explicit argument at the call site,
then :func:`configure`'d value, then environment variable, then the
conservative default (serial, no cache).

Environment variables:

* ``REPRO_RUNNER_JOBS`` — worker count (``0`` = all cores, ``1`` = serial);
* ``REPRO_RUNNER_CACHE`` — ``off``/``0`` disables, ``on``/``1`` uses the
  default directory, anything else is used as the cache directory path;
* ``REPRO_RUNNER_TIMEOUT`` — per-job wall-clock budget in seconds
  (``0`` or unset = no limit).
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.runner.cache import ResultCache

_workers: Optional[int] = None
_cache: Optional[Union[bool, ResultCache]] = None
_timeout: Optional[float] = None


def configure(
    workers: Optional[int] = None,
    cache: Optional[Union[bool, str, ResultCache]] = None,
    timeout: Optional[float] = None,
) -> None:
    """Set process-wide defaults (CLI entry points call this once)."""
    global _workers, _cache, _timeout
    if workers is not None:
        _workers = workers
    if cache is not None:
        if isinstance(cache, str):
            _cache = ResultCache(cache)
        else:
            _cache = cache
    if timeout is not None:
        _timeout = timeout


def reset() -> None:
    """Back to built-in defaults (used by tests)."""
    global _workers, _cache, _timeout
    _workers = None
    _cache = None
    _timeout = None


def resolve_workers(workers: Optional[int] = None) -> Optional[int]:
    if workers is not None:
        return workers
    if _workers is not None:
        return _workers
    env = os.environ.get("REPRO_RUNNER_JOBS")
    if env is not None:
        try:
            return int(env)
        except ValueError:
            raise ValueError(f"REPRO_RUNNER_JOBS={env!r} is not an integer")
    return None


def resolve_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Per-job wall-clock budget in seconds; None/0 means unlimited."""
    if timeout is None:
        timeout = _timeout
    if timeout is None:
        env = os.environ.get("REPRO_RUNNER_TIMEOUT")
        if env is not None:
            try:
                timeout = float(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_RUNNER_TIMEOUT={env!r} is not a number"
                )
    if timeout is not None and timeout <= 0:
        return None
    return timeout


def resolve_cache(
    cache: Optional[Union[bool, str, ResultCache]] = None,
) -> Optional[ResultCache]:
    if cache is None:
        cache = _cache
    if cache is None:
        env = os.environ.get("REPRO_RUNNER_CACHE")
        if env is not None:
            lowered = env.strip().lower()
            if lowered in ("off", "0", "false", "no", ""):
                return None
            if lowered in ("on", "1", "true", "yes"):
                return ResultCache()
            return ResultCache(env)
        return None
    if cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, str):
        return ResultCache(cache)
    return cache
