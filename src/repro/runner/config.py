"""Process-wide execution defaults for campaigns.

The experiment modules call ``Campaign.run()`` with no executor
arguments; what that means — serial or pooled, cached or not — is
decided here, so one CLI flag (or environment variable, for CI and
benches) threads through every sweep without touching experiment
signatures.

Resolution order for each knob: explicit argument at the call site,
then :func:`configure`'d value, then environment variable, then the
conservative default (serial, no cache).

Environment variables:

* ``REPRO_RUNNER_JOBS`` — worker count (``0`` = all cores, ``1`` = serial);
* ``REPRO_RUNNER_CACHE`` — ``off``/``0`` disables, ``on``/``1`` uses the
  default directory, anything else is used as the cache directory path;
* ``REPRO_RUNNER_CACHE_BACKEND`` — ``json`` (the per-entry pickle-file
  store, the default) or ``sqlite`` (the persistent campaign database,
  :mod:`repro.store`);
* ``REPRO_RUNNER_TIMEOUT`` — per-job wall-clock budget in seconds
  (``0`` or unset = no limit).
"""

from __future__ import annotations

import os
from typing import Any, Optional, Union

from repro.runner.cache import ResultCache

#: Recognised cache backends (the ``--cache-backend`` choices).
CACHE_BACKENDS = ("json", "sqlite")

_workers: Optional[int] = None
_cache: Optional[Union[bool, str, Any]] = None
_cache_backend: Optional[str] = None
_timeout: Optional[float] = None


def configure(
    workers: Optional[int] = None,
    cache: Optional[Union[bool, str, ResultCache]] = None,
    timeout: Optional[float] = None,
    cache_backend: Optional[str] = None,
) -> None:
    """Set process-wide defaults (CLI entry points call this once)."""
    global _workers, _cache, _cache_backend, _timeout
    if cache_backend is not None:
        if cache_backend not in CACHE_BACKENDS:
            raise ValueError(
                f"unknown cache backend {cache_backend!r}; "
                f"have {CACHE_BACKENDS}"
            )
        _cache_backend = cache_backend
    if workers is not None:
        _workers = workers
    if cache is not None:
        # Strings/bools stay unresolved until resolve_cache so a later
        # cache_backend choice still applies to them.
        _cache = cache
    if timeout is not None:
        _timeout = timeout


def reset() -> None:
    """Back to built-in defaults (used by tests)."""
    global _workers, _cache, _cache_backend, _timeout
    _workers = None
    _cache = None
    _cache_backend = None
    _timeout = None


def resolve_workers(workers: Optional[int] = None) -> Optional[int]:
    if workers is not None:
        return workers
    if _workers is not None:
        return _workers
    env = os.environ.get("REPRO_RUNNER_JOBS")
    if env is not None:
        try:
            return int(env)
        except ValueError:
            raise ValueError(f"REPRO_RUNNER_JOBS={env!r} is not an integer")
    return None


def resolve_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Per-job wall-clock budget in seconds; None/0 means unlimited."""
    if timeout is None:
        timeout = _timeout
    if timeout is None:
        env = os.environ.get("REPRO_RUNNER_TIMEOUT")
        if env is not None:
            try:
                timeout = float(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_RUNNER_TIMEOUT={env!r} is not a number"
                )
    if timeout is not None and timeout <= 0:
        return None
    return timeout


def resolve_cache_backend(backend: Optional[str] = None) -> str:
    """Which cache implementation a bare directory/True resolves to."""
    if backend is None:
        backend = _cache_backend
    if backend is None:
        backend = os.environ.get("REPRO_RUNNER_CACHE_BACKEND")
    if backend is None:
        return "json"
    backend = backend.strip().lower()
    if backend not in CACHE_BACKENDS:
        raise ValueError(
            f"unknown cache backend {backend!r}; have {CACHE_BACKENDS}"
        )
    return backend


def _build_cache(root: Optional[str], backend: Optional[str]):
    if resolve_cache_backend(backend) == "sqlite":
        from repro.store.cache import StoreResultCache

        return StoreResultCache(root)
    return ResultCache(root)


def resolve_cache(
    cache: Optional[Union[bool, str, ResultCache]] = None,
    backend: Optional[str] = None,
):
    """The cache object a campaign should consult, or None.

    A ready-made cache object (:class:`ResultCache` or
    :class:`~repro.store.cache.StoreResultCache`) passes through
    untouched; ``True``/a directory string is built with the resolved
    backend (``backend`` argument → ``configure(cache_backend=...)`` →
    ``$REPRO_RUNNER_CACHE_BACKEND`` → ``json``).
    """
    if cache is None:
        cache = _cache
    if cache is None:
        env = os.environ.get("REPRO_RUNNER_CACHE")
        if env is not None:
            lowered = env.strip().lower()
            if lowered in ("off", "0", "false", "no", ""):
                return None
            if lowered in ("on", "1", "true", "yes"):
                return _build_cache(None, backend)
            return _build_cache(env, backend)
        return None
    if cache is False:
        return None
    if cache is True:
        return _build_cache(None, backend)
    if isinstance(cache, str):
        return _build_cache(cache, backend)
    return cache
