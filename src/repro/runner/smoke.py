"""A two-minute end-to-end smoke campaign (``python -m repro.runner.smoke``).

Runs a reduced E1 (ABD register over Σ) and E3 (consensus algorithm
comparison) grid through the campaign engine with two workers, then
re-runs the same grid serially and asserts the stable digests agree —
the cheapest whole-stack check that the spec layer, the process pool,
and the simulator still produce byte-identical results.  CI calls this
after the tier-1 suite; it is also handy after local surgery on the
runner or the sim loop.
"""

from __future__ import annotations

import sys
import time

from repro.experiments.e01_register import case_spec as e01_spec
from repro.experiments.e03_consensus import case_spec as e03_spec
from repro.runner.campaign import Campaign


def build_campaign() -> Campaign:
    """E1 with f in {0, 1} plus E3's four algorithms, n=4, two seeds."""
    e01 = Campaign.grid(
        lambda f, kind: e01_spec(4, f, kind, seed=0, horizon=40_000),
        name="smoke-e01",
        f=range(2),
        kind=("majority", "sigma"),
    )
    e03 = Campaign.grid(
        lambda seed, label: e03_spec(4, 1, label, seed, horizon=40_000),
        name="smoke-e03",
        seed=range(2),
        label=("(Omega,Sigma)", "Omega+majorities", "CT <>S [4]", "CT S [4]"),
    )
    return e01 + e03


def main(workers: int = 2) -> int:
    campaign = build_campaign()
    print(f"smoke campaign: {len(campaign)} runs, {workers} workers")

    started = time.perf_counter()
    pooled = campaign.run(workers=workers, cache=False)
    pooled_s = time.perf_counter() - started

    started = time.perf_counter()
    serial = campaign.run(workers=1, cache=False)
    serial_s = time.perf_counter() - started

    pooled_digests = [s.stable_digest() for s in pooled]
    serial_digests = [s.stable_digest() for s in serial]
    if pooled_digests != serial_digests:
        print("FAIL: pooled and serial campaigns diverged")
        return 1

    failures = [s for s in pooled if s.metrics.get("ok") is False]
    if failures:
        print(f"FAIL: {len(failures)} runs reported not-ok metrics")
        for s in failures:
            print(f"  tags={s.tags} metrics={s.metrics}")
        return 1

    print(
        f"ok: {len(pooled)} runs deterministic across executors "
        f"(pool {pooled_s:.1f}s, serial {serial_s:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
