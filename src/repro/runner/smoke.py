"""A two-minute end-to-end smoke campaign (``python -m repro.runner.smoke``).

Runs a reduced E1 (ABD register over Σ) and E3 (consensus algorithm
comparison) grid through the campaign engine with two workers, then
re-runs the same grid serially and asserts the stable digests agree —
the cheapest whole-stack check that the spec layer, the process pool,
and the simulator still produce byte-identical results.  CI calls this
after the tier-1 suite; it is also handy after local surgery on the
runner or the sim loop.

``--incremental DIR`` instead exercises the persistent store end to
end: the grid runs once against a SQLite-backed cache in ``DIR``, then
again — the second pass must execute **zero** cells (every one a cache
hit), which is what CI's incremental re-verify job asserts after
restoring the store from its cache.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.e01_register import case_spec as e01_spec
from repro.experiments.e03_consensus import case_spec as e03_spec
from repro.runner.campaign import Campaign


def build_campaign() -> Campaign:
    """E1 with f in {0, 1} plus E3's four algorithms, n=4, two seeds."""
    e01 = Campaign.grid(
        lambda f, kind: e01_spec(4, f, kind, seed=0, horizon=40_000),
        name="smoke-e01",
        f=range(2),
        kind=("majority", "sigma"),
    )
    e03 = Campaign.grid(
        lambda seed, label: e03_spec(4, 1, label, seed, horizon=40_000),
        name="smoke-e03",
        seed=range(2),
        label=("(Omega,Sigma)", "Omega+majorities", "CT <>S [4]", "CT S [4]"),
    )
    return e01 + e03


def incremental(store_dir: str, workers: int = 2) -> int:
    """Run the grid twice against the SQLite cache; pass 2 must hit 100%.

    Returns 0 when the warm pass executed nothing and every summary's
    digest matches the cold pass — the store round-tripped the whole
    grid.  Tolerant of a pre-populated store (CI restores it from
    cache): the cold pass may itself be fully cached.
    """
    from repro.store.cache import StoreResultCache

    campaign = build_campaign()
    print(
        f"incremental smoke: {len(campaign)} runs against "
        f"{store_dir!r} (sqlite backend)"
    )
    cold = campaign.run(workers=workers, cache=StoreResultCache(store_dir))
    print(f"  pass 1: {cold.hits} cached, {cold.executed} executed")
    warm = campaign.run(workers=workers, cache=StoreResultCache(store_dir))
    print(f"  pass 2: {warm.hits} cached, {warm.executed} executed")
    if not cold.ok or not warm.ok:
        print("FAIL: campaign cells failed")
        return 1
    if warm.executed != 0 or warm.hits != len(campaign):
        print(
            f"FAIL: warm pass should be fully cached, executed "
            f"{warm.executed} of {len(campaign)}"
        )
        return 1
    if [s.stable_digest() for s in cold] != [s.stable_digest() for s in warm]:
        print("FAIL: cached summaries diverged from computed ones")
        return 1
    print(f"ok: warm pass replayed {warm.hits} cells from the store")
    return 0


def main(workers: int = 2) -> int:
    campaign = build_campaign()
    print(f"smoke campaign: {len(campaign)} runs, {workers} workers")

    started = time.perf_counter()
    pooled = campaign.run(workers=workers, cache=False)
    pooled_s = time.perf_counter() - started

    started = time.perf_counter()
    serial = campaign.run(workers=1, cache=False)
    serial_s = time.perf_counter() - started

    pooled_digests = [s.stable_digest() for s in pooled]
    serial_digests = [s.stable_digest() for s in serial]
    if pooled_digests != serial_digests:
        print("FAIL: pooled and serial campaigns diverged")
        return 1

    failures = [s for s in pooled if s.metrics.get("ok") is False]
    if failures:
        print(f"FAIL: {len(failures)} runs reported not-ok metrics")
        for s in failures:
            print(f"  tags={s.tags} metrics={s.metrics}")
        return 1

    print(
        f"ok: {len(pooled)} runs deterministic across executors "
        f"(pool {pooled_s:.1f}s, serial {serial_s:.1f}s)"
    )
    return 0


def _cli(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.runner.smoke")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--incremental",
        metavar="DIR",
        default=None,
        help="store directory: run the grid twice through the SQLite "
        "cache and assert the second pass executes nothing",
    )
    args = parser.parse_args(argv)
    if args.incremental is not None:
        return incremental(args.incremental, workers=args.workers)
    return main(workers=args.workers)


if __name__ == "__main__":
    sys.exit(_cli())
