"""Picklable references to module-level callables.

A :class:`RunSpec` must fully determine a run *and* survive a trip
through ``pickle`` to a worker process, so it cannot carry closures —
the component factories, schedulers, stop predicates and summarizers it
references are stored as :class:`CallSpec`: an importable target path
plus (picklable) arguments.  Resolution happens inside the worker, so
the *resolved* objects are free to be closures, stateful schedulers or
anything else.

Two constructors cover the two idioms:

* :func:`call` — ``call(fn, *args, **kwargs)`` resolves to
  ``fn(*args, **kwargs)``: use it when a module-level *maker* builds the
  factory/predicate for one parameter point;
* :func:`ref` — ``ref(fn)`` resolves to ``fn`` itself: use it when the
  module-level function already has the required signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import Any, Callable, Tuple, Union


@dataclass(frozen=True)
class CallSpec:
    """An importable callable plus arguments, resolvable in any process.

    ``target`` is ``"package.module:qualname"``.  When ``bare`` is true
    resolution returns the callable itself; otherwise it returns
    ``callable(*args, **kwargs)``.
    """

    target: str
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    bare: bool = False

    def resolve(self) -> Any:
        fn = _import_target(self.target)
        if self.bare:
            return fn
        return fn(*self.args, **dict(self.kwargs))

    def __repr__(self) -> str:
        inner = self.target
        if self.args or self.kwargs:
            parts = [repr(a) for a in self.args]
            parts += [f"{k}={v!r}" for k, v in self.kwargs]
            inner += f"({', '.join(parts)})"
        return f"CallSpec[{inner}]" if not self.bare else f"Ref[{inner}]"


Callable_ = Union[str, Callable[..., Any]]


def _target_path(fn: Callable_) -> str:
    if isinstance(fn, str):
        if ":" not in fn:
            raise ValueError(f"target {fn!r} must look like 'module:qualname'")
        return fn
    qualname = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if not qualname or not module:
        raise TypeError(f"{fn!r} is not a named callable")
    if "<locals>" in qualname or "<lambda>" in qualname:
        raise TypeError(
            f"{fn!r} is a closure/lambda; specs need module-level callables "
            f"so that worker processes can import them"
        )
    path = f"{module}:{qualname}"
    if _import_target(path) is not fn:
        raise TypeError(
            f"{fn!r} does not resolve back from {path!r}; "
            f"is it shadowed or defined dynamically?"
        )
    return path


def _import_target(path: str) -> Callable[..., Any]:
    module_name, _, qualname = path.partition(":")
    obj: Any = import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def call(fn: Callable_, *args: Any, **kwargs: Any) -> CallSpec:
    """A :class:`CallSpec` resolving to ``fn(*args, **kwargs)``."""
    return CallSpec(
        target=_target_path(fn),
        args=tuple(args),
        kwargs=tuple(sorted(kwargs.items())),
    )


def ref(fn: Callable_) -> CallSpec:
    """A :class:`CallSpec` resolving to ``fn`` itself."""
    return CallSpec(target=_target_path(fn), bare=True)


def maybe_resolve(value: Any) -> Any:
    """Resolve ``value`` if it is a :class:`CallSpec`, else pass through."""
    if isinstance(value, CallSpec):
        return value.resolve()
    return value
