"""Executors: run a batch of specs serially or across a process pool.

Both executors take the job list in order and return results in that
same order, whatever the workers' scheduling — result ordering is part
of the determinism contract, so campaign tables never depend on pool
timing.  Jobs are anything with ``fingerprint()``/``execute()``
(:class:`~repro.runner.spec.RunSpec`, :class:`~repro.runner.spec.FnSpec`).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, List, Optional, Sequence


def execute_job(job: Any) -> Any:
    """Top-level worker entry point (must stay importable for pickling)."""
    return job.execute()


class SerialExecutor:
    """Run every job in this process, in order."""

    workers = 1

    def map(self, jobs: Sequence[Any]) -> List[Any]:
        return [execute_job(job) for job in jobs]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class PoolExecutor:
    """Fan jobs out over a ``ProcessPoolExecutor``.

    Results come back via ``pool.map``, which preserves submission
    order.  ``chunksize`` trades dispatch overhead against load balance;
    the default packs roughly four chunks per worker.
    """

    def __init__(self, workers: Optional[int] = None, chunksize: Optional[int] = None):
        self.workers = max(1, workers or default_worker_count())
        self.chunksize = chunksize

    def map(self, jobs: Sequence[Any]) -> List[Any]:
        if not jobs:
            return []
        if self.workers == 1 or len(jobs) == 1:
            return SerialExecutor().map(jobs)
        chunksize = self.chunksize or max(1, len(jobs) // (self.workers * 4))
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(execute_job, jobs, chunksize=chunksize))

    def __repr__(self) -> str:
        return f"PoolExecutor(workers={self.workers}, chunksize={self.chunksize})"


def default_worker_count() -> int:
    """Workers to use when the caller just says "parallel"."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        return os.cpu_count() or 1


def make_executor(workers: Optional[int]) -> Any:
    """``None``/``1`` -> serial; ``0`` -> all cores; else that many."""
    if workers is None or workers == 1:
        return SerialExecutor()
    if workers == 0:
        return PoolExecutor(default_worker_count())
    return PoolExecutor(workers)
