"""Executors: run a batch of specs serially or across a process pool.

Both executors take the job list in order and return results in that
same order, whatever the workers' scheduling — result ordering is part
of the determinism contract, so campaign tables never depend on pool
timing.  Jobs are anything with ``fingerprint()``/``execute()``
(:class:`~repro.runner.spec.RunSpec`, :class:`~repro.runner.spec.FnSpec`).

Hardening contract (the chaos harness leans on this):

* a job that *raises* becomes a :class:`~repro.runner.summary.JobFailure`
  in its result slot — the rest of the batch still runs;
* a job that exceeds ``timeout`` seconds of wall clock is interrupted
  (``SIGALRM``, where available) and recorded as a ``"timeout"`` failure;
* a job that *kills its worker* (``os._exit``, segfault, OOM) breaks the
  ``ProcessPoolExecutor``; the pool is rebuilt and the un-finished jobs
  re-run one at a time so the poisoned spec can be attributed, retried
  with exponential backoff, and finally quarantined as a
  ``"worker-crash"`` failure;
* if a pool cannot be created at all, execution degrades to serial and
  the incident is recorded.

Every recovery action is appended to ``executor.incidents`` so campaign
results can surface what happened.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence

from repro.runner.summary import JobFailure


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its wall-clock budget."""


def execute_job(job: Any) -> Any:
    """Top-level worker entry point (must stay importable for pickling)."""
    return job.execute()


def _failure_from(job: Any, exc: BaseException, kind: str, attempts: int = 1) -> JobFailure:
    return JobFailure(
        key=job.fingerprint(),
        tags=dict(getattr(job, "tag_dict", None) or getattr(job, "tags", None) or {}),
        kind=kind,
        error_type=type(exc).__name__,
        message=str(exc),
        traceback="".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )[-4000:],
        attempts=attempts,
    )


def execute_job_guarded(job: Any, timeout: Optional[float] = None) -> Any:
    """Run one job, converting exceptions and timeouts to JobFailure.

    This is the importable unit shipped to pool workers.  The timeout
    uses ``SIGALRM``, which only exists on POSIX and only fires on a
    main thread — pool workers run tasks on their main thread, so the
    guard holds there; elsewhere the timeout silently degrades to "no
    limit" rather than crashing.
    """
    use_alarm = (
        timeout is not None
        and timeout > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        try:
            return execute_job(job)
        except Exception as exc:  # noqa: BLE001 — the whole point
            return _failure_from(job, exc, kind="exception")

    def _on_alarm(signum, frame):
        raise JobTimeout(f"job exceeded {timeout:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return execute_job(job)
    except JobTimeout as exc:
        return _failure_from(job, exc, kind="timeout")
    except Exception as exc:  # noqa: BLE001
        return _failure_from(job, exc, kind="exception")
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


class SerialExecutor:
    """Run every job in this process, in order."""

    workers = 1

    def __init__(self) -> None:
        self.incidents: List[Dict[str, Any]] = []

    def map(self, jobs: Sequence[Any], timeout: Optional[float] = None) -> List[Any]:
        return [execute_job_guarded(job, timeout) for job in jobs]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class PoolExecutor:
    """Fan jobs out over a ``ProcessPoolExecutor``, surviving crashes.

    Jobs are submitted individually (futures preserve submission order,
    so results stay aligned with the job list).  Ordinary exceptions and
    timeouts never reach the parent — workers return
    :class:`~repro.runner.summary.JobFailure` records instead — so a
    broken pool can only mean a worker *died*.  Recovery: rebuild the
    pool, replay the unfinished jobs one at a time to attribute the
    crash, retry the killer with exponential backoff, and quarantine it
    after ``max_retries`` attempts.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.25,
    ):
        self.workers = max(1, workers or default_worker_count())
        self.chunksize = chunksize  # kept for API compatibility; unused
        self.max_retries = max(0, max_retries)
        self.retry_backoff = retry_backoff
        self.incidents: List[Dict[str, Any]] = []

    def _note(self, kind: str, **detail: Any) -> None:
        self.incidents.append({"kind": kind, **detail})

    def _make_pool(self) -> Optional[ProcessPoolExecutor]:
        try:
            return ProcessPoolExecutor(max_workers=self.workers)
        except Exception as exc:  # noqa: BLE001 — e.g. sandboxed /dev/shm
            self._note("pool-degraded", error=f"{type(exc).__name__}: {exc}")
            return None

    def map(self, jobs: Sequence[Any], timeout: Optional[float] = None) -> List[Any]:
        if not jobs:
            return []
        if self.workers == 1 or len(jobs) == 1:
            return [execute_job_guarded(job, timeout) for job in jobs]

        pool = self._make_pool()
        if pool is None:
            return [execute_job_guarded(job, timeout) for job in jobs]

        results: List[Any] = [None] * len(jobs)
        done: List[bool] = [False] * len(jobs)
        try:
            self._batch_phase(pool, jobs, timeout, results, done)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return results

    def _batch_phase(self, pool, jobs, timeout, results, done) -> None:
        futures = {}
        broken = False
        for i in range(len(jobs)):
            try:
                futures[i] = pool.submit(execute_job_guarded, jobs[i], timeout)
            except BrokenProcessPool:
                broken = True
                break
        for i in sorted(futures):
            try:
                results[i] = futures[i].result()
                done[i] = True
            except BrokenProcessPool:
                broken = True
                break
            except Exception as exc:  # unpicklable result, etc.
                results[i] = _failure_from(jobs[i], exc, kind="exception")
                done[i] = True
        if not broken:
            return
        # Harvest whatever did finish before the pool died.
        for i, fut in futures.items():
            if not done[i] and fut.done():
                try:
                    results[i] = fut.result()
                    done[i] = True
                except Exception:  # noqa: BLE001 — re-run it below
                    pass
        remaining = [i for i in range(len(jobs)) if not done[i]]
        self._note("pool-broken", unfinished=len(remaining))
        self._recovery_phase(jobs, timeout, results, done, remaining)

    def _recovery_phase(self, jobs, timeout, results, done, remaining) -> None:
        """One job at a time through fresh pools: crash attribution."""
        pool = self._make_pool()
        for i in remaining:
            attempts = 0
            while True:
                attempts += 1
                if pool is None:
                    results[i] = execute_job_guarded(jobs[i], timeout)
                    done[i] = True
                    break
                try:
                    results[i] = pool.submit(
                        execute_job_guarded, jobs[i], timeout
                    ).result()
                    done[i] = True
                    break
                except BrokenProcessPool as exc:
                    pool.shutdown(wait=False, cancel_futures=True)
                    if attempts > self.max_retries:
                        results[i] = _failure_from(
                            jobs[i], exc, kind="worker-crash", attempts=attempts
                        )
                        done[i] = True
                        self._note(
                            "quarantined",
                            key=jobs[i].fingerprint(),
                            attempts=attempts,
                        )
                        pool = self._make_pool()
                        break
                    self._note(
                        "worker-crash-retry",
                        key=jobs[i].fingerprint(),
                        attempt=attempts,
                    )
                    time.sleep(self.retry_backoff * (2 ** (attempts - 1)))
                    pool = self._make_pool()
                except Exception as exc:  # noqa: BLE001
                    results[i] = _failure_from(jobs[i], exc, kind="exception")
                    done[i] = True
                    break
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:
        return f"PoolExecutor(workers={self.workers}, chunksize={self.chunksize})"


def default_worker_count() -> int:
    """Workers to use when the caller just says "parallel"."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        return os.cpu_count() or 1


def make_executor(workers: Optional[int]) -> Any:
    """``None``/``1`` -> serial; ``0`` -> all cores; else that many."""
    if workers is None or workers == 1:
        return SerialExecutor()
    if workers == 0:
        return PoolExecutor(default_worker_count())
    return PoolExecutor(workers)
