"""Stable content hashing for run specifications and results.

The cache and the determinism guarantees both rest on one primitive: a
*canonical form* for the objects a :class:`~repro.runner.spec.RunSpec`
may carry — primitives, containers, dataclasses, and the small
parameter-holding config objects of the simulation layer (failure
patterns, environments, oracle detectors, delay models).  The canonical
form is a nested structure of strings/tuples whose ``repr`` is stable
across processes, interpreter sessions and ``PYTHONHASHSEED`` values,
so hashing it yields a key that is safe to persist on disk.

Objects with reference semantics (lambdas, bound methods, open files,
RNGs) have no stable canonical form and are rejected loudly — a spec
containing one would silently break caching and cross-process
determinism.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

_PRIMITIVES = (type(None), bool, int, str)


def canonical(obj: Any) -> Any:
    """A hashable, deterministically-``repr``-able form of ``obj``."""
    if isinstance(obj, _PRIMITIVES):
        return obj
    if isinstance(obj, float):
        return ("float", repr(obj))
    if isinstance(obj, bytes):
        return ("bytes", obj.hex())
    if isinstance(obj, (tuple, list)):
        return ("seq", tuple(canonical(x) for x in obj))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(canonical(x)) for x in obj)))
    if isinstance(obj, dict):
        items = [(canonical(k), canonical(v)) for k, v in obj.items()]
        return ("map", tuple(sorted(items, key=lambda kv: repr(kv[0]))))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = tuple(
            (f.name, canonical(getattr(obj, f.name)))
            for f in dataclasses.fields(obj)
        )
        return ("dc", _type_tag(obj), fields)
    if callable(obj) and hasattr(obj, "__qualname__"):
        # Importable functions/classes are identified by their path;
        # closures and lambdas are rejected (no stable identity).
        qualname = obj.__qualname__
        if "<locals>" in qualname or "<lambda>" in qualname:
            raise TypeError(
                f"cannot fingerprint local/lambda callable {obj!r}; "
                f"use a module-level function (see repro.runner.call)"
            )
        return ("fn", f"{obj.__module__}:{qualname}")
    # Config-style objects: identify by class plus instance state.
    state = _object_state(obj)
    if state is not None:
        return ("obj", _type_tag(obj), canonical(state))
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__} instance {obj!r}; "
        f"specs must carry primitives, containers, dataclasses or "
        f"plain config objects"
    )


def _type_tag(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}:{cls.__qualname__}"


def _object_state(obj: Any) -> Any:
    """Instance state for canonicalisation, or None if unavailable."""
    getstate = getattr(obj, "__getstate__", None)
    if callable(getstate):
        try:
            state = getstate()
        except TypeError:
            state = None
        if state is not None:
            return state
    state: dict = {}
    if hasattr(obj, "__dict__"):
        state.update(obj.__dict__)
    for cls in type(obj).__mro__:
        for slot in getattr(cls, "__slots__", ()):
            if slot != "__dict__" and hasattr(obj, slot):
                state.setdefault(slot, getattr(obj, slot))
    if state or hasattr(obj, "__dict__") or hasattr(type(obj), "__slots__"):
        return state
    return None


def fingerprint(obj: Any, salt: str = "") -> str:
    """A stable sha256 hex digest of ``obj``'s canonical form."""
    payload = repr((salt, canonical(obj))).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
