"""Declarative run specifications.

A :class:`RunSpec` is a picklable, content-hashable description that
*fully determines* one simulated run: the system shape (n, seed,
horizon), the failure pattern or the environment it is sampled from,
the detector, the adversary knobs (scheduler, delays, delivery), the
component stack, the stop condition, and how to boil the finished run
down to a :class:`~repro.runner.summary.RunSummary`.  Executing the
same spec twice — in this process, in a worker pool, or in a different
interpreter session — produces byte-identical summaries, which is what
makes the on-disk cache sound.

:class:`FnSpec` is the escape hatch for campaign cells that are not
simulator runs (e.g. E13's pointwise history reductions): an arbitrary
importable function call whose picklable return value is cached and
ordered exactly like a run summary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.environment import Environment
from repro.core.failure_pattern import FailurePattern
from repro.runner.callspec import CallSpec, maybe_resolve
from repro.runner.fingerprint import fingerprint

#: Bump when run semantics change in a way that should invalidate every
#: cached result regardless of source-hash salting.
#: 2: RunSpec grew ``time_leap``; RunSummary grew ``perf``.
#: 3: RunSpec grew ``engine`` (buffer-engine pin; None = ambient).
SPEC_FORMAT = 3


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reconstruct and execute one run.

    ``components`` is a tuple of ``(name, CallSpec)``; each CallSpec
    resolves to a per-pid component factory (``factory(pid) ->
    Component``).  ``scheduler``, ``delivery_policy`` and ``stop`` must
    be CallSpecs (schedulers and policies are stateful, so each run gets
    a fresh one); ``detector`` and ``delay_model`` may be CallSpecs or
    plain stateless config objects.  ``summarize`` resolves to a
    ``(system, trace) -> dict`` hook executed in the worker while the
    full system is still in scope — its (picklable) dict lands in
    ``RunSummary.metrics``.
    """

    n: int
    seed: int
    horizon: int
    pattern: Optional[FailurePattern] = None
    environment: Optional[Environment] = None
    crash_window: Optional[int] = None
    detector: Optional[Any] = None
    detector_component: Optional[str] = None
    scheduler: Optional[CallSpec] = None
    delay_model: Optional[Any] = None
    delivery_policy: Optional[CallSpec] = None
    components: Tuple[Tuple[str, CallSpec], ...] = ()
    stop: Optional[CallSpec] = None
    grace: int = 0
    trace_mode: str = "lite"
    #: Opt-in quiescence time-leap (see :meth:`repro.sim.system.System.run`);
    #: trace-neutral, so two specs differing only here produce equal
    #: stable digests — but distinct fingerprints/cache keys.
    time_leap: bool = False
    #: Network buffer engine pin: ``"indexed"``, ``"reference"`` or
    #: ``"native"`` (compiled core, silently degrading to indexed when
    #: the extension is unavailable).  ``None`` keeps the ambient
    #: implementation — golden suites that wrap construction in
    #: ``network_implementation(...)`` keep working unchanged.  All
    #: engines are trace-identical; this pins *performance*, so it is
    #: still part of the fingerprint (distinct cache rows per engine).
    engine: Optional[str] = None
    summarize: Optional[CallSpec] = None
    #: Free-form labels echoed into the summary (axis coordinates,
    #: row keys); part of the fingerprint so distinct cells never
    #: collide in the cache.
    tags: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.pattern is not None and self.environment is not None:
            raise ValueError("give either a pattern or an environment, not both")
        if self.trace_mode not in ("full", "lite"):
            raise ValueError(f"unknown trace_mode {self.trace_mode!r}")
        if self.engine is not None and self.engine not in (
            "indexed",
            "reference",
            "native",
        ):
            raise ValueError(f"unknown engine {self.engine!r}")
        for name, slot in (
            ("scheduler", self.scheduler),
            ("delivery_policy", self.delivery_policy),
            ("stop", self.stop),
            ("summarize", self.summarize),
        ):
            if slot is not None and not isinstance(slot, CallSpec):
                raise TypeError(
                    f"{name} must be a CallSpec (repro.runner.call/ref), "
                    f"got {slot!r}"
                )
        for name, spec in self.components:
            if not isinstance(spec, CallSpec):
                raise TypeError(
                    f"component {name!r} must be given as a CallSpec, "
                    f"got {spec!r}"
                )

    # -- sweeping ------------------------------------------------------
    def with_(self, **changes: Any) -> "RunSpec":
        """A copy with ``changes`` applied (dataclasses.replace)."""
        return replace(self, **changes)

    def tagged(self, **tags: Any) -> "RunSpec":
        """A copy with ``tags`` merged into the existing tags."""
        merged = dict(self.tags)
        merged.update(tags)
        return replace(self, tags=tuple(sorted(merged.items())))

    @property
    def tag_dict(self) -> Dict[str, Any]:
        return dict(self.tags)

    # -- identity ------------------------------------------------------
    def fingerprint(self) -> str:
        return fingerprint(self, salt=f"runspec:{SPEC_FORMAT}")

    # -- resolution (worker side) --------------------------------------
    def resolve_pattern(self) -> FailurePattern:
        """The concrete failure pattern, mirroring SystemBuilder.build."""
        if self.pattern is not None:
            return self.pattern
        if self.environment is not None:
            from repro.sim.rng import RngStreams

            window = self.crash_window or max(1, self.horizon // 3)
            rng = RngStreams(self.seed).get("failure-pattern")
            return self.environment.sample(rng, window)
        return FailurePattern.crash_free(self.n)

    def resolve_components(self):
        return tuple(
            (name, spec.resolve()) for name, spec in self.components
        )

    def resolve_detector(self):
        return maybe_resolve(self.detector)

    def resolve_scheduler(self):
        return maybe_resolve(self.scheduler)

    def resolve_delay_model(self):
        return maybe_resolve(self.delay_model)

    def resolve_delivery_policy(self):
        return maybe_resolve(self.delivery_policy)

    def resolve_stop(self):
        return maybe_resolve(self.stop)

    # -- execution -----------------------------------------------------
    def execute(self) -> "RunSummary":
        """Build the system, run it, summarize — all in this process."""
        from repro.runner.summary import RunSummary
        from repro.sim.system import System

        started = time.perf_counter()
        system = System.from_spec(self)
        trace = system.run(stop_when=self.resolve_stop(), grace=self.grace)
        metrics: Dict[str, Any] = {}
        if self.summarize is not None:
            hook = self.summarize.resolve()
            metrics = hook(system, trace)
            if not isinstance(metrics, Mapping):
                raise TypeError(
                    f"summarize hook {self.summarize!r} must return a "
                    f"mapping, got {type(metrics).__name__}"
                )
        return RunSummary.from_run(
            self,
            trace,
            metrics=dict(metrics),
            wall_clock=time.perf_counter() - started,
        )


def run_spec(**kwargs: Any) -> RunSpec:
    """Keyword constructor that accepts ``components``/``tags`` as
    mappings or sequences and normalises them to tuples."""
    components = kwargs.pop("components", ())
    if isinstance(components, Mapping):
        components = tuple(components.items())
    else:
        components = tuple(tuple(pair) for pair in components)
    tags = kwargs.pop("tags", ())
    if isinstance(tags, Mapping):
        tags = tuple(sorted(tags.items()))
    return RunSpec(components=components, tags=tuple(tags), **kwargs)


@dataclass(frozen=True)
class FnSpec:
    """A non-simulation campaign cell: one importable function call.

    ``fn`` resolves (with its stored arguments) to the cell's picklable
    result, wrapped in a :class:`~repro.runner.summary.FnSummary`.
    """

    fn: CallSpec
    tags: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.fn, CallSpec):
            raise TypeError(f"fn must be a CallSpec, got {self.fn!r}")

    @property
    def tag_dict(self) -> Dict[str, Any]:
        return dict(self.tags)

    def fingerprint(self) -> str:
        return fingerprint(self, salt=f"fnspec:{SPEC_FORMAT}")

    def execute(self) -> "FnSummary":
        from repro.runner.summary import FnSummary

        started = time.perf_counter()
        value = self.fn.resolve()
        return FnSummary(
            key=self.fingerprint(),
            tags=self.tag_dict,
            value=value,
            wall_clock=time.perf_counter() - started,
        )


def fn_spec(fn: CallSpec, **tags: Any) -> FnSpec:
    return FnSpec(fn=fn, tags=tuple(sorted(tags.items())))
