"""On-disk result cache keyed by spec fingerprint + code salt.

Each executed spec's summary is stored under
``<root>/<salt[:12]>/<key[:2]>/<key>.pkl`` where ``key`` is the spec's
content hash and ``salt`` hashes the installed ``repro`` source tree.
Editing *any* library source therefore invalidates the whole cache —
deliberately conservative: a stale verdict is far worse than a cold
re-run.  Changing any spec field (seed, horizon, pattern, component
arguments, ...) changes the key, so sweeps only re-execute the cells
that actually changed.

Storage is ``pickle`` (results are arbitrary picklable records, and the
cache directory is as trusted as the working tree that produced it).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

#: Default cache location, overridable via $REPRO_CACHE_DIR.
DEFAULT_CACHE_DIR = ".repro-cache"

_code_salt_memo: Optional[str] = None


def code_salt() -> str:
    """A hash of every source file of the installed ``repro`` package.

    Computed once per process (~200 small files); cached summaries from
    any other version of the code are invisible rather than wrong.
    """
    global _code_salt_memo
    if _code_salt_memo is None:
        import repro

        digest = hashlib.sha256()
        root = Path(repro.__file__).parent
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
        _code_salt_memo = digest.hexdigest()
    return _code_salt_memo


class ResultCache:
    """Filesystem-backed store of per-spec summaries."""

    def __init__(self, root: Optional[os.PathLike] = None, salt: Optional[str] = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.salt = salt if salt is not None else code_salt()

    def _path(self, key: str) -> Path:
        return self.root / self.salt[:12] / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """The stored summary for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError):
            # A truncated or stale entry behaves like a miss.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, summary: Any) -> None:
        """Store ``summary`` atomically (write-to-temp, rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(summary, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:
        return f"ResultCache(root={str(self.root)!r}, salt={self.salt[:12]!r})"
