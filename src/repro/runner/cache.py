"""On-disk result cache keyed by spec fingerprint + code salt.

Each executed spec's summary is stored under
``<root>/<salt[:12]>/<key[:2]>/<key>.pkl`` where ``key`` is the spec's
content hash and ``salt`` hashes the installed ``repro`` source tree.
Editing *any* library source therefore invalidates the whole cache —
deliberately conservative: a stale verdict is far worse than a cold
re-run.  Changing any spec field (seed, horizon, pattern, component
arguments, ...) changes the key, so sweeps only re-execute the cells
that actually changed.

Storage is ``pickle`` framed by a magic tag and a SHA-256 checksum of
the payload (the cache directory is as trusted as the working tree that
produced it, but files do get truncated by full disks and killed
writers).  A corrupt, truncated or foreign entry is *never* an error:
it is unlinked, recorded in :attr:`ResultCache.events`, and treated as
a miss so the cell simply recomputes.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Default cache location, overridable via $REPRO_CACHE_DIR.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Entry framing: magic + hex sha256(payload)[:32] + payload.
_MAGIC = b"RPRC1\n"
_CHECKSUM_LEN = 32

_code_salt_memo: Optional[str] = None


def code_salt() -> str:
    """A hash of every source file of the installed ``repro`` package.

    Computed once per process (~200 small files); cached summaries from
    any other version of the code are invisible rather than wrong.
    """
    global _code_salt_memo
    if _code_salt_memo is None:
        import repro

        digest = hashlib.sha256()
        root = Path(repro.__file__).parent
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
        _code_salt_memo = digest.hexdigest()
    return _code_salt_memo


class ResultCache:
    """Filesystem-backed store of per-spec summaries.

    Integrity events (corrupt entries discarded, unreadable files) are
    appended to :attr:`events`; :meth:`drain_events` hands them to the
    campaign so they surface in its result instead of vanishing.
    """

    def __init__(self, root: Optional[os.PathLike] = None, salt: Optional[str] = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.salt = salt if salt is not None else code_salt()
        self.events: List[Dict[str, Any]] = []

    def _path(self, key: str) -> Path:
        return self.root / self.salt[:12] / key[:2] / f"{key}.pkl"

    def _discard(self, path: Path, key: str, reason: str) -> None:
        self.events.append({"kind": "cache-corrupt", "key": key, "reason": reason})
        try:
            path.unlink()
        except OSError:
            pass

    def get(self, key: str) -> Optional[Any]:
        """The stored summary for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._discard(path, key, f"unreadable: {exc}")
            return None

        header_len = len(_MAGIC) + _CHECKSUM_LEN
        if len(blob) < header_len or not blob.startswith(_MAGIC):
            self._discard(path, key, "bad magic (foreign or pre-checksum entry)")
            return None
        stored = blob[len(_MAGIC) : header_len]
        payload = blob[header_len:]
        actual = hashlib.sha256(payload).hexdigest()[:_CHECKSUM_LEN].encode()
        if stored != actual:
            self._discard(path, key, "checksum mismatch (truncated or bit-rotted)")
            return None
        try:
            return pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            self._discard(path, key, "payload does not unpickle")
            return None

    def put(self, key: str, summary: Any) -> None:
        """Store ``summary`` atomically (write-to-temp, rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(summary, protocol=pickle.HIGHEST_PROTOCOL)
        checksum = hashlib.sha256(payload).hexdigest()[:_CHECKSUM_LEN].encode()
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_MAGIC)
                fh.write(checksum)
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def drain_events(self) -> List[Dict[str, Any]]:
        """Integrity events since the last drain (the list is cleared)."""
        events, self.events = self.events, []
        return events

    def __repr__(self) -> str:
        return f"ResultCache(root={str(self.root)!r}, salt={self.salt[:12]!r})"
