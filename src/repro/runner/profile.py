"""Process-wide perf-profile collection for campaigns.

When enabled (the experiments CLI's ``--profile`` flag), every
:meth:`Campaign.run` deposits its aggregated hot-path counters here;
:func:`dump` writes the accumulated records as JSON.  The collector is
deliberately dumb — a module-level list guarded by an enable flag — so
it costs nothing when off and needs no threading through the experiment
call graphs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

_enabled = False
_records: List[Dict[str, Any]] = []


def enable() -> None:
    _records.clear()
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def record(name: Optional[str], result) -> None:
    """Deposit one campaign's perf aggregate (no-op unless enabled)."""
    if not _enabled:
        return
    totals = result.perf_totals()
    _records.append(
        {
            "campaign": name,
            "cells": len(result),
            "cached": result.hits,
            "executed": result.executed,
            "wall_clock": round(result.wall_clock, 4),
            "perf": totals,
        }
    )


def drain() -> List[Dict[str, Any]]:
    """The collected records (and reset the collector)."""
    out = list(_records)
    _records.clear()
    return out


def dump(path: str) -> Dict[str, Any]:
    """Write collected records plus a grand total to ``path`` as JSON."""
    from repro.sim.perf import aggregate

    records = drain()
    payload = {
        "campaigns": records,
        "total": aggregate(r["perf"] for r in records),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
