"""The run-campaign engine: declarative, parallel, cached sweeps.

Every theorem in the reproduction is checked by sweeping seeded runs
over (n, environment, scheduler, crash pattern).  This package gives
all of those sweeps one engine:

* :class:`RunSpec` — a picklable description fully determining one run
  (see :mod:`repro.runner.spec`);
* :class:`Campaign` — expands parameter grids into spec lists and
  executes them serially or across a process pool, with deterministic
  result ordering (:mod:`repro.runner.campaign`);
* :class:`ResultCache` — an on-disk store keyed by spec content hash
  plus a source-tree salt, so re-running a sweep only executes changed
  cells (:mod:`repro.runner.cache`);
* :class:`RunSummary` — the compact per-run record (cost counters,
  decision records, property verdicts, trace digest) shipped from
  workers back to the parent (:mod:`repro.runner.summary`).

A ten-line sweep::

    from repro.runner import Campaign, call, run_spec
    from repro.core.detectors import omega_sigma_oracle
    from repro.sim.system import decided

    campaign = Campaign.grid(
        lambda seed, f: run_spec(
            n=5, seed=seed, horizon=60_000,
            pattern=my_pattern(5, f),
            detector=omega_sigma_oracle(),
            components=[("consensus", call(my_consensus_factory, f))],
            stop=call(decided, "consensus"),
            tags={"seed": seed, "f": f},
        ),
        seed=range(8), f=range(4),
    )
    result = campaign.run(workers=4, cache=True)
"""

from repro.runner.callspec import CallSpec, call, ref
from repro.runner.cache import ResultCache, code_salt
from repro.runner.campaign import Campaign, CampaignResult, run_jobs
from repro.runner.config import configure, reset as reset_config
from repro.runner.executor import (
    JobTimeout,
    PoolExecutor,
    SerialExecutor,
    default_worker_count,
    execute_job_guarded,
    make_executor,
)
from repro.runner import profile
from repro.runner.fingerprint import canonical, fingerprint
from repro.runner.spec import FnSpec, RunSpec, fn_spec, run_spec
from repro.runner.summary import DecisionRecord, FnSummary, JobFailure, RunSummary

__all__ = [
    "CallSpec",
    "call",
    "ref",
    "ResultCache",
    "code_salt",
    "Campaign",
    "CampaignResult",
    "run_jobs",
    "configure",
    "reset_config",
    "PoolExecutor",
    "SerialExecutor",
    "default_worker_count",
    "make_executor",
    "canonical",
    "fingerprint",
    "profile",
    "FnSpec",
    "RunSpec",
    "fn_spec",
    "run_spec",
    "DecisionRecord",
    "FnSummary",
    "JobFailure",
    "JobTimeout",
    "RunSummary",
    "execute_job_guarded",
]
