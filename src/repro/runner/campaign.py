"""Campaigns: parameter sweeps expanded into spec grids and executed.

A :class:`Campaign` is an ordered list of jobs (:class:`RunSpec` /
:class:`FnSpec` cells).  :meth:`Campaign.grid` expands a cartesian
parameter sweep through a builder callback; :meth:`Campaign.run`
executes the cells — consulting the on-disk cache first, deduplicating
identical cells, fanning misses out over a worker pool — and returns a
:class:`CampaignResult` whose summaries align one-to-one with the
campaign's cells regardless of executor or cache state.
"""

from __future__ import annotations

import itertools
import logging
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.runner import profile
from repro.runner.cache import ResultCache
from repro.runner.config import resolve_cache, resolve_timeout, resolve_workers
from repro.runner.executor import make_executor
from repro.runner.spec import FnSpec, RunSpec
from repro.runner.summary import JobFailure

Job = Union[RunSpec, FnSpec]

logger = logging.getLogger("repro.runner")


class CampaignResult:
    """Ordered summaries plus execution accounting.

    ``incidents`` records every recovery the executor performed (broken
    pools, retries, quarantines, serial degradation) and ``cache_events``
    every corrupt cache entry discarded; both empty on a clean run.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        summaries: List[Any],
        hits: int,
        executed: int,
        wall_clock: float,
        workers: int,
        incidents: Optional[List[Dict[str, Any]]] = None,
        cache_events: Optional[List[Dict[str, Any]]] = None,
    ):
        self.jobs = list(jobs)
        self.summaries = summaries
        self.hits = hits
        self.executed = executed
        self.wall_clock = wall_clock
        self.workers = workers
        self.incidents = incidents or []
        self.cache_events = cache_events or []

    @property
    def failures(self) -> List[JobFailure]:
        """The cells that failed to produce a summary."""
        return [s for s in self.summaries if isinstance(s, JobFailure)]

    @property
    def ok(self) -> bool:
        """True iff every cell produced a real summary."""
        return not self.failures

    @property
    def cache_corruption(self) -> int:
        """How many corrupt/unreadable cache entries were discarded.

        A torn entry is recoverable (the cell recomputes) but worth
        surfacing: repeated corruption means a sick disk or a writer
        being killed mid-batch, not bad luck.
        """
        return sum(
            1 for e in self.cache_events if e.get("kind") == "cache-corrupt"
        )

    def __iter__(self):
        return iter(self.summaries)

    def __len__(self) -> int:
        return len(self.summaries)

    def __getitem__(self, index):
        return self.summaries[index]

    def by_tag(self, **tags: Any) -> List[Any]:
        """Summaries whose tags contain every given key/value pair."""
        return [
            s
            for s in self.summaries
            if all(s.tags.get(k) == v for k, v in tags.items())
        ]

    def one(self, **tags: Any) -> Any:
        matches = self.by_tag(**tags)
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} summaries match {tags!r}")
        return matches[0]

    def perf_totals(self) -> Dict[str, int]:
        """Summed hot-path counters across every cell that has them.

        Cached summaries carry the counters of the run that populated
        the cache; FnSpec cells and failures contribute nothing.
        """
        from repro.sim.perf import aggregate

        return aggregate(
            getattr(s, "perf", None) or {} for s in self.summaries
        )

    def __repr__(self) -> str:
        return (
            f"CampaignResult({len(self.summaries)} cells, "
            f"{self.hits} cached, {self.executed} executed, "
            f"{self.wall_clock:.2f}s, workers={self.workers})"
        )


class Campaign:
    """An ordered batch of run/function specs, executable as one unit."""

    def __init__(self, jobs: Iterable[Job], name: Optional[str] = None):
        self.jobs: List[Job] = list(jobs)
        self.name = name

    @classmethod
    def grid(
        cls,
        build: Callable[..., Union[Job, Iterable[Job], None]],
        name: Optional[str] = None,
        **axes: Sequence[Any],
    ) -> "Campaign":
        """Expand a cartesian sweep.

        ``build(**point)`` is called for every point of the product of
        ``axes`` (axes iterate in the order given; the rightmost axis
        varies fastest) and may return one job, an iterable of jobs, or
        None to skip the cell.  The builder runs in the parent process,
        so it is free to be a closure — only the *returned specs* must
        be picklable.
        """
        names = list(axes)
        jobs: List[Job] = []
        for values in itertools.product(*(axes[k] for k in names)):
            produced = build(**dict(zip(names, values)))
            if produced is None:
                continue
            if isinstance(produced, (RunSpec, FnSpec)):
                jobs.append(produced)
            else:
                jobs.extend(produced)
        return cls(jobs, name=name)

    def __len__(self) -> int:
        return len(self.jobs)

    def __add__(self, other: "Campaign") -> "Campaign":
        return Campaign(self.jobs + other.jobs, name=self.name or other.name)

    def run(
        self,
        workers: Optional[int] = None,
        cache: Optional[Union[bool, str, ResultCache]] = None,
        timeout: Optional[float] = None,
    ) -> CampaignResult:
        """Execute every cell; summaries come back in cell order.

        ``workers``/``cache``/``timeout`` default to the process-wide
        configuration (see :mod:`repro.runner.config`).  A cell that
        raises, times out, or kills its worker yields a
        :class:`~repro.runner.summary.JobFailure` in its slot (never
        cached) instead of aborting the campaign.
        """
        started = time.perf_counter()
        workers = resolve_workers(workers)
        store = resolve_cache(cache)
        timeout = resolve_timeout(timeout)
        executor = make_executor(workers)

        results: List[Any] = [None] * len(self.jobs)
        keys = [job.fingerprint() for job in self.jobs]

        hits = 0
        pending: Dict[str, List[int]] = {}
        for i, key in enumerate(keys):
            cached = store.get(key) if store is not None else None
            if cached is not None:
                cached.cached = True
                results[i] = cached
                hits += 1
            else:
                # Identical cells execute once; every index gets the result.
                pending.setdefault(key, []).append(i)

        unique_indices = [slots[0] for slots in pending.values()]
        executed = executor.map(
            [self.jobs[i] for i in unique_indices], timeout=timeout
        )
        for index, summary in zip(unique_indices, executed):
            key = keys[index]
            if store is not None and not isinstance(summary, JobFailure):
                store.put(key, summary)
            for slot in pending[key]:
                results[slot] = summary

        result = CampaignResult(
            jobs=self.jobs,
            summaries=results,
            hits=hits,
            executed=len(executed),
            wall_clock=time.perf_counter() - started,
            workers=getattr(executor, "workers", 1),
            incidents=list(getattr(executor, "incidents", [])),
            cache_events=store.drain_events() if store is not None else [],
        )
        if result.cache_corruption:
            logger.warning(
                "campaign %s: discarded %d corrupt cache entr%s (recomputed; "
                "see CampaignResult.cache_events)",
                self.name or "<unnamed>",
                result.cache_corruption,
                "y" if result.cache_corruption == 1 else "ies",
            )
        if store is not None and hasattr(store, "record_campaign"):
            # Store-backed caches file every execution, making resume
            # auditable: `repro.store summarise` shows the re-run with
            # hits == cells and executed == 0.
            store.record_campaign(result, self.name, keys)
        if profile.is_enabled():
            profile.record(self.name, result)
        return result


def run_jobs(
    jobs: Iterable[Job],
    workers: Optional[int] = None,
    cache: Optional[Union[bool, str, ResultCache]] = None,
) -> List[Any]:
    """One-shot convenience: ``Campaign(jobs).run(...)`` summaries."""
    return Campaign(jobs).run(workers=workers, cache=cache).summaries
