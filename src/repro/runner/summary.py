"""Per-run result records shipped from workers back to the parent.

A :class:`RunSummary` is the compact, picklable residue of one run:
cost counters, decision records (values as ``repr`` strings, so sentinel
identity never leaks across process boundaries), per-component decision
latencies and operation counts, the verdict/metric dict produced by the
spec's summarize hook, and a digest of the step schedule.  Everything
except ``wall_clock``/``cached`` is a pure function of the
:class:`~repro.runner.spec.RunSpec`, which :meth:`RunSummary.stable_digest`
makes checkable: serial, pooled and cache-warmed executions of one spec
must agree byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.runner.fingerprint import fingerprint


@dataclass(frozen=True)
class DecisionRecord:
    """One irrevocable decision, with the value flattened to its repr."""

    pid: int
    component: str
    value_repr: str
    time: int


@dataclass
class RunSummary:
    """What one executed :class:`~repro.runner.spec.RunSpec` amounted to."""

    key: str
    tags: Dict[str, Any]
    n: int
    seed: int
    horizon: int
    steps: int
    messages_sent: int
    messages_delivered: int
    stop_reason: str
    final_time: int
    faulty: Tuple[int, ...]
    decisions: Tuple[DecisionRecord, ...]
    decision_latency: Dict[str, Optional[int]]
    operations: Dict[str, Tuple[int, int]]  # component -> (completed, total)
    trace_digest: str
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Hot-path counter snapshot (:mod:`repro.sim.perf`).  Observability
    #: only: excluded from :meth:`stable_digest` because different buffer
    #: engines / time-leap settings legitimately count differently while
    #: producing identical traces.
    perf: Dict[str, int] = field(default_factory=dict)
    wall_clock: float = 0.0
    cached: bool = False

    #: Not a field: mirrors :class:`JobFailure` for uniform filtering.
    failed = False

    @classmethod
    def from_run(cls, spec, trace, metrics, wall_clock) -> "RunSummary":
        components = sorted({d.component for d in trace.decisions})
        ops: Dict[str, list] = {}
        for op in trace.operations:
            entry = ops.setdefault(op.component, [0, 0])
            entry[1] += 1
            if not op.pending:
                entry[0] += 1
        return cls(
            key=spec.fingerprint(),
            tags=spec.tag_dict,
            n=spec.n,
            seed=spec.seed,
            horizon=spec.horizon,
            steps=trace.step_count(),
            messages_sent=trace.messages_sent,
            messages_delivered=trace.messages_delivered,
            stop_reason=trace.stop_reason,
            final_time=trace.final_time,
            faulty=tuple(sorted(trace.pattern.faulty)),
            decisions=tuple(
                DecisionRecord(d.pid, d.component, repr(d.value), d.time)
                for d in trace.decisions
            ),
            decision_latency={
                c: trace.decision_latency(c) for c in components
            },
            operations={c: (done, total) for c, (done, total) in ops.items()},
            trace_digest=trace.digest(),
            metrics=metrics,
            perf=(
                trace.perf.as_dict()
                if getattr(trace, "perf", None) is not None
                else {}
            ),
            wall_clock=wall_clock,
        )

    # -- convenience queries -------------------------------------------
    def decided_values(self, component: Optional[str] = None) -> set:
        """The set of decision value reprs (optionally one component's)."""
        return {
            d.value_repr
            for d in self.decisions
            if component is None or d.component == component
        }

    def latency(self, component: str) -> Optional[int]:
        return self.decision_latency.get(component)

    def operations_completed(self, component: str) -> int:
        return self.operations.get(component, (0, 0))[0]

    def operations_total(self) -> int:
        return sum(total for _, total in self.operations.values())

    def stable_digest(self) -> str:
        """Content hash of every run-determined field.

        Excludes ``wall_clock``, ``cached`` and ``perf`` — the only
        fields allowed to differ between serial, pooled, cached and
        differently-engined executions of one spec.
        """
        stable = {
            k: v
            for k, v in self.__dict__.items()
            if k not in ("wall_clock", "cached", "perf")
        }
        return fingerprint(stable, salt="run-summary")


@dataclass
class FnSummary:
    """Result wrapper for a :class:`~repro.runner.spec.FnSpec` cell."""

    key: str
    tags: Dict[str, Any]
    value: Any
    wall_clock: float = 0.0
    cached: bool = False

    failed = False

    def stable_digest(self) -> str:
        return fingerprint(
            {"key": self.key, "tags": self.tags, "value": self.value},
            salt="fn-summary",
        )


@dataclass
class JobFailure:
    """The summary slot for a cell that could not produce a summary.

    ``kind`` distinguishes how the job died:

    * ``"exception"`` — ``execute()`` raised; the error is recorded and
      the campaign carries on.
    * ``"timeout"`` — the job exceeded its per-job wall-clock budget.
    * ``"worker-crash"`` — the job killed its worker process (segfault,
      ``os._exit``, OOM-kill); after bounded retries it was quarantined
      so one poisoned spec cannot sink the whole campaign.

    A failure is never cached: a later run re-attempts the cell.
    ``stable_digest`` covers only the deterministic identity fields —
    tracebacks and attempt counts legitimately differ between runs.
    """

    key: str
    tags: Dict[str, Any]
    kind: str
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    wall_clock: float = 0.0
    cached: bool = False

    failed = True

    def stable_digest(self) -> str:
        return fingerprint(
            {"key": self.key, "kind": self.kind, "error_type": self.error_type},
            salt="job-failure",
        )
